//! Replication and failover chaos: primary/replica pairs driven over
//! real sockets.
//!
//! The deterministic tests pin the core guarantees one by one — the
//! replica follows the stream and serves reads, writes to it come back
//! as typed `NotPrimary` with a leader hint, torn replication streams
//! and acks redial and catch up, and a stale primary's frames are
//! fenced by epoch after a promotion. The proptest drives arbitrary
//! update streams through a [`FailoverClient`] with the primary killed
//! at an arbitrary batch index and proves the promoted replica ends
//! bit-exact against a fault-free single-engine reference with every
//! batch applied exactly once.
//!
//! Failpoints are process-global, so every arm is scoped to this
//! case's replica replication address; triggers are one-shot (`Nth`)
//! and exhaust themselves.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use serde_json::{json, Value};

use kiff::prelude::*;
use kiff::serve::{
    recover, replication, Client, FailoverClient, ReplicationConfig, RetryPolicy, ServerConfig,
    StoreConfig,
};
use kiff_core::fault::{self, points, Trigger};
use kiff_core::KiffError;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "kiff-serve-replica-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Arms any ambient `KIFF_FAILPOINTS` spec exactly once per test
/// binary. The CI chaos job sets one (probabilistic replication faults
/// with fixed seeds) so the whole suite runs under background fault
/// pressure; unset, this is a no-op and the only faults are the scoped
/// per-case arms below.
fn ambient_failpoints() {
    static ARM: std::sync::Once = std::sync::Once::new();
    ARM.call_once(|| {
        let armed = fault::arm_from_env().expect("invalid KIFF_FAILPOINTS spec");
        if armed > 0 {
            eprintln!("chaos: {armed} ambient failpoint(s) armed from KIFF_FAILPOINTS");
        }
    });
}

/// Same seed shape as the other serve chaos suites: 8 users, 10 items.
fn seed_dataset() -> Dataset {
    let mut b = DatasetBuilder::new("replica-seed", 8, 10);
    for u in 0..8u32 {
        for j in 0..4u32 {
            b.add_rating(u, (u * 3 + j * 2) % 10, 1.0 + (u + j) as f32 % 3.0);
        }
    }
    b.build()
}

fn arb_stream() -> impl Strategy<Value = Vec<Update>> {
    proptest::collection::vec((0u8..8, 0u32..8, 0u32..10, 1u32..6), 1..30).prop_map(|ops| {
        ops.into_iter()
            .map(|(kind, user, item, rating)| match kind {
                0 => Update::AddUser,
                1 => Update::RemoveRating { user, item },
                _ => Update::AddRating {
                    user,
                    item,
                    rating: rating as f32,
                },
            })
            .collect()
    })
}

/// Reserves a concrete loopback address: the peer lists must name every
/// daemon before any of them is bound, so ephemeral `:0` binding can't
/// be used for the client ports.
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    drop(listener);
    addr
}

struct Node {
    repl_addr: String,
    dir: PathBuf,
    handle: std::thread::JoinHandle<Result<(), KiffError>>,
}

fn spawn_node(
    dir: &Path,
    addr: &str,
    replica_of: Option<&str>,
    peers: &[String],
    heartbeat_ms: u64,
) -> Node {
    spawn_node_min_sync(dir, addr, replica_of, peers, heartbeat_ms, 0)
}

fn spawn_node_min_sync(
    dir: &Path,
    addr: &str,
    replica_of: Option<&str>,
    peers: &[String],
    heartbeat_ms: u64,
    min_sync: usize,
) -> Node {
    ambient_failpoints();
    let cfg = StoreConfig::new(dir).with_snapshot_every(0);
    let rec = recover(&cfg, &seed_dataset(), None, OnlineConfig::new(3), None).unwrap();
    let host = EngineHost::new(rec.engine, Some(rec.store), Registry::new());
    let mut rc = ReplicationConfig::new("127.0.0.1:0")
        .with_peers(peers.to_vec())
        .with_heartbeat(Duration::from_millis(heartbeat_ms))
        .with_ack_timeout(Duration::from_millis(500))
        .with_min_sync_replicas(min_sync);
    if let Some(primary) = replica_of {
        rc = rc.replica_of(primary);
    }
    let server_config = ServerConfig {
        recovery_interval: Duration::from_millis(5),
        replication: Some(rc),
        ..ServerConfig::default()
    };
    let server = kiff::serve::Server::bind_with(addr, host, server_config).unwrap();
    let repl_addr = server.repl_addr().unwrap().to_string();
    Node {
        repl_addr,
        dir: dir.to_path_buf(),
        handle: std::thread::spawn(move || server.run()),
    }
}

fn shutdown_daemon(addr: &str) {
    for _ in 0..50 {
        match Client::connect(addr) {
            Ok(mut c) => {
                if c.shutdown().is_ok() {
                    return;
                }
            }
            Err(_) => return,
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("daemon at {addr} refused shutdown");
}

/// Polls `probe` until it returns true or `secs` elapse.
fn wait_for(secs: u64, what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn retry_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 12,
        base_delay: Duration::from_millis(20),
        max_delay: Duration::from_millis(300),
        seed,
    }
}

/// Recovers a node's data dir in-process for bit-exact comparison.
fn recovered_graph(dir: &Path) -> (std::sync::Arc<kiff_graph::KnnGraph>, u64, u64) {
    let cfg = StoreConfig::new(dir).with_snapshot_every(0);
    let rec = recover(&cfg, &seed_dataset(), None, OnlineConfig::new(3), None).unwrap();
    (rec.engine.graph(), rec.store.batch_hwm(), rec.store.seq())
}

#[test]
fn replica_follows_serves_reads_and_refuses_writes() {
    let (a, b) = (free_addr(), free_addr());
    let peers = vec![a.clone(), b.clone()];
    let primary = spawn_node(&scratch("basics-a"), &a, None, &peers, 50);
    let replica = spawn_node(&scratch("basics-b"), &b, Some(&a), &peers, 50);

    let mut reference = OnlineKnn::new(&seed_dataset(), OnlineConfig::new(3));
    let stream: Vec<Update> = (0..24u32)
        .map(|i| Update::AddRating {
            user: i % 8,
            item: (i * 7) % 10,
            rating: 1.0 + (i % 5) as f32,
        })
        .collect();
    let mut client = Client::connect(&a).unwrap();
    let mut batches = 0u64;
    for chunk in stream.chunks(4) {
        batches += 1;
        client.update_batch(chunk, batches).unwrap();
        reference.apply_batch(chunk.to_vec());
    }

    // Semi-sync shipping: by the time the last update is acked, the
    // replica holds every batch (lag ≤ the one in flight).
    let mut replica_client = Client::connect(&b).unwrap();
    wait_for(5, "replica catch-up", || {
        replica_client.health().unwrap().seq == Some(stream.len() as u64)
    });

    let primary_health = client.health().unwrap();
    assert_eq!(primary_health.role.as_deref(), Some("primary"));
    assert_eq!(primary_health.epoch, 0);
    let replica_health = replica_client.health().unwrap();
    assert_eq!(replica_health.role.as_deref(), Some("replica"));
    assert_eq!(replica_health.epoch, 0);
    assert!(
        replica_health.repl_addr.is_some(),
        "health names the channel"
    );
    assert_eq!(replica_health.batch_hwm, batches, "hwm replicated too");

    // Replica reads answer and agree with the primary.
    for user in 0..8u32 {
        assert_eq!(
            replica_client.neighbors(user).unwrap(),
            client.neighbors(user).unwrap(),
            "user {user} diverged on the replica"
        );
    }

    // Writes to the replica are refused with a typed leader hint.
    let err = replica_client
        .update_batch(&[Update::AddUser], 999)
        .unwrap_err();
    match &err {
        KiffError::NotPrimary { leader } => {
            assert_eq!(
                leader.as_deref(),
                Some(a.as_str()),
                "hint names the primary"
            );
        }
        other => panic!("expected NotPrimary, got {other}"),
    }
    assert!(err.is_retryable(), "a failover client can re-route this");

    shutdown_daemon(&a);
    primary.handle.join().unwrap().unwrap();
    shutdown_daemon(&b);
    replica.handle.join().unwrap().unwrap();

    let (graph_a, hwm_a, _) = recovered_graph(&primary.dir);
    let (graph_b, hwm_b, _) = recovered_graph(&replica.dir);
    assert_eq!(graph_a.as_ref(), reference.graph().as_ref());
    assert_eq!(graph_b.as_ref(), reference.graph().as_ref());
    assert_eq!((hwm_a, hwm_b), (batches, batches));
    std::fs::remove_dir_all(&primary.dir).ok();
    std::fs::remove_dir_all(&replica.dir).ok();
}

#[test]
fn torn_stream_and_torn_ack_redial_and_converge() {
    let (a, b) = (free_addr(), free_addr());
    let peers = vec![a.clone(), b.clone()];
    let primary = spawn_node(&scratch("torn-a"), &a, None, &peers, 50);
    let replica = spawn_node(&scratch("torn-b"), &b, Some(&a), &peers, 50);

    // Wait for the stream to come up before arming, so the handshake
    // itself isn't the casualty.
    let mut replica_client = Client::connect(&b).unwrap();
    let mut client = Client::connect(&a).unwrap();
    client.update_batch(&[Update::AddUser], 1).unwrap();
    wait_for(5, "initial replication", || {
        replica_client.health().unwrap().seq == Some(1)
    });

    // Tear the stream before a batch frame, and (later) the replica's
    // ack after an apply: both paths must redial, catch up from the
    // WAL, and dedup the resent batch by sequence.
    fault::arm_scoped(points::REPL_STREAM, Trigger::Nth(1), &replica.repl_addr);
    fault::arm_scoped(points::REPL_ACK, Trigger::Nth(2), &replica.repl_addr);

    let mut reference = OnlineKnn::new(&seed_dataset(), OnlineConfig::new(3));
    reference.apply_batch(vec![Update::AddUser]);
    let stream: Vec<Update> = (0..16u32)
        .map(|i| Update::AddRating {
            user: i % 8,
            item: (i * 3) % 10,
            rating: 1.0 + (i % 4) as f32,
        })
        .collect();
    let mut batches = 1u64;
    for chunk in stream.chunks(4) {
        batches += 1;
        client.update_batch(chunk, batches).unwrap();
        reference.apply_batch(chunk.to_vec());
    }
    wait_for(5, "post-fault convergence", || {
        replica_client.health().unwrap().seq == Some(1 + stream.len() as u64)
    });

    shutdown_daemon(&a);
    primary.handle.join().unwrap().unwrap();
    shutdown_daemon(&b);
    replica.handle.join().unwrap().unwrap();
    let (graph_b, hwm_b, seq_b) = recovered_graph(&replica.dir);
    assert_eq!(graph_b.as_ref(), reference.graph().as_ref());
    assert_eq!(hwm_b, batches, "every batch exactly once despite tears");
    assert_eq!(seq_b, 1 + stream.len() as u64);
    std::fs::remove_dir_all(&primary.dir).ok();
    std::fs::remove_dir_all(&replica.dir).ok();
}

#[test]
fn primary_kill_promotes_replica_and_fences_the_old_epoch() {
    let (a, b) = (free_addr(), free_addr());
    let peers = vec![a.clone(), b.clone()];
    let primary = spawn_node(&scratch("fence-a"), &a, None, &peers, 25);
    let replica = spawn_node(&scratch("fence-b"), &b, Some(&a), &peers, 25);

    let mut client = Client::connect(&a).unwrap();
    client
        .update_batch(
            &[Update::AddRating {
                user: 0,
                item: 9,
                rating: 5.0,
            }],
            1,
        )
        .unwrap();

    // Let the channel establish and ship the batch before the kill —
    // semi-sync only covers writes made while a subscriber is attached.
    let mut replica_client = Client::connect(&b).unwrap();
    wait_for(5, "initial replication", || {
        replica_client.health().unwrap().seq == Some(1)
    });

    shutdown_daemon(&a);
    primary.handle.join().unwrap().unwrap();

    // Silence → election → promotion with a bumped, persisted epoch.
    wait_for(5, "promotion", || {
        let h = replica_client.health().unwrap();
        h.role.as_deref() == Some("primary") && h.epoch >= 1
    });
    let promoted = replica_client.health().unwrap();
    assert_eq!(promoted.seq, Some(1), "acked write survived the failover");

    // The promoted node takes writes now.
    replica_client
        .update_batch(
            &[Update::AddRating {
                user: 1,
                item: 0,
                rating: 2.0,
            }],
            2,
        )
        .unwrap();

    // A stale primary reconnecting with the old epoch is fenced.
    let mut stale = std::net::TcpStream::connect(&replica.repl_addr).unwrap();
    replication::write_frame(
        &mut stale,
        &json!({"t": "hello", "epoch": 0u64, "seq": 1u64, "advertise": a.clone()}),
    )
    .unwrap();
    let answer = replication::read_frame(&mut stale).unwrap();
    assert_eq!(answer.get("t").and_then(Value::as_str), Some("not_leader"));
    assert!(
        answer.get("epoch").and_then(Value::as_u64).unwrap() >= 1,
        "the fence carries the new epoch"
    );

    // Equal epoch is refused too: a primary never accepts a rival
    // stream at its own epoch.
    let epoch = replica_client.health().unwrap().epoch;
    let mut rival = std::net::TcpStream::connect(&replica.repl_addr).unwrap();
    replication::write_frame(
        &mut rival,
        &json!({"t": "hello", "epoch": epoch, "seq": 1u64, "advertise": a.clone()}),
    )
    .unwrap();
    let answer = replication::read_frame(&mut rival).unwrap();
    assert_eq!(answer.get("t").and_then(Value::as_str), Some("not_leader"));

    // The epoch fence survives a restart (persisted in snapshot v3).
    shutdown_daemon(&b);
    replica.handle.join().unwrap().unwrap();
    let cfg = StoreConfig::new(&replica.dir).with_snapshot_every(0);
    let rec = recover(&cfg, &seed_dataset(), None, OnlineConfig::new(3), None).unwrap();
    assert!(rec.store.epoch() >= 1, "promotion epoch persisted");
    assert_eq!(rec.store.seq(), 2);
    std::fs::remove_dir_all(&primary.dir).ok();
    std::fs::remove_dir_all(&replica.dir).ok();
}

/// Retries a write through retryable refusals (`Unavailable` while the
/// group is under the in-sync minimum, transient transport errors from
/// ambient chaos faults) until it acks.
fn update_until_acked(
    client: &mut Client,
    updates: &[Update],
    batch: u64,
) -> kiff::serve::UpdateAck {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.update_batch(updates, batch) {
            Ok(ack) => return ack,
            Err(e) => {
                assert!(Instant::now() < deadline, "batch {batch} never acked: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// With `min_sync_replicas = 1` a primary alone in the group refuses
/// writes as retryable `Unavailable` instead of acking batches no
/// replica holds; once a replica attaches and catches up, the retried
/// batch dedups and fresh writes ack normally.
#[test]
fn min_sync_replicas_gates_acks_until_a_replica_attaches() {
    let (a, b) = (free_addr(), free_addr());
    let peers = vec![a.clone(), b.clone()];
    let primary = spawn_node_min_sync(&scratch("isr-a"), &a, None, &peers, 25, 1);

    let mut client = Client::connect(&a).unwrap();
    let err = client.update_batch(&[Update::AddUser], 1).unwrap_err();
    match &err {
        KiffError::Remote { kind, .. } => assert_eq!(
            kind, "unavailable",
            "zero attached replicas < 1 required must refuse the ack"
        ),
        other => panic!("expected a remote unavailable refusal, got {other}"),
    }
    assert!(err.is_retryable(), "the client should retry, not give up");

    // The refused batch still landed in the primary's WAL, so the
    // replica picks it up through the reconnect catch-up.
    let replica = spawn_node(&scratch("isr-b"), &b, Some(&a), &peers, 25);
    let mut replica_client = Client::connect(&b).unwrap();
    wait_for(5, "replica catch-up", || {
        replica_client.health().unwrap().seq == Some(1)
    });

    // The retry under the original id dedups into a success now that
    // the group meets the minimum... (retried like a real client would,
    // since the CI chaos job's ambient faults can tear the stream and
    // momentarily push the group back under the minimum)
    let retry = update_until_acked(&mut client, &[Update::AddUser], 1);
    assert!(retry.deduped, "retried batch id dedups, not re-applies");
    // ...and a fresh batch acks only after the replica confirmed it.
    update_until_acked(
        &mut client,
        &[Update::AddRating {
            user: 2,
            item: 3,
            rating: 4.0,
        }],
        2,
    );
    wait_for(5, "semi-sync ship", || {
        replica_client.health().unwrap().seq == Some(2)
    });

    shutdown_daemon(&a);
    primary.handle.join().unwrap().unwrap();
    shutdown_daemon(&b);
    replica.handle.join().unwrap().unwrap();
    let (_, hwm_b, seq_b) = recovered_graph(&replica.dir);
    assert_eq!((hwm_b, seq_b), (2, 2), "both batches exactly once");
    std::fs::remove_dir_all(&primary.dir).ok();
    std::fs::remove_dir_all(&replica.dir).ok();
}

#[test]
fn failover_client_discovers_routes_and_spreads_reads() {
    let (a, b) = (free_addr(), free_addr());
    let peers = vec![a.clone(), b.clone()];
    let primary = spawn_node(&scratch("fc-a"), &a, None, &peers, 50);
    let replica = spawn_node(&scratch("fc-b"), &b, Some(&a), &peers, 50);

    let mut fc = FailoverClient::connect(&peers, retry_policy(3))
        .unwrap()
        .spread_reads(true);
    assert_eq!(
        fc.leader(),
        Some(a.as_str()),
        "health discovery finds the primary"
    );
    assert_eq!(fc.next_batch(), 1);

    // Writes land on the primary even though this client also reads
    // from the replica.
    for i in 0..6u32 {
        fc.update(&[Update::AddRating {
            user: i % 8,
            item: i % 10,
            rating: 1.5,
        }])
        .unwrap();
    }
    // Wait until the replica caught up, then spread reads: both
    // endpoints must answer consistently.
    let mut replica_client = Client::connect(&b).unwrap();
    wait_for(5, "replica catch-up", || {
        replica_client.health().unwrap().seq == Some(6)
    });
    let first = fc.neighbors(0).unwrap();
    let second = fc.neighbors(0).unwrap(); // round-robins to the other endpoint
    assert_eq!(first, second, "spread reads agree once caught up");
    assert_eq!(fc.failovers(), 0);

    shutdown_daemon(&a);
    primary.handle.join().unwrap().unwrap();
    shutdown_daemon(&b);
    replica.handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&primary.dir).ok();
    std::fs::remove_dir_all(&replica.dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary streams, the primary killed at an arbitrary batch
    /// index: the failover client lands every batch exactly once on
    /// the surviving node, whose recovered state is bit-exact against
    /// a fault-free single-engine reference.
    #[test]
    fn failover_chaos_preserves_exactly_once_and_bit_exact_state(
        stream in arb_stream(),
        batch in 1usize..5,
        kill_frac in 0.0f64..1.0,
    ) {
        let seed = seed_dataset();
        let mut reference = OnlineKnn::new(&seed, OnlineConfig::new(3));
        let chunks: Vec<Vec<Update>> = stream.chunks(batch).map(<[Update]>::to_vec).collect();
        let kill_at = ((chunks.len() as f64) * kill_frac) as usize;

        let (a, b) = (free_addr(), free_addr());
        let peers = vec![a.clone(), b.clone()];
        let primary = spawn_node(&scratch("chaos-a"), &a, None, &peers, 25);
        let replica = spawn_node(&scratch("chaos-b"), &b, Some(&a), &peers, 25);

        let mut fc = FailoverClient::connect(&peers, retry_policy(11)).unwrap();
        prop_assert_eq!(fc.leader(), Some(a.as_str()));
        prop_assert_eq!(fc.next_batch(), 1);

        // Prime the channel: semi-sync only covers writes made while a
        // subscriber is attached, so let the replica connect and ship
        // one batch before any kill can happen.
        fc.update(&[Update::AddUser]).unwrap();
        reference.apply_batch(vec![Update::AddUser]);
        let mut survivor = Client::connect(&b).unwrap();
        {
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                if survivor.health().unwrap().seq == Some(1) {
                    break;
                }
                prop_assert!(Instant::now() < deadline, "replica never attached");
                std::thread::sleep(Duration::from_millis(10));
            }
        }

        let mut primary_handle = Some(primary.handle);
        for (i, chunk) in chunks.iter().enumerate() {
            if i == kill_at {
                // Graceful kill: acked batches are already replicated
                // (semi-sync), un-acked ones replay under their
                // original id and dedup on the new leader.
                shutdown_daemon(&a);
                primary_handle.take().unwrap().join().unwrap().unwrap();
            }
            let ack = fc.update(chunk);
            prop_assert!(ack.is_ok(), "batch {i} must land within the retry budget: {:?}", ack.err());
            reference.apply_batch(chunk.clone());
        }
        if let Some(handle) = primary_handle.take() {
            shutdown_daemon(&a);
            handle.join().unwrap().unwrap();
        }
        let batches = chunks.len() as u64 + 1; // priming batch + the stream
        prop_assert_eq!(fc.next_batch(), batches + 1);
        if kill_at < chunks.len() {
            prop_assert_eq!(fc.leader(), Some(b.as_str()), "writes re-routed to the survivor");
            prop_assert!(fc.failovers() >= 1);
        }

        // The survivor ends up primary and owns the whole stream.
        let total = stream.len() as u64 + 1;
        wait_for(10, "survivor promotion", || {
            let h = survivor.health().unwrap();
            h.role.as_deref() == Some("primary") && h.seq == Some(total)
        });
        let health = survivor.health().unwrap();
        prop_assert!(health.epoch >= 1, "promotion bumped the epoch");
        prop_assert_eq!(health.batch_hwm, batches, "every batch exactly once");

        shutdown_daemon(&b);
        replica.handle.join().unwrap().unwrap();
        let (graph, hwm, seq) = recovered_graph(&replica.dir);
        let expected = reference.graph();
        prop_assert_eq!(
            graph.as_ref(),
            expected.as_ref(),
            "promoted replica diverged from the fault-free reference"
        );
        prop_assert_eq!(hwm, batches);
        prop_assert_eq!(seq, total);
        std::fs::remove_dir_all(&primary.dir).ok();
        std::fs::remove_dir_all(&replica.dir).ok();
    }
}
