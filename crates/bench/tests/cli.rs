//! Smoke tests of the `experiments` binary.

use std::process::Command;

fn run_experiments(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let (ok, _, stderr) = run_experiments(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}

#[test]
fn unknown_experiment_fails() {
    let dir = std::env::temp_dir().join("kiff-cli-unknown");
    let (ok, _, stderr) =
        run_experiments(&["table42", "--scale", "0.02", "--out", dir.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("unknown experiment"), "stderr: {stderr}");
}

#[test]
fn bad_option_fails() {
    let (ok, _, stderr) = run_experiments(&["table1", "--bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown option"), "stderr: {stderr}");
}

#[test]
fn table1_tiny_scale_writes_reports() {
    let dir = std::env::temp_dir().join("kiff-cli-table1");
    std::fs::remove_dir_all(&dir).ok();
    let (ok, stdout, stderr) = run_experiments(&[
        "table1",
        "--scale",
        "0.02",
        "--seed",
        "7",
        "--threads",
        "2",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("Table I"), "stdout: {stdout}");
    assert!(dir.join("table1.txt").exists());
    assert!(dir.join("table1.json").exists());
    let json = std::fs::read_to_string(dir.join("table1.json")).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed["id"], "table1");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn table7_tiny_scale_shows_rcs_advantage() {
    let dir = std::env::temp_dir().join("kiff-cli-table7");
    std::fs::remove_dir_all(&dir).ok();
    let (ok, stdout, stderr) = run_experiments(&[
        "table7",
        "--scale",
        "0.02",
        "--threads",
        "2",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("Top k from RCS"), "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn online_tiny_scale_writes_bench_baseline() {
    let dir = std::env::temp_dir().join("kiff-cli-online");
    std::fs::remove_dir_all(&dir).ok();
    let (ok, stdout, stderr) = run_experiments(&[
        "online",
        "--scale",
        "0.1",
        "--seed",
        "7",
        "--threads",
        "2",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("Online maintenance"), "stdout: {stdout}");
    assert!(stdout.contains("updates/s"), "stdout: {stdout}");
    assert!(dir.join("online.txt").exists());
    assert!(dir.join("online.json").exists());
    let baseline = std::fs::read_to_string(dir.join("BENCH_online.json")).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&baseline).unwrap();
    assert!(parsed["rebuild"]["sim_evals"].as_f64().unwrap() > 0.0);
    assert_eq!(parsed["runs"][0]["mode"], "one-by-one");
    assert_eq!(parsed["runs"][1]["mode"], "batched");
    std::fs::remove_dir_all(&dir).ok();
}
