//! Bounded neighbour heaps and graph snapshots.

use parking_lot::Mutex;

use kiff_dataset::UserId;

/// One directed KNN edge: neighbour id and its similarity to the owner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Neighbour user id.
    pub id: UserId,
    /// Similarity to the owning user.
    pub sim: f64,
}

/// An entry of a [`KnnHeap`]: a neighbour plus NN-Descent's `new` flag
/// ("to only consider new neighbors-of-neighbors during each iteration",
/// §IV-B). KIFF ignores the flag.
#[derive(Debug, Clone, Copy)]
pub struct HeapEntry {
    /// Similarity to the heap's owner.
    pub sim: f64,
    /// Neighbour id.
    pub id: UserId,
    /// True until the entry has been sampled by NN-Descent's join step.
    pub is_new: bool,
}

/// `a` strictly better than `b`: higher similarity, ties to smaller id.
#[inline]
fn better(a: (f64, u32), b: (f64, u32)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// Outcome of offering an edge to a [`KnnHeap`] — the information an
/// incremental maintainer needs to keep reverse adjacency and change
/// statistics consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapChange {
    /// The offer entered the heap; `evicted` is the id it displaced when
    /// the heap was already full.
    Inserted {
        /// Id evicted to make room, if any.
        evicted: Option<UserId>,
    },
    /// The id is already a neighbour; the offer was ignored (use
    /// [`KnnHeap::reprioritize`] to refresh a stale similarity).
    AlreadyPresent,
    /// The offer did not beat the current worst entry.
    Rejected,
}

/// Counts of heap edits applied during one maintenance step — the
/// per-update change statistics the online engine reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EditStats {
    /// Edges newly inserted into some heap.
    pub inserts: u64,
    /// Edges evicted by a better insert.
    pub evictions: u64,
    /// Edges explicitly removed (similarity collapsed to zero).
    pub removals: u64,
    /// Stored similarities refreshed in place.
    pub reprioritized: u64,
}

impl EditStats {
    /// Total heap mutations.
    pub fn total(&self) -> u64 {
        self.inserts + self.evictions + self.removals + self.reprioritized
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &EditStats) {
        self.inserts += other.inserts;
        self.evictions += other.evictions;
        self.removals += other.removals;
        self.reprioritized += other.reprioritized;
    }
}

/// The current approximation `k̂nn_u` of one user's neighbourhood: "a heap
/// of maximum size k, with the similarity between u and its neighbors used
/// as priority" (§III-C).
///
/// The worst retained entry sits at the root; duplicate ids are rejected so
/// re-evaluated pairs cannot inflate change counts.
#[derive(Debug, Clone)]
pub struct KnnHeap {
    entries: Vec<HeapEntry>,
    capacity: usize,
}

impl KnnHeap {
    /// An empty heap retaining at most `k` neighbours.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            entries: Vec::with_capacity(k),
            capacity: k,
        }
    }

    /// Maximum neighbourhood size `k`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of neighbours.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the neighbourhood is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The worst retained (similarity, id), if any.
    pub fn worst(&self) -> Option<(f64, UserId)> {
        self.entries.first().map(|e| (e.sim, e.id))
    }

    /// Whether `id` is currently a neighbour (linear scan — `k ≤ 50`).
    pub fn contains(&self, id: UserId) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// The paper's UPDATENN (Algorithm 1, lines 14–16): offers `(sim, id)`
    /// and reports whether the neighbourhood changed.
    ///
    /// Duplicates are rejected; when full, the offer must beat the current
    /// worst entry.
    pub fn update(&mut self, sim: f64, id: UserId) -> bool {
        matches!(self.offer(sim, id), HeapChange::Inserted { .. })
    }

    /// UPDATENN with full outcome reporting: like [`KnnHeap::update`] but
    /// returns what happened, including the evicted id — which incremental
    /// maintainers need to keep reverse adjacency consistent.
    pub fn offer(&mut self, sim: f64, id: UserId) -> HeapChange {
        debug_assert!(!sim.is_nan());
        if self.contains(id) {
            return HeapChange::AlreadyPresent;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(HeapEntry {
                sim,
                id,
                is_new: true,
            });
            self.sift_up(self.entries.len() - 1);
            HeapChange::Inserted { evicted: None }
        } else {
            let root = self.entries[0];
            if better((sim, id), (root.sim, root.id)) {
                self.entries[0] = HeapEntry {
                    sim,
                    id,
                    is_new: true,
                };
                self.sift_down(0);
                HeapChange::Inserted {
                    evicted: Some(root.id),
                }
            } else {
                HeapChange::Rejected
            }
        }
    }

    /// Removes `id` from the neighbourhood, restoring the heap property.
    /// Returns whether it was present. Used when a deleted rating collapses
    /// a similarity to zero (a non-sharing pair is not a valid KNN edge
    /// under the sparse axioms).
    pub fn remove(&mut self, id: UserId) -> bool {
        let Some(pos) = self.entries.iter().position(|e| e.id == id) else {
            return false;
        };
        self.entries.swap_remove(pos);
        self.heapify();
        true
    }

    /// Refreshes the stored similarity of `id` in place, restoring the
    /// heap property; returns the previous similarity when present.
    /// Incremental repair uses this when a profile mutation stales the
    /// similarities of existing edges.
    pub fn reprioritize(&mut self, id: UserId, sim: f64) -> Option<f64> {
        debug_assert!(!sim.is_nan());
        let entry = self.entries.iter_mut().find(|e| e.id == id)?;
        let old = entry.sim;
        entry.sim = sim;
        if old != sim {
            self.heapify();
        }
        Some(old)
    }

    /// Re-establishes the heap property bottom-up (`k ≤ 50`, so the O(k)
    /// rebuild is cheaper than being clever).
    fn heapify(&mut self) {
        for i in (0..self.entries.len() / 2).rev() {
            self.sift_down(i);
        }
    }

    /// Iterates entries in unspecified (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = &HeapEntry> {
        self.entries.iter()
    }

    /// Ids of entries still flagged `new`, clearing the flag (NN-Descent's
    /// sampling step; with full sampling every new entry is taken).
    pub fn take_new_ids(&mut self) -> Vec<UserId> {
        let mut ids = Vec::new();
        for e in &mut self.entries {
            if e.is_new {
                e.is_new = false;
                ids.push(e.id);
            }
        }
        ids
    }

    /// Ids currently flagged `new`, without clearing (NN-Descent's sampled
    /// variant chooses a subset before clearing via
    /// [`KnnHeap::clear_new_flag`]).
    pub fn new_ids(&self) -> Vec<UserId> {
        self.entries
            .iter()
            .filter(|e| e.is_new)
            .map(|e| e.id)
            .collect()
    }

    /// Clears the `new` flag of `id` if present.
    pub fn clear_new_flag(&mut self, id: UserId) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.id == id) {
            e.is_new = false;
        }
    }

    /// Rewrites every entry's `new` flag as `is_new(id)`. NN-Descent's
    /// deterministic parallel mode retags heaps *after* each concurrent
    /// join phase from a serial membership diff, because flags written
    /// during the joins depend on offer interleaving (an entry evicted
    /// and re-inserted keeps `new`, one never displaced does not).
    pub fn retag_new(&mut self, mut is_new: impl FnMut(UserId) -> bool) {
        for e in &mut self.entries {
            e.is_new = is_new(e.id);
        }
    }

    /// All current neighbour ids (unordered).
    pub fn ids(&self) -> Vec<UserId> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// Neighbours sorted best-first.
    pub fn sorted_neighbors(&self) -> Vec<Neighbor> {
        let mut out: Vec<Neighbor> = self
            .entries
            .iter()
            .map(|e| Neighbor {
                id: e.id,
                sim: e.sim,
            })
            .collect();
        out.sort_unstable_by(|a, b| {
            b.sim
                .partial_cmp(&a.sim)
                .expect("NaN similarity")
                .then_with(|| a.id.cmp(&b.id))
        });
        out
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            let (p, c) = (self.entries[parent], self.entries[i]);
            if better((p.sim, p.id), (c.sim, c.id)) {
                self.entries.swap(parent, i);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            for child in [l, r] {
                if child < n {
                    let (s, c) = (self.entries[smallest], self.entries[child]);
                    if better((s.sim, s.id), (c.sim, c.id)) {
                        smallest = child;
                    }
                }
            }
            if smallest == i {
                break;
            }
            self.entries.swap(i, smallest);
            i = smallest;
        }
    }
}

/// The mutable, thread-shared state of a KNN construction: one lock-guarded
/// heap per user.
#[derive(Debug)]
pub struct SharedKnn {
    heaps: Vec<Mutex<KnnHeap>>,
    k: usize,
}

impl SharedKnn {
    /// Empty neighbourhoods for `n` users with capacity `k`.
    pub fn new(n: usize, k: usize) -> Self {
        Self {
            heaps: (0..n).map(|_| Mutex::new(KnnHeap::new(k))).collect(),
            k,
        }
    }

    /// Neighbourhood size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.heaps.len()
    }

    /// UPDATENN on `u`'s heap; returns 1 if it changed, 0 otherwise (the
    /// integer form matches Algorithm 1's change counting).
    #[inline]
    pub fn update(&self, u: UserId, v: UserId, sim: f64) -> u64 {
        debug_assert_ne!(u, v, "self-loops are not valid KNN edges");
        u64::from(self.heaps[u as usize].lock().update(sim, v))
    }

    /// Locks and returns `u`'s heap guard (for bulk operations by the
    /// owner's worker).
    pub fn lock(&self, u: UserId) -> parking_lot::MutexGuard<'_, KnnHeap> {
        self.heaps[u as usize].lock()
    }

    /// Snapshots the current state as an immutable [`KnnGraph`].
    pub fn snapshot(&self) -> KnnGraph {
        let neighbors = self
            .heaps
            .iter()
            .map(|h| h.lock().sorted_neighbors())
            .collect();
        KnnGraph {
            k: self.k,
            neighbors,
        }
    }
}

/// An immutable KNN graph: for each user, its neighbours sorted by
/// decreasing similarity (ties by ascending id).
#[derive(Debug, Clone, PartialEq)]
pub struct KnnGraph {
    k: usize,
    neighbors: Vec<Vec<Neighbor>>,
}

impl KnnGraph {
    /// Builds a graph from per-user neighbour lists (sorted on entry).
    pub fn from_neighbors(k: usize, mut neighbors: Vec<Vec<Neighbor>>) -> Self {
        for list in &mut neighbors {
            list.sort_unstable_by(|a, b| {
                b.sim
                    .partial_cmp(&a.sim)
                    .expect("NaN similarity")
                    .then_with(|| a.id.cmp(&b.id))
            });
        }
        Self { k, neighbors }
    }

    /// The neighbourhood size the graph was built for. Individual lists may
    /// be shorter when fewer candidates exist.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.neighbors.len()
    }

    /// `u`'s neighbours, best first.
    pub fn neighbors(&self, u: UserId) -> &[Neighbor] {
        &self.neighbors[u as usize]
    }

    /// Total directed edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.iter().map(|n| n.len()).sum()
    }

    /// Mean similarity over all edges (a cheap quality proxy).
    pub fn mean_similarity(&self) -> f64 {
        let edges = self.num_edges();
        if edges == 0 {
            return 0.0;
        }
        self.neighbors
            .iter()
            .flat_map(|n| n.iter().map(|e| e.sim))
            .sum::<f64>()
            / edges as f64
    }

    /// In-neighbour lists: `reverse()[v]` holds every `u` with `v ∈ knn_u`.
    /// NN-Descent's candidate generation uses the union of out- and
    /// in-neighbours ("both in-coming and out-going neighbors", §IV-B).
    pub fn reverse(&self) -> Vec<Vec<UserId>> {
        let mut rev = vec![Vec::new(); self.neighbors.len()];
        for (u, list) in self.neighbors.iter().enumerate() {
            for n in list {
                rev[n.id as usize].push(u as UserId);
            }
        }
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_keeps_best_k() {
        let mut h = KnnHeap::new(2);
        assert!(h.update(0.1, 1));
        assert!(h.update(0.5, 2));
        assert!(h.update(0.3, 3)); // evicts 0.1
        assert!(!h.update(0.2, 4)); // worse than worst (0.3)
        let ns = h.sorted_neighbors();
        assert_eq!(ns.len(), 2);
        assert_eq!(ns[0], Neighbor { id: 2, sim: 0.5 });
        assert_eq!(ns[1], Neighbor { id: 3, sim: 0.3 });
    }

    #[test]
    fn heap_rejects_duplicates() {
        let mut h = KnnHeap::new(3);
        assert!(h.update(0.5, 7));
        assert!(!h.update(0.5, 7), "same offer must not count as a change");
        assert!(!h.update(0.9, 7), "known id is rejected even if better");
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn heap_tie_break_prefers_smaller_id() {
        let mut h = KnnHeap::new(1);
        h.update(0.5, 10);
        assert!(h.update(0.5, 2));
        assert!(!h.update(0.5, 11));
        assert_eq!(h.sorted_neighbors()[0].id, 2);
    }

    #[test]
    fn offer_reports_evictions() {
        let mut h = KnnHeap::new(2);
        assert_eq!(h.offer(0.1, 1), HeapChange::Inserted { evicted: None });
        assert_eq!(h.offer(0.5, 2), HeapChange::Inserted { evicted: None });
        assert_eq!(h.offer(0.3, 3), HeapChange::Inserted { evicted: Some(1) });
        assert_eq!(h.offer(0.2, 4), HeapChange::Rejected);
        assert_eq!(h.offer(0.9, 2), HeapChange::AlreadyPresent);
    }

    #[test]
    fn remove_restores_heap_property() {
        let mut h = KnnHeap::new(4);
        for (s, id) in [(0.4, 1), (0.9, 2), (0.1, 3), (0.6, 4)] {
            h.update(s, id);
        }
        assert!(h.remove(2));
        assert!(!h.remove(2), "double remove reports absence");
        assert_eq!(h.len(), 3);
        assert_eq!(h.worst(), Some((0.1, 3)));
        // Further offers still behave.
        assert!(h.update(0.5, 5));
        let ids: Vec<u32> = h.sorted_neighbors().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![4, 5, 1, 3]);
    }

    #[test]
    fn reprioritize_refreshes_in_place() {
        let mut h = KnnHeap::new(3);
        h.update(0.4, 1);
        h.update(0.9, 2);
        h.update(0.6, 3);
        assert_eq!(h.reprioritize(2, 0.1), Some(0.9));
        assert_eq!(h.reprioritize(42, 0.5), None);
        assert_eq!(h.worst(), Some((0.1, 2)));
        // A full heap now evicts the demoted entry first.
        assert_eq!(h.offer(0.5, 5), HeapChange::Inserted { evicted: Some(2) });
    }

    #[test]
    fn edit_stats_merge_and_total() {
        let mut a = EditStats {
            inserts: 1,
            evictions: 2,
            removals: 3,
            reprioritized: 4,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.total(), 20);
        assert_eq!(a.inserts, 2);
    }

    #[test]
    fn new_flags_cleared_once() {
        let mut h = KnnHeap::new(4);
        h.update(0.1, 1);
        h.update(0.2, 2);
        let mut fresh = h.take_new_ids();
        fresh.sort_unstable();
        assert_eq!(fresh, vec![1, 2]);
        assert!(h.take_new_ids().is_empty());
        h.update(0.3, 3);
        assert_eq!(h.take_new_ids(), vec![3]);
    }

    #[test]
    fn shared_knn_update_counts_changes() {
        let shared = SharedKnn::new(3, 2);
        assert_eq!(shared.update(0, 1, 0.5), 1);
        assert_eq!(shared.update(0, 1, 0.5), 0);
        assert_eq!(shared.update(1, 0, 0.5), 1);
        let g = shared.snapshot();
        assert_eq!(g.neighbors(0), &[Neighbor { id: 1, sim: 0.5 }]);
        assert_eq!(g.neighbors(2), &[]);
    }

    #[test]
    fn graph_reverse_edges() {
        let g = KnnGraph::from_neighbors(
            2,
            vec![
                vec![Neighbor { id: 1, sim: 0.9 }, Neighbor { id: 2, sim: 0.5 }],
                vec![Neighbor { id: 2, sim: 0.8 }],
                vec![],
            ],
        );
        let rev = g.reverse();
        assert_eq!(rev[0], Vec::<u32>::new());
        assert_eq!(rev[1], vec![0]);
        assert_eq!(rev[2], vec![0, 1]);
    }

    #[test]
    fn graph_statistics() {
        let g = KnnGraph::from_neighbors(
            1,
            vec![
                vec![Neighbor { id: 1, sim: 0.4 }],
                vec![Neighbor { id: 0, sim: 0.6 }],
            ],
        );
        assert_eq!(g.num_edges(), 2);
        assert!((g.mean_similarity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_neighbors_sorts_lists() {
        let g = KnnGraph::from_neighbors(
            3,
            vec![vec![
                Neighbor { id: 5, sim: 0.1 },
                Neighbor { id: 3, sim: 0.9 },
                Neighbor { id: 4, sim: 0.9 },
            ]],
        );
        let ids: Vec<u32> = g.neighbors(0).iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 4, 5]);
    }

    #[test]
    fn concurrent_updates_preserve_invariants() {
        use kiff_parallel::parallel_for;
        let n = 200u32;
        let shared = SharedKnn::new(n as usize, 5);
        parallel_for(4, n as usize, 8, |range| {
            for u in range {
                for v in 0..n {
                    if v != u as u32 {
                        // Deterministic pseudo-similarity.
                        let sim =
                            f64::from((u as u32 ^ v).wrapping_mul(2_654_435_761) % 1000) / 1000.0;
                        shared.update(u as u32, v, sim);
                        shared.update(v, u as u32, sim);
                    }
                }
            }
        });
        let g = shared.snapshot();
        for u in 0..n {
            let ns = g.neighbors(u);
            assert_eq!(ns.len(), 5);
            // Sorted, unique ids, no self-loop.
            assert!(ns.windows(2).all(|w| w[0].sim >= w[1].sim));
            let mut ids: Vec<u32> = ns.iter().map(|x| x.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 5);
            assert!(!ids.contains(&u));
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The heap retains exactly the top-k by (sim, -id) among the
            /// distinct offered ids. Similarities are a deterministic
            /// function of the id, as they are in real use (sim(u, v) never
            /// changes between offers of the same pair).
            #[test]
            fn heap_matches_sort_model(
                offers in proptest::collection::vec(0u32..40, 1..200),
                k in 1usize..12,
            ) {
                let sim_of = |id: u32| f64::from(id.wrapping_mul(2_654_435_761) % 16) / 16.0;
                let mut heap = KnnHeap::new(k);
                let mut seen = std::collections::HashMap::new();
                for &id in &offers {
                    let sim = sim_of(id);
                    heap.update(sim, id);
                    seen.entry(id).or_insert(sim);
                }
                let mut model: Vec<(f64, u32)> =
                    seen.into_iter().map(|(id, sim)| (sim, id)).collect();
                model.sort_unstable_by(|a, b| {
                    b.0.partial_cmp(&a.0).unwrap().then_with(|| a.1.cmp(&b.1))
                });
                model.truncate(k);
                let got: Vec<(f64, u32)> = heap
                    .sorted_neighbors()
                    .into_iter()
                    .map(|n| (n.sim, n.id))
                    .collect();
                prop_assert_eq!(got, model);
            }
        }
    }
}
