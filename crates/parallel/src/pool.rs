//! Scoped, dynamically-scheduled parallel iteration.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested thread count: `None` or `Some(0)` means "all
/// available parallelism", anything else is taken literally.
pub fn effective_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Runs `body` over every sub-range of `0..n`, splitting into `grain`-sized
/// chunks handed to `threads` workers through a shared cursor.
///
/// With `threads == 1` the body runs inline on the calling thread in a
/// single deterministic sweep — the mode used by tests that compare against
/// sequential references.
pub fn parallel_for<F>(threads: usize, n: usize, grain: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    assert!(grain > 0, "grain must be positive");
    if n == 0 {
        return;
    }
    if threads <= 1 {
        body(0..n);
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n.div_ceil(grain)) {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(grain, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + grain).min(n);
                body(start..end);
            });
        }
    });
}

/// Runs `body` once over every element of `items` with exclusive mutable
/// access, handing elements to `threads` workers through a shared cursor.
///
/// This is the shard-execution primitive of the sharded online engine:
/// each element is a shard's private state, the body repairs it in place,
/// and the shared cursor keeps skewed shards from idling the pool. With
/// `threads == 1` the body runs inline in index order — the deterministic
/// mode tests compare against sequential references.
pub fn parallel_for_each_mut<T, F>(threads: usize, items: &mut [T], body: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    if threads <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            body(i, item);
        }
        return;
    }
    // Hand out elements through an atomic cursor over raw slots: each index
    // is claimed exactly once, so no two workers ever hold the same element.
    let cursor = AtomicUsize::new(0);
    let base = SendPtr(items.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: `i < n` is claimed by exactly one worker (the
                // fetch_add is a unique ticket), so this is the only live
                // reference to `items[i]`; the scope outlives no borrow.
                let item = unsafe { &mut *base.get().add(i) };
                body(i, item);
            });
        }
    });
}

/// A raw pointer wrapper that is `Sync` so scoped workers can share the
/// slice base; safety rests on the unique-ticket cursor above. Accessed
/// through a method so closures capture the wrapper, not the raw field.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Parallel fold: each worker owns an accumulator created by `init`, feeds it
/// chunks via `fold`, and the per-worker results are combined with `merge`.
///
/// The merge order is unspecified; `merge` must be associative and
/// commutative for deterministic results.
pub fn parallel_fold<A, I, F, M>(
    threads: usize,
    n: usize,
    grain: usize,
    init: I,
    fold: F,
    merge: M,
) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, Range<usize>) + Sync,
    M: Fn(A, A) -> A,
{
    assert!(grain > 0, "grain must be positive");
    if n == 0 {
        return init();
    }
    if threads <= 1 {
        let mut acc = init();
        fold(&mut acc, 0..n);
        return acc;
    }
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(n.div_ceil(grain));
    let accs: Vec<A> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut acc = init();
                    loop {
                        let start = cursor.fetch_add(grain, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + grain).min(n);
                        fold(&mut acc, start..end);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut iter = accs.into_iter();
    let first = iter.next().expect("at least one worker");
    iter.fold(first, merge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(effective_threads(Some(3)), 3);
        assert!(effective_threads(None) >= 1);
        assert!(effective_threads(Some(0)) >= 1);
    }

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 10_007; // prime, not a multiple of the grain
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(4, n, 64, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_thread_is_one_sweep() {
        let calls = AtomicUsize::new(0);
        parallel_for(1, 1000, 10, |range| {
            assert_eq!(range, 0..1000);
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn empty_range_is_noop() {
        parallel_for(4, 0, 16, |_| panic!("must not be called"));
    }

    #[test]
    fn grain_larger_than_n() {
        let sum = AtomicU64::new(0);
        parallel_for(8, 5, 1000, |range| {
            sum.fetch_add(range.map(|i| i as u64).sum::<u64>(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10); // 0+1+2+3+4
    }

    #[test]
    fn for_each_mut_visits_every_element_once() {
        for threads in [1, 2, 8] {
            let mut items: Vec<u64> = (0..257).collect();
            parallel_for_each_mut(threads, &mut items, |i, item| {
                assert_eq!(*item, i as u64, "threads {threads}");
                *item += 1000;
            });
            assert!(items.iter().enumerate().all(|(i, &v)| v == i as u64 + 1000));
        }
    }

    #[test]
    fn for_each_mut_empty_is_noop() {
        let mut items: Vec<u64> = Vec::new();
        parallel_for_each_mut(4, &mut items, |_, _| panic!("must not be called"));
    }

    #[test]
    fn for_each_mut_single_thread_is_in_order() {
        let order = std::sync::Mutex::new(Vec::new());
        let mut items = [0u8; 9];
        parallel_for_each_mut(1, &mut items, |i, _| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn fold_sums_match_sequential() {
        let n = 100_000usize;
        for threads in [1, 2, 8] {
            let total = parallel_fold(
                threads,
                n,
                128,
                || 0u64,
                |acc, range| {
                    for i in range {
                        *acc += i as u64;
                    }
                },
                |a, b| a + b,
            );
            assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
        }
    }

    #[test]
    fn fold_collects_disjoint_chunks() {
        let parts = parallel_fold(
            4,
            1000,
            37,
            Vec::new,
            |acc: &mut Vec<usize>, range| acc.extend(range),
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        let mut sorted = parts;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
    }
}
