//! Disjoint-set forest (union–find) with path halving and union by size.
//!
//! Used by the graph-analysis utilities to extract connected components
//! of KNN graphs in near-linear time.

/// A disjoint-set forest over `0..n`.
///
/// ```
/// use kiff_collections::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(1, 2);
/// assert!(uf.connected(0, 2));
/// assert_eq!(uf.num_sets(), 2);
/// assert_eq!(uf.set_sizes(), vec![3, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    /// Parent pointers; roots point at themselves.
    parent: Vec<u32>,
    /// Subtree sizes, valid at roots only.
    size: Vec<u32>,
    /// Number of disjoint sets remaining.
    sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "UnionFind is u32-indexed");
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// The representative of `x`'s set (path halving).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// distinct (union by size).
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: u32) -> usize {
        let root = self.find(x);
        self.size[root as usize] as usize
    }

    /// Sizes of all sets, descending.
    pub fn set_sizes(&mut self) -> Vec<usize> {
        let n = self.len();
        let mut sizes = Vec::with_capacity(self.sets);
        for x in 0..n as u32 {
            if self.find(x) == x {
                sizes.push(self.size[x as usize] as usize);
            }
        }
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0), "repeat union must be a no-op");
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert_eq!(uf.set_size(3), 2);
        assert_eq!(uf.set_sizes(), vec![2, 2, 1]);
    }

    #[test]
    fn chains_collapse() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert_eq!(uf.set_size(0), 100);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn empty_and_single() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_sizes(), Vec::<usize>::new());
        let mut one = UnionFind::new(1);
        assert_eq!(one.find(0), 0);
        assert_eq!(one.num_sets(), 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Reference connectivity: repeated relaxation over the edge list.
        fn naive_components(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
            let mut comp: Vec<u32> = (0..n as u32).collect();
            loop {
                let mut changed = false;
                for &(a, b) in edges {
                    let (ca, cb) = (comp[a as usize], comp[b as usize]);
                    let target = ca.min(cb);
                    if ca != target {
                        comp[a as usize] = target;
                        changed = true;
                    }
                    if cb != target {
                        comp[b as usize] = target;
                        changed = true;
                    }
                }
                if !changed {
                    return comp;
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Union–find agrees with a naive fixpoint computation on
            /// random edge sets: same partition, same set count.
            #[test]
            fn matches_naive_reachability(
                n in 1usize..40,
                raw in proptest::collection::vec((0u32..40, 0u32..40), 0..80),
            ) {
                let edges: Vec<(u32, u32)> = raw
                    .into_iter()
                    .map(|(a, b)| (a % n as u32, b % n as u32))
                    .collect();
                let mut uf = UnionFind::new(n);
                for &(a, b) in &edges {
                    uf.union(a, b);
                }
                let reference = naive_components(n, &edges);
                for a in 0..n as u32 {
                    for b in 0..n as u32 {
                        prop_assert_eq!(
                            uf.connected(a, b),
                            reference[a as usize] == reference[b as usize],
                            "pair ({}, {})", a, b
                        );
                    }
                }
                let mut distinct: Vec<u32> = reference.clone();
                distinct.sort_unstable();
                distinct.dedup();
                prop_assert_eq!(uf.num_sets(), distinct.len());
                // Set sizes sum to n.
                prop_assert_eq!(uf.set_sizes().iter().sum::<usize>(), n);
            }
        }
    }

    #[test]
    fn union_by_size_bounds_depth() {
        // Adversarial order still yields near-flat trees; find() after
        // full compaction returns the same root for all members.
        let mut uf = UnionFind::new(64);
        for step in [1usize, 2, 4, 8, 16, 32] {
            for i in (0..64).step_by(2 * step) {
                if i + step < 64 {
                    uf.union(i as u32, (i + step) as u32);
                }
            }
        }
        let root = uf.find(0);
        for x in 0..64 {
            assert_eq!(uf.find(x), root);
        }
    }
}
