//! Planted-community bipartite generator with ground-truth user labels.
//!
//! KNN graphs feed classification (§I: "KNN graphs have emerged as a
//! fundamental building block of many on-line services providing …
//! classification"). Exercising that application needs labelled data,
//! which none of the paper's datasets carry. This generator plants `c`
//! user communities, partitions the item space into `c` blocks, and draws
//! each rating from the user's home block with probability `affinity`
//! (from a uniformly random other block otherwise). The resulting labels
//! are recoverable from profile similarity exactly when `affinity` is
//! high, which gives classification demos and tests a tunable difficulty
//! knob.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kiff_collections::FxHashSet;

use crate::dataset::{Dataset, DatasetBuilder};
use crate::generators::RatingModel;

/// Configuration of the planted-community generator.
#[derive(Debug, Clone)]
pub struct PlantedConfig {
    /// Dataset name.
    pub name: String,
    /// `|U|` — users, split evenly across communities.
    pub num_users: usize,
    /// `|I|` — items, partitioned evenly across communities.
    pub num_items: usize,
    /// Number of planted communities `c ≥ 1`.
    pub communities: usize,
    /// Ratings per user (each user's profile size).
    pub ratings_per_user: usize,
    /// Probability that a rating lands in the user's home item block.
    /// `1.0` = perfectly separable; `1 / c` = pure noise.
    pub affinity: f64,
    /// Rating semantics.
    pub rating_model: RatingModel,
    /// RNG seed.
    pub seed: u64,
}

impl PlantedConfig {
    /// A small, clearly separable configuration for tests and demos.
    pub fn tiny(name: &str, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            num_users: 300,
            num_items: 240,
            communities: 3,
            ratings_per_user: 12,
            affinity: 0.85,
            rating_model: RatingModel::Binary,
            seed,
        }
    }
}

/// Generates a labelled dataset: `labels[u]` is user `u`'s community in
/// `0..communities`. Deterministic in the seed.
pub fn generate_planted(config: &PlantedConfig) -> (Dataset, Vec<u32>) {
    assert!(config.communities >= 1, "need at least one community");
    assert!(
        config.num_items >= config.communities,
        "need at least one item per community"
    );
    assert!(
        (0.0..=1.0).contains(&config.affinity),
        "affinity must be a probability"
    );
    let c = config.communities;
    let block = config.num_items / c;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = DatasetBuilder::new(&config.name, config.num_users, config.num_items);
    let mut labels = Vec::with_capacity(config.num_users);
    let mut picked: FxHashSet<u32> = FxHashSet::default();

    for u in 0..config.num_users {
        let label = (u % c) as u32;
        labels.push(label);
        picked.clear();
        let budget = config.ratings_per_user.min(config.num_items);
        let mut guard = 0usize;
        while picked.len() < budget && guard < 50 * budget + 100 {
            guard += 1;
            let home = rng.gen::<f64>() < config.affinity;
            let target_block = if home || c == 1 {
                label as usize
            } else {
                // A uniformly random *other* block.
                let mut b = rng.gen_range(0..c - 1);
                if b >= label as usize {
                    b += 1;
                }
                b
            };
            // The last block absorbs the remainder items.
            let lo = target_block * block;
            let hi = if target_block == c - 1 {
                config.num_items
            } else {
                lo + block
            };
            let item = rng.gen_range(lo..hi) as u32;
            if picked.insert(item) {
                let rating = config.rating_model.sample(&mut rng);
                builder.add_rating(u as u32, item, rating);
            }
        }
    }
    (builder.build(), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_all_communities() {
        let cfg = PlantedConfig::tiny("pl", 3);
        let (ds, labels) = generate_planted(&cfg);
        assert_eq!(labels.len(), ds.num_users());
        let mut seen: Vec<u32> = labels.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn high_affinity_keeps_ratings_home() {
        let cfg = PlantedConfig {
            affinity: 1.0,
            ..PlantedConfig::tiny("home", 5)
        };
        let (ds, labels) = generate_planted(&cfg);
        let block = cfg.num_items / cfg.communities;
        for (u, i, _) in ds.iter_ratings() {
            let item_block = ((i as usize) / block).min(cfg.communities - 1);
            assert_eq!(item_block as u32, labels[u as usize], "user {u} item {i}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = PlantedConfig::tiny("det", 9);
        let (a, la) = generate_planted(&cfg);
        let (b, lb) = generate_planted(&cfg);
        assert_eq!(la, lb);
        assert_eq!(a.num_ratings(), b.num_ratings());
        let ea: Vec<_> = a.iter_ratings().collect();
        let eb: Vec<_> = b.iter_ratings().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn profile_sizes_match_budget() {
        let cfg = PlantedConfig::tiny("sz", 11);
        let (ds, _) = generate_planted(&cfg);
        for u in 0..ds.num_users() as u32 {
            assert_eq!(ds.user_degree(u), cfg.ratings_per_user);
        }
    }

    #[test]
    fn single_community_is_valid() {
        let cfg = PlantedConfig {
            communities: 1,
            affinity: 0.5,
            ..PlantedConfig::tiny("one", 13)
        };
        let (ds, labels) = generate_planted(&cfg);
        assert!(labels.iter().all(|&l| l == 0));
        assert_eq!(ds.num_users(), cfg.num_users);
    }

    #[test]
    #[should_panic(expected = "affinity")]
    fn rejects_invalid_affinity() {
        let cfg = PlantedConfig {
            affinity: 1.5,
            ..PlantedConfig::tiny("bad", 17)
        };
        let _ = generate_planted(&cfg);
    }
}
