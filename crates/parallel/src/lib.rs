#![warn(missing_docs)]

//! Minimal scoped parallel runtime for the KIFF workspace.
//!
//! The paper's implementations are "multi-threaded to parallelize the
//! treatment of individual users" (§IV). All three algorithms here share the
//! same shape: a loop over users whose iterations are independent except for
//! synchronized heap updates. That needs nothing more than:
//!
//! * [`parallel_for`] — dynamically scheduled chunked parallel iteration
//!   over an index range, built on [`std::thread::scope`];
//! * [`parallel_fold`] — the same with per-thread accumulators merged at
//!   the end;
//! * [`parallel_for_each_mut`] — exclusive mutable iteration over a slice
//!   of worker states (the sharded online engine's shard-execution step);
//! * [`SharedSlice`] — disjoint-range mutable access to one shared output
//!   slice (the flat-CSR assembly's write primitive);
//! * [`ScratchPool`] — a checkout pool of reusable scratch objects
//!   (scorer workspaces, gather buffers) whose capacity survives across
//!   chunks and driver iterations;
//! * [`Counter`] / [`TimeAccumulator`] — relaxed atomic counters and
//!   per-activity wall-clock accumulators safe to update from any worker;
//! * [`ViewCell`] / [`SnapshotCache`] — epoch-published immutable views
//!   and version-tagged lazy snapshot caches (the serving layer's
//!   lock-free read path).
//!
//! Work is handed out through a shared atomic cursor in `grain`-sized
//! chunks, so skewed per-user costs (ubiquitous under power-law degree
//! distributions) cannot starve the pool.

pub mod counters;
pub mod pool;
pub mod scratch;
pub mod shared;
pub mod view;

pub use counters::{Counter, ScopedTimer, TimeAccumulator};
pub use pool::{effective_threads, parallel_fold, parallel_for, parallel_for_each_mut};
pub use scratch::{ScratchGuard, ScratchPool};
pub use shared::SharedSlice;
pub use view::{SnapshotCache, ViewCache, ViewCell};
