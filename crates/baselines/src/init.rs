//! Random initial graphs ("greedy approaches start from an initial random
//! graph", §II-D).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kiff_dataset::Dataset;
use kiff_graph::{KnnGraph, SharedKnn};
use kiff_parallel::Counter;
use kiff_similarity::{ScorerWorkspace, ScoringMode, Similarity, PREPARED_MIN_BATCH};

/// Fills `shared` with `k` distinct random neighbours per user, scored with
/// the real metric (entries carry the `new` flag for NN-Descent's first
/// join). Under [`ScoringMode::Prepared`] each user's profile is prepared
/// once and all of her `k` draws stream through the prepared scorer; both
/// modes score identically. Returns the number of similarity evaluations
/// spent.
pub fn random_init<S: Similarity + ?Sized>(
    dataset: &Dataset,
    sim: &S,
    shared: &SharedKnn,
    seed: u64,
    scoring: ScoringMode,
) -> u64 {
    let n = dataset.num_users();
    let k = shared.k();
    if n <= 1 {
        return 0;
    }
    let evals = Counter::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ws = ScorerWorkspace::new();
    // Below the batch threshold a user scores too few draws to amortise
    // preparation — same fallback as every other call site.
    let prepare = scoring == ScoringMode::Prepared && k.min(n - 1) >= PREPARED_MIN_BATCH;
    for u in 0..n as u32 {
        let mut scorer = prepare.then(|| sim.scorer(dataset, u, &mut ws));
        let mut picked = 0usize;
        let mut guard = 0usize;
        let budget = 20 * k + 100;
        while picked < k.min(n - 1) && guard < budget {
            guard += 1;
            let v = rng.gen_range(0..n as u32);
            if v == u {
                continue;
            }
            // `update` rejects duplicates, so a repeated draw is retried.
            let mut heap = shared.lock(u);
            if heap.contains(v) {
                continue;
            }
            let s = match scorer.as_mut() {
                Some(scorer) => scorer.score(v),
                None => sim.sim(dataset, u, v),
            };
            evals.incr();
            heap.update(s, v);
            picked += 1;
        }
    }
    evals.get()
}

/// A standalone random `k`-degree graph with true similarity scores — the
/// "Random" baseline of Table VII.
pub fn random_graph<S: Similarity + ?Sized>(
    dataset: &Dataset,
    sim: &S,
    k: usize,
    seed: u64,
) -> KnnGraph {
    random_graph_with(dataset, sim, k, seed, ScoringMode::default())
}

/// [`random_graph`] with an explicit [`ScoringMode`]; both modes build
/// identical graphs.
pub fn random_graph_with<S: Similarity + ?Sized>(
    dataset: &Dataset,
    sim: &S,
    k: usize,
    seed: u64,
    scoring: ScoringMode,
) -> KnnGraph {
    let shared = SharedKnn::new(dataset.num_users(), k);
    random_init(dataset, sim, &shared, seed, scoring);
    shared.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
    use kiff_similarity::WeightedCosine;

    #[test]
    fn fills_k_distinct_neighbors() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("ri", 3));
        let g = random_graph(&ds, &WeightedCosine::new(), 5, 7);
        for u in 0..ds.num_users() as u32 {
            let ids: Vec<u32> = g.neighbors(u).iter().map(|x| x.id).collect();
            assert_eq!(ids.len(), 5, "user {u}");
            assert!(!ids.contains(&u));
            let mut d = ids.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 5);
        }
    }

    #[test]
    fn scoring_modes_build_identical_graphs() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("rp", 13));
        let sim = WeightedCosine::fit(&ds);
        let prepared = random_graph_with(&ds, &sim, 5, 7, ScoringMode::Prepared);
        let pairwise = random_graph_with(&ds, &sim, 5, 7, ScoringMode::Pairwise);
        assert_eq!(prepared, pairwise);
    }

    #[test]
    fn deterministic_in_seed() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("rs", 5));
        let a = random_graph(&ds, &WeightedCosine::new(), 4, 11);
        let b = random_graph(&ds, &WeightedCosine::new(), 4, 11);
        assert_eq!(a, b);
        let c = random_graph(&ds, &WeightedCosine::new(), 4, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn scores_are_true_similarities() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("rt", 9));
        let sim = WeightedCosine::fit(&ds);
        let g = random_graph(&ds, &sim, 3, 1);
        for u in 0..ds.num_users() as u32 {
            for nb in g.neighbors(u) {
                assert!((nb.sim - sim.sim(&ds, u, nb.id)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn tiny_population_caps_neighbourhoods() {
        let mut b = kiff_dataset::DatasetBuilder::new("3users", 3, 2);
        b.add_rating(0, 0, 1.0);
        b.add_rating(1, 0, 1.0);
        b.add_rating(2, 1, 1.0);
        let ds = b.build();
        let g = random_graph(&ds, &WeightedCosine::new(), 10, 2);
        for u in 0..3u32 {
            assert_eq!(g.neighbors(u).len(), 2, "only two possible neighbours");
        }
    }
}
