//! The [`ShardedOnlineKnn`] engine: the online KNN graph partitioned
//! across user shards, repaired in parallel.
//!
//! KIFF's per-user decomposition means [`OnlineKnn`]'s state splits
//! naturally along user boundaries: shared-item counters, neighbour heaps
//! and repair queues are all per-user. This module exploits that split to
//! scale `apply_batch` throughput with cores:
//!
//! * **Partitioning** — every user belongs to exactly one shard, decided
//!   by a pluggable [`Partitioner`] (hash by default). A shard privately
//!   owns its users' counters, heaps and in-neighbour sets.
//! * **Serial mutate, parallel repair** — dataset mutations are applied
//!   serially, and every counter adjustment is *pre-bucketed* to its
//!   owning shard while the mutation's point-in-time rater list is in
//!   hand; the expensive phases — counter maintenance (each shard applies
//!   exactly its own bucket, no scan of the batch's full event list) and
//!   similarity re-scoring — run on all shards concurrently through
//!   [`kiff_parallel::parallel_for_each_mut`], with every worker reading
//!   the shared dataset through a read-only [`DeltaView`].
//! * **Asynchronous cross-shard repair** — a repair of user `u` may
//!   evaluate a pair `(u, v)` whose other endpoint lives on another
//!   shard, and `v`'s heap (plus the reverse-edge set of any user `u`'s
//!   heap edits touch) belongs to that shard alone. Instead of locking,
//!   the owning shard is sent a `ShardMsg` through per-shard message
//!   queues; messages are drained at the start of the next repair round,
//!   so a shard never blocks on another shard's heaps. Rounds repeat
//!   until every queue and inbox is empty (quiescence), which a batch
//!   always reaches: repairs are budget-bounded and bookkeeping messages
//!   generate no further work.
//!
//! The result preserves the single-engine consistency model — counters
//! stay exact, the graph is eventually consistent with a bounded repair
//! radius — while distributing the repair work. A property test
//! (`tests/sharded_equivalence.rs`) holds the sharded replay to within ε
//! of the single-engine replay's recall on the same stream.
//!
//! # Rebalancing
//!
//! Shard assignment is decided at admission, so a skewed stream (hot
//! communities, power-law arrivals) can unbalance the shards long after
//! the initial partitioning was fair. Two mechanisms push back:
//!
//! * **Live migration** — [`ShardedOnlineKnn::migrate_user`] extracts a
//!   user's counters, heap and in-neighbour row into a portable
//!   `UserShardState` and replays it into the target shard, re-routing
//!   any cross-shard messages still in flight for that user so readers
//!   never observe a half-moved user. A `Rebalancer` (enabled via
//!   [`RebalanceConfig`]) watches [`ShardedOnlineKnn::shard_sizes`] and
//!   the per-shard cross-traffic counters after every batch and migrates
//!   users out of overloaded shards during quiescent periods, preferring
//!   migrants with the most neighbours on the receiving shard.
//! * **Community-aware placement** — [`CommunityPartitioner`] buckets
//!   users by their dominant co-rating neighbourhood (union-find over
//!   each user's top co-raters, capped at a per-community size bound,
//!   then bin-packed onto shards), so co-raters land on the same shard
//!   and cross-shard [`ShardMsg`](self) volume drops — the locality
//!   argument of Cluster-and-Conquer applied to the online engine. It
//!   seeds from the RCS ranking and refreshes from the live graph
//!   (`CommunityPartitioner::from_graph` +
//!   [`ShardedOnlineKnn::repartition`]).
//!
//! `tests/rebalance_equivalence.rs` holds skewed replays with migrations
//! enabled to within ε of the unsharded engine; `tests/shard_stress.rs`
//! pins the balance bound and the hash-vs-community message ordering.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use kiff_collections::{FxHashMap, FxHashSet, SparseCounter};
use kiff_core::{build_rcs, CountingConfig};
use kiff_dataset::{Dataset, DeltaDataset, DeltaView, UserId};
use kiff_graph::{HeapChange, KnnGraph, KnnHeap, Neighbor, ShardReverse};
use kiff_parallel::{effective_threads, parallel_for_each_mut, SnapshotCache};
use kiff_similarity::ScorerWorkspace;
use kiff_telemetry::{Counter, Gauge, Histogram, Registry};

use crate::config::OnlineConfig;
use crate::engine::{batch_graph, OnlineKnn};
use crate::update::{Update, UpdateStats};

/// Assigns every user to a shard. Implementations must be deterministic
/// per call — routing consults the partitioner once per user (at
/// admission, or on [`ShardedOnlineKnn::repartition`]) and caches the
/// result; migrations may later move the user, so the cached assignment,
/// not the partitioner, is authoritative.
pub trait Partitioner: fmt::Debug + Send + Sync {
    /// The shard (in `0..num_shards`) owning `user`.
    fn shard_of(&self, user: UserId, num_shards: usize) -> usize;
}

/// Default partitioner: a Fibonacci multiplicative hash of the user id.
/// Spreads dense id ranges (the common case: ids are admission order)
/// evenly across shards with no state.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn shard_of(&self, user: UserId, num_shards: usize) -> usize {
        (user.wrapping_mul(0x9E37_79B9) >> 16) as usize % num_shards
    }
}

/// Round-robin partitioner: `user % num_shards`. Deterministic and easy
/// to reason about in tests and when replaying incidents; clusters less
/// evenly than [`HashPartitioner`] when user ids carry structure.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModuloPartitioner;

impl Partitioner for ModuloPartitioner {
    fn shard_of(&self, user: UserId, num_shards: usize) -> usize {
        user as usize % num_shards
    }
}

/// Range partitioner: shard `i` owns the contiguous id block
/// `[i·block, (i+1)·block)`, with the last shard absorbing everything
/// beyond. Contiguous cohorts (ids are admission order, so id ranges are
/// temporal cohorts) co-locate — but for exactly that reason every *new*
/// user lands on the newest shard: the classic hot-tail of range
/// sharding, and the skew scenario the `Rebalancer` exists for.
#[derive(Debug, Clone, Copy)]
pub struct RangePartitioner {
    /// Users per shard block.
    pub block: usize,
}

impl RangePartitioner {
    /// Blocks sized so `num_users` ids spread over `num_shards` shards.
    pub fn for_population(num_users: usize, num_shards: usize) -> Self {
        assert!(num_shards > 0, "num_shards must be positive");
        Self {
            block: num_users.div_ceil(num_shards).max(1),
        }
    }
}

impl Partitioner for RangePartitioner {
    fn shard_of(&self, user: UserId, num_shards: usize) -> usize {
        (user as usize / self.block.max(1)).min(num_shards - 1)
    }
}

/// Community-aware partitioner: places each user on the shard holding its
/// dominant co-rating neighbourhood, so the pairs a repair re-scores are
/// mostly shard-local and cross-shard message volume drops.
///
/// Construction is deterministic: a union-find over every user's top
/// co-raters (ranked by shared-item count — the RCS ordering of §II-C),
/// with each community capped at `ceil(n / num_shards)` members so one
/// giant component cannot swallow the balance; the resulting communities
/// are bin-packed largest-first onto the least-loaded shard. Seed it from
/// a dataset ([`CommunityPartitioner::from_dataset`]) or refresh it from
/// the live graph ([`CommunityPartitioner::from_graph`] +
/// [`ShardedOnlineKnn::repartition`]).
///
/// Users beyond the mapped id range (admitted after construction) fall
/// back to [`HashPartitioner`]; the `Rebalancer` pulls them toward
/// their community as their edges appear.
#[derive(Debug, Clone)]
pub struct CommunityPartitioner {
    /// `assignment[u]` = shard of user `u` at construction time.
    assignment: Vec<u32>,
}

/// Top co-raters / neighbours each user contributes as union-find edges.
const COMMUNITY_SEED_EDGES: usize = 3;

impl CommunityPartitioner {
    /// Seeds communities from the dataset's co-rating structure: each
    /// user's three top co-raters by shared-item count.
    pub fn from_dataset(dataset: &Dataset, num_shards: usize) -> Self {
        assert!(num_shards > 0, "num_shards must be positive");
        let rcs = build_rcs(
            dataset,
            &CountingConfig {
                pivot: false,
                keep_counts: false,
                ..Default::default()
            },
        );
        let n = dataset.num_users();
        let mut edges = Vec::with_capacity(n * COMMUNITY_SEED_EDGES);
        for u in 0..n as UserId {
            for &v in rcs.rcs(u).iter().take(COMMUNITY_SEED_EDGES) {
                edges.push((u, v));
            }
        }
        Self::from_edges(n, &edges, num_shards)
    }

    /// Refreshes communities from a live KNN graph: each user's top
    /// three neighbours by similarity.
    pub fn from_graph(graph: &KnnGraph, num_shards: usize) -> Self {
        assert!(num_shards > 0, "num_shards must be positive");
        let n = graph.num_users();
        let mut edges = Vec::with_capacity(n * COMMUNITY_SEED_EDGES);
        for u in 0..n as UserId {
            for nb in graph.neighbors(u).iter().take(COMMUNITY_SEED_EDGES) {
                edges.push((u, nb.id));
            }
        }
        Self::from_edges(n, &edges, num_shards)
    }

    /// Shared tail: capped union-find over `edges`, then largest-first
    /// bin-packing of the communities onto `num_shards` shards.
    fn from_edges(n: usize, edges: &[(UserId, UserId)], num_shards: usize) -> Self {
        let cap = n.div_ceil(num_shards).max(1) as u32;
        let mut parent: Vec<u32> = (0..n as u32).collect();
        let mut size = vec![1u32; n];
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for &(u, v) in edges {
            if (v as usize) >= n {
                continue;
            }
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv && size[ru as usize] + size[rv as usize] <= cap {
                // Smaller root id wins: construction order independent.
                let (keep, gone) = if ru < rv { (ru, rv) } else { (rv, ru) };
                parent[gone as usize] = keep;
                size[keep as usize] += size[gone as usize];
            }
        }
        // Communities sorted largest first (ties by root id), each placed
        // on the least-loaded shard (ties by shard id).
        let mut roots: Vec<u32> = (0..n as u32).filter(|&u| parent[u as usize] == u).collect();
        roots.sort_unstable_by_key(|&r| (std::cmp::Reverse(size[r as usize]), r));
        let mut shard_of_root = vec![0u32; n];
        let mut load = vec![0usize; num_shards];
        for &r in &roots {
            let target = (0..num_shards)
                .min_by_key(|&s| (load[s], s))
                .expect(">0 shards");
            shard_of_root[r as usize] = target as u32;
            load[target] += size[r as usize] as usize;
        }
        let assignment = (0..n as u32)
            .map(|u| shard_of_root[find(&mut parent, u) as usize])
            .collect();
        Self { assignment }
    }

    /// Number of users mapped at construction time.
    pub fn mapped_users(&self) -> usize {
        self.assignment.len()
    }
}

impl Partitioner for CommunityPartitioner {
    fn shard_of(&self, user: UserId, num_shards: usize) -> usize {
        match self.assignment.get(user as usize) {
            Some(&s) => s as usize % num_shards,
            None => HashPartitioner.shard_of(user, num_shards),
        }
    }
}

/// Knobs of the live shard `Rebalancer`. The defaults trigger a check
/// after every batch and keep the max/min shard-size ratio at 2.0 — the
/// bound the bench-smoke gate enforces on the skewed stream.
#[derive(Debug, Clone)]
pub struct RebalanceConfig {
    /// Rebalance when `max(shard_sizes) > max_ratio * min(shard_sizes)`
    /// (the min is floored at 1 so empty shards trigger, not divide).
    pub max_ratio: f64,
    /// Batches between balance checks (1 = after every batch).
    pub check_every: usize,
    /// Migration cap per rebalance cycle, bounding the quiescent-period
    /// work a single batch can absorb.
    pub max_moves: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        Self {
            max_ratio: 2.0,
            check_every: 1,
            max_moves: 64,
        }
    }
}

impl RebalanceConfig {
    /// A config keeping the shard-size ratio under `max_ratio`, with the
    /// default cadence and move cap.
    ///
    /// # Panics
    /// Panics unless `max_ratio > 1.0` (a ratio of 1 can never be met for
    /// sizes that do not divide evenly).
    pub fn new(max_ratio: f64) -> Self {
        assert!(max_ratio > 1.0, "max_ratio must exceed 1.0");
        Self {
            max_ratio,
            ..Self::default()
        }
    }

    /// Sets how many batches pass between balance checks.
    pub fn with_check_every(mut self, batches: usize) -> Self {
        assert!(batches > 0, "check cadence must be positive");
        self.check_every = batches;
        self
    }

    /// Sets the per-cycle migration cap.
    pub fn with_max_moves(mut self, moves: usize) -> Self {
        self.max_moves = moves;
        self
    }
}

/// Lifetime accounting of the `Rebalancer`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebalanceStats {
    /// Rebalance cycles that moved at least one user.
    pub cycles: u64,
    /// Users migrated by the rebalancer only. Migrations requested
    /// during a batch additionally land in [`UpdateStats::migrations`];
    /// direct [`ShardedOnlineKnn::migrate_user`] /
    /// [`ShardedOnlineKnn::repartition`] calls outside a batch are
    /// visible only in [`ShardedOnlineKnn::migrations_total`], which
    /// counts every cause.
    pub migrations: u64,
}

/// Watches shard sizes and cross-shard traffic after each batch and
/// migrates users out of overloaded shards during quiescent periods.
/// Owned by the engine; enable via [`ShardConfig::with_rebalance`].
#[derive(Debug)]
struct Rebalancer {
    config: RebalanceConfig,
    /// Batches applied since the last check.
    batches: usize,
    stats: RebalanceStats,
}

impl Rebalancer {
    fn new(config: RebalanceConfig) -> Self {
        Self {
            config,
            batches: 0,
            stats: RebalanceStats::default(),
        }
    }
}

/// Sharding knobs of the [`ShardedOnlineKnn`] engine.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards users are partitioned across.
    pub num_shards: usize,
    /// Worker threads driving the shards (`None` = all available). More
    /// threads than shards is never useful; the engine caps internally.
    pub threads: Option<usize>,
    /// User-to-shard assignment policy.
    pub partitioner: Arc<dyn Partitioner>,
    /// Live rebalancing policy (`None` = assignment stays fixed at
    /// admission, the pre-rebalancer behaviour).
    pub rebalance: Option<RebalanceConfig>,
}

impl ShardConfig {
    /// `num_shards` shards, hash partitioning, all available threads, no
    /// rebalancing.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards > 0, "num_shards must be positive");
        Self {
            num_shards,
            threads: None,
            partitioner: Arc::new(HashPartitioner),
            rebalance: None,
        }
    }

    /// Sets the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the user-to-shard assignment policy.
    pub fn with_partitioner(mut self, partitioner: Arc<dyn Partitioner>) -> Self {
        self.partitioner = partitioner;
        self
    }

    /// Enables live shard rebalancing under `config`.
    pub fn with_rebalance(mut self, config: RebalanceConfig) -> Self {
        self.rebalance = Some(config);
        self
    }
}

/// Where a user lives: its shard and its dense slot within that shard.
#[derive(Debug, Clone, Copy)]
struct Slot {
    shard: u32,
    idx: u32,
}

/// One cross-shard message. Every variant is applied by the shard owning
/// the user it names, at the start of the next repair round.
#[derive(Debug, Clone, Copy)]
enum ShardMsg {
    /// A similarity freshly evaluated by another shard's repair; `owner`
    /// is ours, and the value must land on its heap exactly as a local
    /// evaluation would.
    Scored {
        owner: UserId,
        other: UserId,
        sim: f64,
    },
    /// The KNN edge `source → target` appeared on `source`'s shard;
    /// `target` is ours and its in-neighbour set must record it.
    ReverseAdd { target: UserId, source: UserId },
    /// The KNN edge `source → target` was retracted on `source`'s shard.
    ReverseRemove { target: UserId, source: UserId },
}

impl ShardMsg {
    /// The user whose owning shard must apply this message — the routing
    /// key, re-consulted when a migration moves pending messages.
    fn subject(&self) -> UserId {
        match *self {
            ShardMsg::Scored { owner, .. } => owner,
            ShardMsg::ReverseAdd { target, .. } | ShardMsg::ReverseRemove { target, .. } => target,
        }
    }
}

/// One counter adjustment owned by a specific shard, bucketed serially at
/// mutation time — rater sets are point-in-time — so the parallel counter
/// phase applies exactly its own bucket instead of every shard scanning
/// the batch's full event list (the ROADMAP's high-shard-count
/// follow-up).
///
/// Each shard holds ONE list, pushed in event order and applied in that
/// order: counts may dip through zero transiently within a batch (an add
/// from one update funding a sub from a later one), so per-counter
/// operation order must match the mutation order — a phase split (all
/// bulks, then all scatters) would panic `SparseCounter::sub` on exactly
/// those interleavings.
///
/// The two sides of each `(user, rater)` pair have different shapes: the
/// mutated user's own counter absorbs the *whole* rater list (one
/// [`CounterAdj::Bulk`] sharing the mutation's `Arc`'d snapshot — no
/// per-pair memory, even for hot items), while each rater's counter lives
/// on its own shard and gets one [`CounterAdj::Scatter`] entry.
#[derive(Debug)]
enum CounterAdj {
    /// The mutated user's counter gains (or loses) one shared item with
    /// every user in `raters`.
    Bulk {
        /// Local slot of the mutated user's counter.
        slot: u32,
        /// Point-in-time co-rater snapshot (shared with the repair
        /// extras).
        raters: Arc<Vec<UserId>>,
        /// Increment (a rating appeared) or decrement (one was removed).
        added: bool,
    },
    /// One rater-side adjustment: the counter at local slot `slot` gains
    /// (or loses) one shared item with `other`.
    Scatter {
        /// Local slot of the owned counter.
        slot: u32,
        /// The co-rater whose shared count moves.
        other: UserId,
        /// Increment (a rating appeared) or decrement (one was removed).
        added: bool,
    },
}

/// One user's complete per-shard state, detached into portable form for
/// migration: everything [`Shard`] holds about the user, including the
/// repair work still pending this batch. Produced by `Shard::detach_user`
/// on the donor and consumed by `Shard::attach_user` on the target.
#[derive(Debug)]
struct UserShardState {
    /// The migrating user's global id.
    user: UserId,
    /// Live shared-item counter.
    counter: SparseCounter,
    /// Neighbour heap.
    heap: KnnHeap,
    /// In-neighbour row (global source ids).
    incoming: FxHashSet<UserId>,
    /// Whether the user was queued for repair on the donor.
    queued: bool,
    /// Whether the donor already repaired the user this batch.
    visited: bool,
    /// Targeted repair candidates accumulated this batch.
    extras: Vec<Arc<Vec<UserId>>>,
}

/// One in this many repairs is timed into `shard.N.repair_ns`. Repair
/// latency is the hottest per-event instrument in the stack; sampling
/// keeps the enabled-registry cost inside the telemetry bench's 3%
/// overhead gate while a uniform 1-in-8 sample still estimates the
/// same latency distribution (and its p99).
const SPAN_SAMPLE: u64 = 8;

/// A shard: the private online-engine state of the users it owns.
#[derive(Debug, Default)]
struct Shard {
    /// Global ids of owned users, by local slot.
    users: Vec<UserId>,
    /// Live shared-item counters of owned users (keys are global ids).
    counters: Vec<SparseCounter>,
    /// Neighbour heaps of owned users.
    heaps: Vec<KnnHeap>,
    /// In-neighbour sets of owned users (sources are global ids).
    incoming: ShardReverse,
    /// Owned users awaiting repair this batch.
    queue: VecDeque<UserId>,
    /// Targeted repair candidates for queued users, as shared
    /// point-in-time rater snapshots (one chunk per mutation).
    extras: FxHashMap<UserId, Vec<Arc<Vec<UserId>>>>,
    /// Owned users already repaired this batch.
    visited: FxHashSet<UserId>,
    /// Repairs performed this batch, against `budget`.
    repaired: u64,
    /// Repair budget for this batch (dirty users + propagation cap).
    budget: u64,
    /// Work accounting for this batch, merged into the engine's stats.
    stats: UpdateStats,
    /// Messages awaiting application by this shard.
    inbox: Vec<ShardMsg>,
    /// Messages produced this round, by destination shard.
    outbox: Vec<Vec<ShardMsg>>,
    /// `shard.N.cross_messages`: cross-shard messages sent over the
    /// shard's lifetime — the single source of truth for cross-traffic;
    /// the rebalancer, [`ShardedOnlineKnn::shard_cross_traffic`] and the
    /// per-batch [`UpdateStats::cross_messages`] delta all read it.
    /// Flushed in bulk at batch end, before any of those reads.
    cross_messages: Counter,
    /// Messages sent this batch, not yet flushed into `cross_messages`:
    /// [`Shard::send`] sits inside the repair loop, so it bumps this
    /// plain field and phase 4 publishes the batch's total in one `add`.
    pending_cross: u64,
    /// `shard.N.repairs`: single-user repairs performed (lifetime).
    /// Flushed in bulk at batch end — exact at every snapshot point but
    /// never touched inside the repair loop.
    tele_repairs: Counter,
    /// `online.sims`: similarity evaluations, shared with every other
    /// shard (same registry cell), mirroring the engine-wide
    /// `UpdateStats::sim_evals` total. Flushed in bulk at batch end.
    tele_sims: Counter,
    /// `shard.N.repair_ns`: repair wall-clock latency, sampled 1 in
    /// [`SPAN_SAMPLE`] repairs.
    repair_ns: Histogram,
    /// `shard.N.queue_depth`: repair-queue depth at the last round end.
    queue_depth: Gauge,
    /// Prepared-scorer arena for this shard's repairs.
    scorer_ws: ScorerWorkspace,
    /// Reusable repair staging buffer of `(candidate, similarity)`.
    scored: Vec<(UserId, f64)>,
}

impl Shard {
    fn new(num_shards: usize, my: usize, tele: &Registry) -> Self {
        Self {
            outbox: vec![Vec::new(); num_shards],
            cross_messages: tele.counter(&format!("shard.{my}.cross_messages")),
            tele_repairs: tele.counter(&format!("shard.{my}.repairs")),
            tele_sims: tele.counter("online.sims"),
            repair_ns: tele.histogram(&format!("shard.{my}.repair_ns")),
            queue_depth: tele.gauge(&format!("shard.{my}.queue_depth")),
            scorer_ws: ScorerWorkspace::with_telemetry(tele),
            ..Self::default()
        }
    }

    /// Admits a user, returning its local slot.
    fn push_user(&mut self, k: usize, user: UserId) -> u32 {
        let idx = self.users.len() as u32;
        self.users.push(user);
        self.counters.push(SparseCounter::new());
        self.heaps.push(KnnHeap::new(k));
        self.incoming.push_slot();
        idx
    }

    /// Whether this shard still has work queued this round.
    fn has_work(&self) -> bool {
        !self.inbox.is_empty() || !self.queue.is_empty()
    }

    /// Queues a cross-shard message, counting it toward the shard's
    /// cross-traffic (`shard.N.cross_messages`).
    fn send(&mut self, dest: usize, msg: ShardMsg) {
        self.outbox[dest].push(msg);
        self.pending_cross += 1;
    }

    /// Extracts `user`'s complete per-shard state (swap-remove: the last
    /// slot fills the hole). Returns the state and the user displaced
    /// into `slot`, whose cached assignment the caller must patch.
    fn detach_user(&mut self, slot: usize, user: UserId) -> (UserShardState, Option<UserId>) {
        debug_assert_eq!(self.users[slot], user, "slot map corrupt");
        let last = self.users.len() - 1;
        let displaced = (slot != last).then(|| self.users[last]);
        self.users.swap_remove(slot);
        let counter = self.counters.swap_remove(slot);
        let heap = self.heaps.swap_remove(slot);
        let incoming = self.incoming.detach_slot(slot);
        let queued = if let Some(pos) = self.queue.iter().position(|&q| q == user) {
            self.queue.remove(pos);
            true
        } else {
            false
        };
        (
            UserShardState {
                user,
                counter,
                heap,
                incoming,
                queued,
                visited: self.visited.remove(&user),
                extras: self.extras.remove(&user).unwrap_or_default(),
            },
            displaced,
        )
    }

    /// Replays a detached user into this shard, returning its local slot.
    /// The inverse of [`Shard::detach_user`]: pending repair work (queue
    /// membership, targeted candidates, visited mark) transfers with the
    /// state so a mid-batch migration neither loses nor repeats repairs.
    fn attach_user(&mut self, state: UserShardState) -> u32 {
        let idx = self.users.len() as u32;
        self.users.push(state.user);
        self.counters.push(state.counter);
        self.heaps.push(state.heap);
        let islot = self.incoming.attach_slot(state.incoming);
        debug_assert_eq!(islot, idx as usize);
        if state.queued {
            self.queue.push_back(state.user);
        }
        if state.visited {
            self.visited.insert(state.user);
        }
        if !state.extras.is_empty() {
            self.extras.insert(state.user, state.extras);
        }
        idx
    }

    /// Applies this shard's pre-bucketed counter adjustments — exactly the
    /// ones it owns, in mutation order (see [`CounterAdj`] on why the
    /// order matters).
    fn apply_counter_adjustments(&mut self, bucket: &[CounterAdj]) {
        for adj in bucket {
            match adj {
                CounterAdj::Bulk {
                    slot,
                    raters,
                    added,
                } => {
                    let counter = &mut self.counters[*slot as usize];
                    for &v in raters.iter() {
                        if *added {
                            counter.add(v);
                        } else {
                            counter.sub(v);
                        }
                    }
                    self.stats.counter_adjustments += raters.len() as u64;
                }
                CounterAdj::Scatter { slot, other, added } => {
                    let counter = &mut self.counters[*slot as usize];
                    if *added {
                        counter.add(*other);
                    } else {
                        counter.sub(*other);
                    }
                    self.stats.counter_adjustments += 1;
                }
            }
        }
    }

    /// One repair round: drain the inbox, then repair queued users within
    /// the batch budget, emitting cross-shard messages into the outbox.
    fn step(&mut self, my: u32, view: DeltaView<'_>, assign: &[Slot], config: &OnlineConfig) {
        for msg in std::mem::take(&mut self.inbox) {
            match msg {
                ShardMsg::Scored { owner, other, sim } => {
                    self.land(my, owner, other, sim, assign);
                }
                ShardMsg::ReverseAdd { target, source } => {
                    self.incoming
                        .add(assign[target as usize].idx as usize, source);
                }
                ShardMsg::ReverseRemove { target, source } => {
                    self.incoming
                        .remove(assign[target as usize].idx as usize, source);
                }
            }
        }
        while self.repaired < self.budget {
            let Some(u) = self.queue.pop_front() else {
                break;
            };
            if !self.visited.insert(u) {
                continue;
            }
            self.repaired += 1;
            let targeted = self.extras.remove(&u).unwrap_or_default();
            // Time 1 in SPAN_SAMPLE repairs: a clock pair plus a
            // histogram record on *every* repair is measurable against
            // the telemetry bench's 3% overhead gate, while the p99 of
            // a uniform sample estimates the same distribution. The
            // repairs counter itself stays exact — it is flushed in
            // bulk at batch end alongside the sims counter.
            if self.repaired % SPAN_SAMPLE == 1 {
                let span = self.repair_ns.span();
                self.repair(my, u, targeted, view, assign, config);
                span.finish();
            } else {
                self.repair(my, u, targeted, view, assign, config);
            }
        }
        if self.repaired >= self.budget {
            // Budget exhausted: drop the remaining cascade, exactly as the
            // single engine's propagation loop does.
            self.queue.clear();
            self.extras.clear();
        }
        self.queue_depth.set(self.queue.len() as i64);
    }

    /// Re-scores `u` (owned) against its targeted candidates, refreshed
    /// counter prefix, current neighbours and in-neighbours — the same
    /// candidate set as [`OnlineKnn`]'s repair.
    fn repair(
        &mut self,
        my: u32,
        u: UserId,
        targeted: Vec<Arc<Vec<UserId>>>,
        view: DeltaView<'_>,
        assign: &[Slot],
        config: &OnlineConfig,
    ) {
        let slot = assign[u as usize].idx as usize;
        let mut candidates: Vec<UserId> =
            Vec::with_capacity(targeted.iter().map(|c| c.len()).sum());
        for chunk in &targeted {
            candidates.extend_from_slice(chunk);
        }
        if candidates.len() > config.repair_width {
            // Deferred from the serial mutate phase: by now the counter
            // phase has run, so live counts rank the touched co-raters.
            // The single engine instead caps each mutation's chunk with
            // mid-batch counts; when this cap triggers the two engines
            // select (equally well-ranked but) different candidate
            // subsets — the reason 1-shard equivalence is exact only
            // while accumulated candidates stay below the width, and
            // ε-close above it.
            let counter = &self.counters[slot];
            candidates.select_nth_unstable_by_key(config.repair_width, |&v| {
                std::cmp::Reverse(counter.get(v))
            });
            candidates.truncate(config.repair_width);
        }
        candidates.extend(self.heaps[slot].ids());
        candidates.extend(self.incoming.in_neighbors(slot));
        candidates.extend(
            self.counters[slot]
                .top_by_count(config.repair_width)
                .into_iter()
                .map(|(v, _)| v),
        );
        candidates.sort_unstable();
        candidates.dedup();
        // Prepared scoring: `u`'s profile is preprocessed once, each
        // candidate scores in O(|UP_v|) — identical values to
        // `config.metric.eval` (the audits hold both to 1e-12).
        let mut scored = std::mem::take(&mut self.scored);
        scored.clear();
        {
            let scorer = self
                .scorer_ws
                .prepare(config.metric.kind(), view.profile(u));
            for v in candidates {
                if v == u {
                    continue;
                }
                scored.push((v, scorer.score(view.profile(v))));
            }
        }
        self.stats.sim_evals += scored.len() as u64;
        for &(v, s) in &scored {
            self.land(my, u, v, s, assign);
            let vslot = assign[v as usize];
            if vslot.shard == my {
                self.land(my, v, u, s, assign);
            } else {
                self.send(
                    vslot.shard as usize,
                    ShardMsg::Scored {
                        owner: v,
                        other: u,
                        sim: s,
                    },
                );
            }
        }
        self.scored = scored;
    }

    /// Lands an evaluated similarity on `owner`'s heap (`owner` is always
    /// ours), routing reverse-edge edits to the shard owning the other
    /// endpoint and enqueueing `owner` again when its neighbourhood
    /// degraded.
    fn land(&mut self, my: u32, owner: UserId, other: UserId, s: f64, assign: &[Slot]) {
        let slot = assign[owner as usize].idx as usize;
        if s <= 0.0 {
            if self.heaps[slot].remove(other) {
                self.retract_reverse(my, owner, other, assign);
                self.stats.edits.removals += 1;
                if !self.visited.contains(&owner) {
                    self.queue.push_back(owner);
                }
            }
        } else if let Some(old) = self.heaps[slot].reprioritize(other, s) {
            if old != s {
                self.stats.edits.reprioritized += 1;
                if s < old && !self.visited.contains(&owner) {
                    self.queue.push_back(owner);
                }
            }
        } else if let HeapChange::Inserted { evicted } = self.heaps[slot].offer(s, other) {
            self.stats.edits.inserts += 1;
            self.record_reverse(my, owner, other, assign);
            if let Some(e) = evicted {
                self.retract_reverse(my, owner, e, assign);
                self.stats.edits.evictions += 1;
            }
        }
    }

    /// Records `source → target` in the in-neighbour set of `target`,
    /// locally or by message.
    fn record_reverse(&mut self, my: u32, source: UserId, target: UserId, assign: &[Slot]) {
        let tslot = assign[target as usize];
        if tslot.shard == my {
            self.incoming.add(tslot.idx as usize, source);
        } else {
            self.send(
                tslot.shard as usize,
                ShardMsg::ReverseAdd { target, source },
            );
        }
    }

    /// Retracts `source → target` from the in-neighbour set of `target`,
    /// locally or by message.
    fn retract_reverse(&mut self, my: u32, source: UserId, target: UserId, assign: &[Slot]) {
        let tslot = assign[target as usize];
        if tslot.shard == my {
            self.incoming.remove(tslot.idx as usize, source);
        } else {
            self.send(
                tslot.shard as usize,
                ShardMsg::ReverseRemove { target, source },
            );
        }
    }
}

/// A KNN graph maintained incrementally by a pool of user shards.
///
/// Same public contract as [`OnlineKnn`] — apply updates, read
/// neighbourhoods, snapshot the graph — but `apply_batch` distributes
/// repair across shards and threads. Construct via
/// [`ShardedOnlineKnn::new`], [`ShardedOnlineKnn::from_graph`], or the
/// facade's `KnnGraphBuilder::into_sharded`.
#[derive(Debug)]
pub struct ShardedOnlineKnn {
    config: OnlineConfig,
    shard_config: ShardConfig,
    data: DeltaDataset,
    /// Shard/slot of every user: seeded by the partitioner at admission,
    /// thereafter authoritative — migrations rewrite it.
    assign: Vec<Slot>,
    shards: Vec<Shard>,
    /// Migrations requested while a batch may be in flight; applied
    /// between repair rounds (and drained at quiescence).
    pending_migrations: Vec<(UserId, u32)>,
    /// Live rebalancing policy, when enabled.
    rebalancer: Option<Rebalancer>,
    /// Users migrated over the engine's lifetime (all causes).
    migrations_total: u64,
    lifetime: UpdateStats,
    /// Cached [`ShardedOnlineKnn::graph`] snapshot. A [`SnapshotCache`]:
    /// concurrent readers build outside the lock and publication is a
    /// single version-checked swap, so a reader racing another reader
    /// can never observe a torn or stale-over-fresh entry.
    snapshot: SnapshotCache<KnnGraph>,
    /// Cached [`ShardedOnlineKnn::dataset`] materialization, invalidated
    /// by any dataset mutation.
    dataset: SnapshotCache<Dataset>,
    /// `online.apply_ns`: wall-clock of each `apply_batch` call.
    apply_ns: Histogram,
    /// `online.repair_round_ns`: wall-clock of each parallel repair
    /// round (inbox drain + budgeted repairs across all shards).
    repair_round_ns: Histogram,
    /// `online.migrations`: users migrated between shards, all causes —
    /// the registry twin of [`ShardedOnlineKnn::migrations_total`].
    tele_migrations: Counter,
}

impl ShardedOnlineKnn {
    /// Builds the initial graph with batch KIFF, then shards it for
    /// streaming.
    pub fn new(dataset: &Dataset, config: OnlineConfig, shards: ShardConfig) -> Self {
        let graph = batch_graph(dataset, config.k, config.metric);
        Self::from_graph(dataset, &graph, config, shards)
    }

    /// Shards an already-built graph (any construction algorithm) for
    /// streaming. Counters are seeded from one unpivoted batch counting
    /// pass, exactly like [`OnlineKnn::from_graph`].
    pub fn from_graph(
        dataset: &Dataset,
        graph: &KnnGraph,
        config: OnlineConfig,
        shard_config: ShardConfig,
    ) -> Self {
        assert_eq!(
            graph.num_users(),
            dataset.num_users(),
            "graph and dataset disagree on the user count"
        );
        let n = dataset.num_users();
        let num_shards = shard_config.num_shards;
        let rcs = build_rcs(
            dataset,
            &CountingConfig {
                pivot: false,
                keep_counts: true,
                ..Default::default()
            },
        );
        let mut shards: Vec<Shard> = (0..num_shards)
            .map(|s| Shard::new(num_shards, s, &config.telemetry))
            .collect();
        let mut assign = Vec::with_capacity(n);
        for u in 0..n as UserId {
            let s = shard_config.partitioner.shard_of(u, num_shards);
            let shard = &mut shards[s];
            let idx = shard.push_user(config.k, u);
            assign.push(Slot {
                shard: s as u32,
                idx,
            });
            let slot = idx as usize;
            let ids = rcs.rcs(u);
            let counts = rcs.counts(u).expect("keep_counts set");
            let counter = &mut shard.counters[slot];
            for (&v, &c) in ids.iter().zip(counts) {
                counter.add_n(v, c);
            }
            for nb in graph.neighbors(u) {
                shard.heaps[slot].update(nb.sim, nb.id);
            }
        }
        // Mirror the heaps into the owning shards' in-neighbour sets.
        let rebalancer = shard_config.rebalance.clone().map(Rebalancer::new);
        let tele = &config.telemetry;
        let apply_ns = tele.histogram("online.apply_ns");
        let repair_round_ns = tele.histogram("online.repair_round_ns");
        let tele_migrations = tele.counter("online.migrations");
        let mut engine = Self {
            config,
            shard_config,
            data: DeltaDataset::new(dataset.clone()),
            assign,
            shards,
            pending_migrations: Vec::new(),
            rebalancer,
            migrations_total: 0,
            lifetime: UpdateStats::default(),
            snapshot: SnapshotCache::new(),
            dataset: SnapshotCache::new(),
            apply_ns,
            repair_round_ns,
            tele_migrations,
        };
        for u in 0..n as UserId {
            let slot = engine.assign[u as usize];
            for id in engine.shards[slot.shard as usize].heaps[slot.idx as usize].ids() {
                let t = engine.assign[id as usize];
                engine.shards[t.shard as usize]
                    .incoming
                    .add(t.idx as usize, u);
            }
        }
        engine
    }

    /// The engine's online configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// The engine's sharding configuration.
    pub fn shard_config(&self) -> &ShardConfig {
        &self.shard_config
    }

    /// Neighbourhood size `k`.
    pub fn k(&self) -> usize {
        self.config.k
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Current number of users.
    pub fn num_users(&self) -> usize {
        self.data.num_users()
    }

    /// The live dataset view.
    pub fn data(&self) -> &DeltaDataset {
        &self.data
    }

    /// Work accumulated over the engine's lifetime.
    pub fn lifetime_stats(&self) -> &UpdateStats {
        &self.lifetime
    }

    /// The shard owning `u`.
    pub fn shard_of(&self, u: UserId) -> usize {
        self.assign[u as usize].shard as usize
    }

    /// Users owned per shard — the balance signal the `Rebalancer` acts
    /// on.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.users.len()).collect()
    }

    /// Cross-shard messages each shard has sent over its lifetime — the
    /// per-shard cross-traffic signal; high senders are poorly co-located
    /// with their users' neighbours. Read from the `shard.N.cross_messages`
    /// telemetry counters (reads 0 when the engine was built with a
    /// [`kiff_telemetry::Registry::disabled`] registry).
    pub fn shard_cross_traffic(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.cross_messages.get()).collect()
    }

    /// Total cross-shard messages sent over the engine's lifetime — the
    /// coordination cost a community-aware partitioner minimises. The sum
    /// of [`ShardedOnlineKnn::shard_cross_traffic`].
    pub fn cross_shard_messages(&self) -> u64 {
        self.shards.iter().map(|s| s.cross_messages.get()).sum()
    }

    /// Lifetime accounting of the rebalancer (all zeros when rebalancing
    /// is disabled).
    pub fn rebalance_stats(&self) -> RebalanceStats {
        self.rebalancer
            .as_ref()
            .map(|r| r.stats)
            .unwrap_or_default()
    }

    /// Users migrated between shards over the engine's lifetime, from
    /// every cause: rebalancer moves, requested migrations and direct
    /// [`ShardedOnlineKnn::migrate_user`] / [`ShardedOnlineKnn::repartition`]
    /// calls.
    pub fn migrations_total(&self) -> u64 {
        self.migrations_total
    }

    /// `u`'s current neighbours, best first.
    pub fn neighbors(&self, u: UserId) -> Vec<Neighbor> {
        let slot = self.assign[u as usize];
        self.shards[slot.shard as usize].heaps[slot.idx as usize].sorted_neighbors()
    }

    /// The live shared-item count `|UP_u ∩ UP_v|` (0 when disjoint), read
    /// from the shard owning `u`.
    pub fn shared_count(&self, u: UserId, v: UserId) -> u32 {
        let slot = self.assign[u as usize];
        self.shards[slot.shard as usize].counters[slot.idx as usize].get(v)
    }

    /// Snapshots the live graph. Cached between mutations like
    /// [`OnlineKnn::graph`].
    pub fn graph(&self) -> Arc<KnnGraph> {
        self.snapshot.get_or_build(|| {
            let neighbors = (0..self.num_users() as UserId)
                .map(|u| {
                    let slot = self.assign[u as usize];
                    self.shards[slot.shard as usize].heaps[slot.idx as usize].sorted_neighbors()
                })
                .collect();
            KnnGraph::from_neighbors(self.config.k, neighbors)
        })
    }

    /// Materializes the live dataset view as a frozen [`Dataset`]. Cached
    /// between mutations like [`ShardedOnlineKnn::graph`].
    pub fn dataset(&self) -> Arc<Dataset> {
        self.dataset.get_or_build(|| self.data.to_dataset())
    }

    /// Appends a user with an empty profile, returning its id.
    pub fn add_user(&mut self) -> UserId {
        let id = self.data.add_user();
        let s = self
            .shard_config
            .partitioner
            .shard_of(id, self.shards.len());
        let idx = self.shards[s].push_user(self.config.k, id);
        self.assign.push(Slot {
            shard: s as u32,
            idx,
        });
        self.snapshot.invalidate();
        self.dataset.invalidate();
        id
    }

    /// Applies one mutation. Prefer [`ShardedOnlineKnn::apply_batch`]:
    /// single updates rarely have enough repair work to amortise the
    /// cross-shard coordination.
    pub fn apply(&mut self, update: Update) -> UpdateStats {
        self.apply_batch(std::iter::once(update))
    }

    /// Applies a batch of mutations: serial dataset mutation, then
    /// parallel counter maintenance and repair across shards, with
    /// cross-shard work exchanged through message queues between rounds.
    pub fn apply_batch(&mut self, updates: impl IntoIterator<Item = Update>) -> UpdateStats {
        let _span = self.apply_ns.span();
        let mut stats = UpdateStats::default();
        // Lifetime cross-traffic totals before this batch: the per-batch
        // cross_messages figure is the counters' delta across the batch
        // (the counters, not a parallel field, are the source of truth).
        let cross_before: Vec<u64> = self.shards.iter().map(|s| s.cross_messages.get()).collect();
        let mut adjustments: Vec<Vec<CounterAdj>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();

        // Phase 1 (serial): mutate the dataset view, bucket every counter
        // adjustment by its owning shard while the point-in-time rater set
        // is in hand, and route each dirty user to its owning shard.
        for update in updates {
            stats.updates += 1;
            if let Some((user, targeted)) = self.mutate(update, &mut adjustments) {
                let shard = &mut self.shards[self.assign[user as usize].shard as usize];
                match shard.extras.entry(user) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        e.get_mut().extend(targeted);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(targeted.into_iter().collect());
                        shard.queue.push_back(user);
                    }
                }
            }
        }

        let threads = effective_threads(self.shard_config.threads).min(self.shards.len());

        {
            let max_propagation = self.config.max_propagation as u64;
            for shard in &mut self.shards {
                shard.budget = shard.queue.len() as u64 + max_propagation;
            }
        }

        // Phase 2 (parallel): every shard applies exactly its own
        // pre-bucketed counter adjustments.
        parallel_for_each_mut(threads, &mut self.shards, |my, shard| {
            shard.apply_counter_adjustments(&adjustments[my]);
        });

        // Phase 3 (parallel rounds): repair until quiescence. Each round
        // drains inboxes and queues shard-locally; produced messages are
        // routed between rounds, and requested migrations execute in the
        // same gap — the serial moment when shard state is unborrowed but
        // cross-shard messages may still be in flight.
        loop {
            let has_work = self.shards.iter().any(Shard::has_work);
            if !has_work && self.pending_migrations.is_empty() {
                break;
            }
            if has_work {
                let round_span = self.repair_round_ns.span();
                let view = self.data.view();
                let assign = &self.assign;
                let config = &self.config;
                parallel_for_each_mut(threads, &mut self.shards, |my, shard| {
                    shard.step(my as u32, view, assign, config);
                });
                round_span.finish();
                for s in 0..self.shards.len() {
                    for d in 0..self.shards.len() {
                        let msgs = std::mem::take(&mut self.shards[s].outbox[d]);
                        self.shards[d].inbox.extend(msgs);
                    }
                }
            }
            self.drain_pending_migrations(&mut stats);
        }

        // Phase 4 (serial): merge accounting, reset per-batch state,
        // rebalance if the batch skewed the shards, re-compact storage if
        // the overlay grew past the threshold.
        for (s, shard) in self.shards.iter_mut().enumerate() {
            // Publish the batch's accumulated telemetry in one add per
            // instrument — shards outlive snapshots, so flushing here
            // (the serial phase) keeps every exported counter exact
            // without a single shared-cell RMW inside the repair loop.
            shard.tele_repairs.add(shard.repaired);
            shard.tele_sims.add(shard.stats.sim_evals);
            if shard.pending_cross > 0 {
                shard
                    .cross_messages
                    .add(std::mem::take(&mut shard.pending_cross));
            }
            shard.scorer_ws.flush_telemetry();
            stats.merge(&std::mem::take(&mut shard.stats));
            stats.repaired_users += shard.repaired;
            stats.cross_messages += shard.cross_messages.get() - cross_before[s];
            shard.repaired = 0;
            shard.visited.clear();
        }
        stats.migrations += self.maybe_rebalance();
        let n = self.data.num_users().max(1);
        if (self.data.overlay_users() as f64) >= self.config.compaction_threshold * n as f64 {
            self.data.compact();
            stats.compacted = true;
        }
        if stats.edits.total() > 0 {
            self.snapshot.invalidate();
        }
        if stats.updates > 0 {
            self.dataset.invalidate();
        }
        self.lifetime.merge(&stats);
        stats
    }

    /// Applies one mutation to the dataset view, bucketing its counter
    /// adjustments by owning shard, and returns the dirty user with its
    /// targeted candidate chunk (uncapped: the owning shard caps against
    /// live counts after the counter phase). Mirrors [`OnlineKnn`]'s
    /// mutate step.
    fn mutate(
        &mut self,
        update: Update,
        adjustments: &mut [Vec<CounterAdj>],
    ) -> Option<(UserId, Option<Arc<Vec<UserId>>>)> {
        match update {
            Update::AddRating { user, item, rating } => {
                while (user as usize) >= self.data.num_users() {
                    self.add_user();
                }
                let mut raters = self.data.item_raters(item);
                raters.retain(|&v| v != user);
                let raters = Arc::new(raters);
                if self.data.add_rating(user, item, rating) {
                    Self::bucket_adjustments(&self.assign, adjustments, user, &raters, true);
                }
                Some((user, Some(raters)))
            }
            Update::AddUser => {
                self.add_user();
                None
            }
            Update::RemoveRating { user, item } => {
                if (user as usize) >= self.data.num_users() || !self.data.remove_rating(user, item)
                {
                    return None;
                }
                let mut raters = self.data.item_raters(item);
                raters.retain(|&v| v != user);
                let raters = Arc::new(raters);
                Self::bucket_adjustments(&self.assign, adjustments, user, &raters, false);
                Some((user, None))
            }
        }
    }

    /// Routes both directions of every `(user, rater)` counter adjustment
    /// to the shard owning each endpoint's counter: the user side as one
    /// `Arc`-shared bulk entry, the rater side as per-pair scatters. All
    /// entries land in event order (the caller is the serial mutate loop),
    /// preserving per-counter operation order across the batch.
    fn bucket_adjustments(
        assign: &[Slot],
        adjustments: &mut [Vec<CounterAdj>],
        user: UserId,
        raters: &Arc<Vec<UserId>>,
        added: bool,
    ) {
        let own = assign[user as usize];
        adjustments[own.shard as usize].push(CounterAdj::Bulk {
            slot: own.idx,
            raters: Arc::clone(raters),
            added,
        });
        for &v in raters.iter() {
            let vslot = assign[v as usize];
            adjustments[vslot.shard as usize].push(CounterAdj::Scatter {
                slot: vslot.idx,
                other: user,
                added,
            });
        }
    }

    /// Moves `user` to `target` immediately: detaches its counters, heap
    /// row and reverse edges into a portable `UserShardState`, replays
    /// them into the target shard, and re-routes any cross-shard messages
    /// still in flight for the user — from the reader's perspective the
    /// user's neighbourhood never changes, only its owner does. Returns
    /// whether a move happened (`false` when already on `target`).
    ///
    /// Safe at any quiescent point; during a batch the engine calls it
    /// between repair rounds (see
    /// [`ShardedOnlineKnn::request_migration`]). Pending repair work
    /// (queue membership, targeted candidates) transfers with the user.
    ///
    /// # Panics
    /// Panics when `target` is out of range or `user` does not exist.
    pub fn migrate_user(&mut self, user: UserId, target: usize) -> bool {
        assert!(target < self.shards.len(), "shard {target} out of range");
        assert!(
            (user as usize) < self.assign.len(),
            "user {user} does not exist"
        );
        let from = self.assign[user as usize].shard as usize;
        if from == target {
            return false;
        }
        let slot = self.assign[user as usize].idx as usize;
        let (state, displaced) = self.shards[from].detach_user(slot, user);
        if let Some(d) = displaced {
            self.assign[d as usize].idx = slot as u32;
        }
        // Patch the pending queues: every in-flight message for the user
        // — parked in the donor's inbox or still in some outbox bound for
        // the donor — follows it to the target's inbox, oldest first, so
        // it is applied by the new owner exactly once.
        fn extract(queue: &mut Vec<ShardMsg>, user: UserId, carried: &mut Vec<ShardMsg>) {
            queue.retain(|m| {
                if m.subject() == user {
                    carried.push(*m);
                    false
                } else {
                    true
                }
            });
        }
        let mut carried: Vec<ShardMsg> = Vec::new();
        extract(&mut self.shards[from].inbox, user, &mut carried);
        for s in 0..self.shards.len() {
            extract(&mut self.shards[s].outbox[from], user, &mut carried);
        }
        let idx = self.shards[target].attach_user(state);
        self.assign[user as usize] = Slot {
            shard: target as u32,
            idx,
        };
        self.shards[target].inbox.extend(carried);
        self.migrations_total += 1;
        self.tele_migrations.incr();
        true
    }

    /// Requests that `user` move to `target` at the next safe point: the
    /// engine applies pending migrations between the repair rounds of the
    /// next `apply_batch` (so migration composes with in-flight
    /// cross-shard messages), or immediately on
    /// [`ShardedOnlineKnn::flush_migrations`].
    pub fn request_migration(&mut self, user: UserId, target: usize) {
        assert!(target < self.shards.len(), "shard {target} out of range");
        assert!(
            (user as usize) < self.assign.len(),
            "user {user} does not exist"
        );
        self.pending_migrations.push((user, target as u32));
    }

    /// Applies requested migrations now (outside any batch), returning
    /// the number of users moved.
    pub fn flush_migrations(&mut self) -> u64 {
        let mut moved = 0;
        for (user, target) in std::mem::take(&mut self.pending_migrations) {
            if self.migrate_user(user, target as usize) {
                moved += 1;
            }
        }
        moved
    }

    /// Re-partitions the engine under a fresh policy — typically a
    /// [`CommunityPartitioner`] refreshed from the live graph — migrating
    /// every user whose current shard disagrees with it. Returns the
    /// number of users moved. `O(n + moved·k)`; a quiescent-period
    /// operation.
    pub fn repartition(&mut self, partitioner: Arc<dyn Partitioner>) -> u64 {
        self.shard_config.partitioner = partitioner;
        let mut moved = 0;
        for u in 0..self.assign.len() as UserId {
            let want = self.shard_config.partitioner.shard_of(u, self.shards.len());
            if want != self.assign[u as usize].shard as usize && self.migrate_user(u, want) {
                moved += 1;
            }
        }
        moved
    }

    /// One rebalance pass, when enabled and due: while the shard-size
    /// ratio exceeds the bound (and the move cap allows), migrate the
    /// user with the strongest affinity for the smallest shard out of the
    /// largest shard. Called at the end of `apply_batch`, after the
    /// queues have drained — the quiescent period.
    fn maybe_rebalance(&mut self) -> u64 {
        let Some(rb) = self.rebalancer.as_mut() else {
            return 0;
        };
        rb.batches += 1;
        if rb.batches % rb.config.check_every != 0 {
            return 0;
        }
        let config = rb.config.clone();
        let mut moved = 0u64;
        while moved < config.max_moves as u64 {
            let sizes = self.shard_sizes();
            // Donor: largest shard, ties broken toward the heavier
            // cross-traffic sender (worse co-location), then lower id.
            let donor = (0..sizes.len())
                .max_by_key(|&s| {
                    (
                        sizes[s],
                        self.shards[s].cross_messages.get(),
                        std::cmp::Reverse(s),
                    )
                })
                .expect(">0 shards");
            let recipient = (0..sizes.len())
                .min_by_key(|&s| (sizes[s], s))
                .expect(">0 shards");
            if sizes[donor] as f64 <= config.max_ratio * sizes[recipient].max(1) as f64 {
                break;
            }
            let Some(user) = self.best_migrant(donor, recipient) else {
                break;
            };
            self.migrate_user(user, recipient);
            moved += 1;
        }
        let rb = self.rebalancer.as_mut().expect("checked above");
        if moved > 0 {
            rb.stats.cycles += 1;
            rb.stats.migrations += moved;
        }
        moved
    }

    /// The donor user best suited to move to `recipient`: maximal
    /// neighbour affinity for the recipient net of ties to the donor
    /// (community-aware migration), ties to the smaller id. `O(size·k)`.
    fn best_migrant(&self, donor: usize, recipient: usize) -> Option<UserId> {
        let shard = &self.shards[donor];
        let mut best: Option<(i64, std::cmp::Reverse<UserId>, UserId)> = None;
        for (slot, &u) in shard.users.iter().enumerate() {
            let mut score = 0i64;
            for v in shard.heaps[slot]
                .ids()
                .into_iter()
                .chain(shard.incoming.in_neighbors(slot))
            {
                let s = self.assign[v as usize].shard as usize;
                if s == recipient {
                    score += 1;
                } else if s == donor {
                    score -= 1;
                }
            }
            let key = (score, std::cmp::Reverse(u), u);
            if best.is_none_or(|b| key > b) {
                best = Some(key);
            }
        }
        best.map(|(_, _, u)| u)
    }

    /// Applies any pending migration requests mid-batch (between repair
    /// rounds), folding the moves into the batch statistics.
    fn drain_pending_migrations(&mut self, stats: &mut UpdateStats) {
        if self.pending_migrations.is_empty() {
            return;
        }
        for (user, target) in std::mem::take(&mut self.pending_migrations) {
            if self.migrate_user(user, target as usize) {
                stats.migrations += 1;
            }
        }
    }

    /// Exhaustively checks the cross-shard invariants (`O(n·k)`; tests
    /// and tools only): every user's cached slot maps back to it, every
    /// heap edge `u → v` is mirrored in the in-neighbour set held by
    /// `v`'s shard, and every recorded in-neighbour points back. (The
    /// partitioner is *not* re-consulted: migrations legitimately move
    /// users away from their admission shard.)
    ///
    /// # Panics
    /// Panics on the first violated invariant.
    pub fn validate_invariants(&self) {
        assert_eq!(
            self.shard_sizes().iter().sum::<usize>(),
            self.num_users(),
            "shards and dataset disagree on the user count"
        );
        for u in 0..self.num_users() as UserId {
            let slot = self.assign[u as usize];
            let shard = &self.shards[slot.shard as usize];
            assert_eq!(shard.users[slot.idx as usize], u, "slot map corrupt at {u}");
            for id in shard.heaps[slot.idx as usize].ids() {
                let t = self.assign[id as usize];
                assert!(
                    self.shards[t.shard as usize]
                        .incoming
                        .contains(t.idx as usize, u),
                    "edge {u} -> {id} missing from shard {} incoming",
                    t.shard
                );
            }
            for w in shard.incoming.in_neighbors(slot.idx as usize) {
                let ws = self.assign[w as usize];
                assert!(
                    self.shards[ws.shard as usize].heaps[ws.idx as usize].contains(u),
                    "reverse ghost {w} -> {u}"
                );
            }
        }
    }
}

/// Conversion that preserves the live graph: wraps a single engine's
/// state into shards (used by the builder facade's `into_sharded`).
impl ShardedOnlineKnn {
    /// Shards the state of a single-threaded engine. The dataset view is
    /// re-based on the engine's current state; the graph transfers
    /// edge-for-edge.
    pub fn from_online(engine: &OnlineKnn, shard_config: ShardConfig) -> Self {
        let dataset = engine.data().to_dataset();
        let graph = engine.graph();
        Self::from_graph(&dataset, &graph, engine.config().clone(), shard_config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::dataset::figure2_toy;
    use kiff_similarity::intersect_count;

    fn toy(shards: usize) -> ShardedOnlineKnn {
        ShardedOnlineKnn::new(
            &figure2_toy(),
            OnlineConfig::new(2),
            ShardConfig::new(shards).with_threads(2),
        )
    }

    /// Counter + stored-similarity audit against brute force, plus the
    /// cross-shard invariants.
    fn audit(engine: &ShardedOnlineKnn) {
        engine.validate_invariants();
        let n = engine.num_users() as UserId;
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let shared = intersect_count(
                    engine.data().profile(u).items,
                    engine.data().profile(v).items,
                );
                assert_eq!(
                    engine.shared_count(u, v) as usize,
                    shared,
                    "counter ({u}, {v})"
                );
            }
            for nb in engine.neighbors(u) {
                let fresh = engine
                    .config()
                    .metric
                    .eval(engine.data().profile(u), engine.data().profile(nb.id));
                assert!(
                    (nb.sim - fresh).abs() < 1e-12,
                    "stale sim on edge {u} -> {}: stored {} fresh {fresh}",
                    nb.id,
                    nb.sim
                );
            }
        }
    }

    #[test]
    fn seeded_state_matches_batch_for_any_shard_count() {
        for shards in [1, 2, 3, 8] {
            let engine = toy(shards);
            assert_eq!(engine.num_shards(), shards);
            assert_eq!(engine.shard_sizes().iter().sum::<usize>(), 4);
            audit(&engine);
            assert_eq!(engine.neighbors(0)[0].id, 1, "{shards} shards");
            assert_eq!(engine.neighbors(2)[0].id, 3, "{shards} shards");
        }
    }

    #[test]
    fn add_rating_connects_cross_shard_pairs() {
        // Modulo partitioning on the toy puts Carl(2) and Alice(0)/Bob(1)
        // on different shards, so the new edges must flow through the
        // message queue.
        let mut engine = ShardedOnlineKnn::new(
            &figure2_toy(),
            OnlineConfig::new(2),
            ShardConfig::new(2)
                .with_threads(2)
                .with_partitioner(Arc::new(ModuloPartitioner)),
        );
        assert_ne!(engine.shard_of(2), engine.shard_of(1));
        let stats = engine.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        assert_eq!(stats.updates, 1);
        assert!(stats.sim_evals > 0);
        assert!(stats.counter_adjustments >= 4, "two new sharing pairs");
        audit(&engine);
        let ids: Vec<UserId> = engine.neighbors(2).iter().map(|nb| nb.id).collect();
        assert!(
            ids.contains(&0) || ids.contains(&1),
            "coffee drinkers found"
        );
    }

    #[test]
    fn remove_rating_severs_cross_shard_pairs() {
        let mut engine = toy(3);
        let stats = engine.apply(Update::RemoveRating { user: 1, item: 1 });
        assert!(stats.edits.removals > 0);
        audit(&engine);
        assert!(!engine.neighbors(0).iter().any(|nb| nb.id == 1));
        assert!(!engine.neighbors(1).iter().any(|nb| nb.id == 0));
        // Removing it again is a no-op.
        let stats = engine.apply(Update::RemoveRating { user: 1, item: 1 });
        assert_eq!(stats.sim_evals, 0);
        assert_eq!(stats.counter_adjustments, 0);
    }

    #[test]
    fn new_users_land_on_their_shard() {
        let mut engine = toy(2);
        let u = engine.add_user();
        assert_eq!(u, 4);
        assert_eq!(
            engine.shard_of(u),
            HashPartitioner.shard_of(u, 2),
            "partitioner decides placement"
        );
        engine.apply(Update::AddRating {
            user: u,
            item: 3,
            rating: 1.0,
        });
        audit(&engine);
        let ids: Vec<UserId> = engine.neighbors(u).iter().map(|nb| nb.id).collect();
        assert_eq!(ids, vec![2, 3]);
        assert!(engine.neighbors(2).iter().any(|nb| nb.id == u));
    }

    #[test]
    fn implicit_user_growth_on_add_rating() {
        let mut engine = toy(2);
        engine.apply(Update::AddRating {
            user: 6,
            item: 0,
            rating: 1.0,
        });
        assert_eq!(engine.num_users(), 7, "users 4..=6 created");
        audit(&engine);
        assert!(
            engine.neighbors(6).iter().any(|nb| nb.id == 0),
            "shares book"
        );
    }

    #[test]
    fn one_shard_matches_single_engine_exactly() {
        let updates = vec![
            Update::AddRating {
                user: 2,
                item: 1,
                rating: 1.0,
            },
            Update::AddRating {
                user: 0,
                item: 2,
                rating: 2.0,
            },
            Update::RemoveRating { user: 3, item: 3 },
        ];
        let mut single = OnlineKnn::new(&figure2_toy(), OnlineConfig::new(2));
        let mut sharded = toy(1);
        let single_stats = single.apply_batch(updates.clone());
        let sharded_stats = sharded.apply_batch(updates);
        for u in 0..single.num_users() as UserId {
            assert_eq!(
                single.neighbors(u),
                sharded.neighbors(u),
                "user {u} diverged"
            );
        }
        assert_eq!(single_stats.sim_evals, sharded_stats.sim_evals);
        assert_eq!(
            single_stats.counter_adjustments,
            sharded_stats.counter_adjustments
        );
        audit(&sharded);
    }

    #[test]
    fn batched_add_then_remove_interleaves_counter_ops_safely() {
        // Regression: Alice(0) and Carl(2) share nothing initially. In one
        // batch Alice picks up shopping(3) (scattered add on Carl's
        // counter) and Carl then drops shopping (bulk sub on Carl's
        // counter, whose rater snapshot now includes Alice). Applying all
        // bulks before all scatters would sub Carl->Alice at count 0 and
        // panic; event-ordered application must handle it.
        for shards in [1, 2, 4] {
            let mut engine = toy(shards);
            let stats = engine.apply_batch(vec![
                Update::AddRating {
                    user: 0,
                    item: 3,
                    rating: 1.0,
                },
                Update::RemoveRating { user: 2, item: 3 },
            ]);
            assert_eq!(stats.updates, 2, "{shards} shards");
            audit(&engine);
            assert_eq!(engine.shared_count(2, 0), 0, "{shards} shards");
        }
    }

    #[test]
    fn batch_equals_sequential_on_final_neighborhoods() {
        let updates = vec![
            Update::AddRating {
                user: 2,
                item: 1,
                rating: 1.0,
            },
            Update::AddRating {
                user: 0,
                item: 2,
                rating: 2.0,
            },
            Update::RemoveRating { user: 3, item: 3 },
        ];
        let mut sequential = toy(2);
        for u in updates.clone() {
            sequential.apply(u);
        }
        let mut batched = toy(2);
        let stats = batched.apply_batch(updates);
        assert_eq!(stats.updates, 3);
        audit(&sequential);
        audit(&batched);
        for u in 0..sequential.num_users() as UserId {
            assert_eq!(
                sequential.neighbors(u),
                batched.neighbors(u),
                "user {u} diverged"
            );
        }
    }

    #[test]
    fn graph_snapshot_cached_and_invalidated() {
        let mut engine = toy(2);
        let first = engine.graph();
        assert!(Arc::ptr_eq(&first, &engine.graph()));
        engine.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        let second = engine.graph();
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(second.num_users(), 4);
    }

    #[test]
    fn concurrent_readers_share_one_snapshot_without_tearing() {
        // Regression for the lock-then-replace cache: once readers run
        // concurrently with each other (shared `&engine` between writer
        // batches), a cold-cache stampede must neither block readers
        // behind one O(E) build nor publish divergent snapshots. Every
        // thread must read a complete graph, and the cache must converge
        // to one pointer-stable Arc.
        let mut engine = toy(4);
        engine.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        let expected = engine.graph();
        // Re-invalidate so threads race the cold fill (same content).
        engine.snapshot.invalidate();
        let engine = Arc::new(engine);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    let mut graphs = Vec::new();
                    for _ in 0..50 {
                        graphs.push(engine.graph());
                    }
                    graphs
                })
            })
            .collect();
        for h in handles {
            for g in h.join().unwrap() {
                assert_eq!(g.num_users(), expected.num_users());
                for u in 0..expected.num_users() as UserId {
                    assert_eq!(g.neighbors(u), expected.neighbors(u), "torn snapshot");
                }
            }
        }
        let warm_a = engine.graph();
        let warm_b = engine.graph();
        assert!(Arc::ptr_eq(&warm_a, &warm_b), "cache must converge");
        // The dataset materialization cache obeys the same discipline.
        let ds_a = engine.dataset();
        let ds_b = engine.dataset();
        assert!(Arc::ptr_eq(&ds_a, &ds_b));
        assert_eq!(ds_a.num_users(), expected.num_users());
    }

    #[test]
    fn from_online_preserves_the_live_graph() {
        let mut single = OnlineKnn::new(&figure2_toy(), OnlineConfig::new(2));
        single.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        let sharded = ShardedOnlineKnn::from_online(&single, ShardConfig::new(2));
        for u in 0..single.num_users() as UserId {
            assert_eq!(single.neighbors(u), sharded.neighbors(u), "user {u}");
        }
        audit(&sharded);
    }

    #[test]
    fn compaction_triggers_and_preserves_state() {
        let mut engine = ShardedOnlineKnn::new(
            &figure2_toy(),
            OnlineConfig::new(2).with_compaction_threshold(0.2),
            ShardConfig::new(2),
        );
        let stats = engine.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        assert!(stats.compacted, "20% threshold trips on the first overlay");
        assert_eq!(engine.data().overlay_users(), 0);
        audit(&engine);
    }

    #[test]
    #[should_panic(expected = "num_shards must be positive")]
    fn zero_shards_rejected() {
        let _ = ShardConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "max_ratio must exceed 1.0")]
    fn degenerate_rebalance_ratio_rejected() {
        let _ = RebalanceConfig::new(1.0);
    }

    #[test]
    fn migration_preserves_graph_and_invariants() {
        let mut engine = toy(3);
        let before: Vec<Vec<Neighbor>> = (0..4).map(|u| engine.neighbors(u)).collect();
        let snapshot = engine.graph();
        let mut moved = 0u64;
        for u in 0..4 {
            // Everyone moves to shard 0, wherever they started.
            moved += u64::from(engine.migrate_user(u, 0));
            assert_eq!(engine.shard_of(u), 0);
        }
        assert_eq!(engine.shard_sizes(), vec![4, 0, 0]);
        assert_eq!(engine.migrations_total(), moved);
        assert!(moved > 0, "toy spreads users over at least two shards");
        audit(&engine);
        for u in 0..4u32 {
            assert_eq!(engine.neighbors(u), before[u as usize], "user {u}");
        }
        // Migration moves ownership, not edges: the snapshot stays valid.
        assert!(Arc::ptr_eq(&snapshot, &engine.graph()));
        // Moving to the current shard is a no-op.
        assert!(!engine.migrate_user(0, 0));
        // Updates keep working after the moves.
        engine.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        audit(&engine);
    }

    #[test]
    fn migration_transfers_pending_work_mid_batch() {
        // Request a migration, then apply a batch that dirties the moving
        // user: the migration executes between repair rounds and the
        // user's queued repair must neither be lost nor duplicated.
        let mut engine = ShardedOnlineKnn::new(
            &figure2_toy(),
            OnlineConfig::new(2),
            ShardConfig::new(2)
                .with_threads(2)
                .with_partitioner(Arc::new(ModuloPartitioner)),
        );
        let from = engine.shard_of(2);
        let target = 1 - from;
        engine.request_migration(2, target);
        let stats = engine.apply_batch(vec![Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        }]);
        assert_eq!(stats.migrations, 1);
        assert_eq!(engine.shard_of(2), target);
        audit(&engine);
        let ids: Vec<UserId> = engine.neighbors(2).iter().map(|nb| nb.id).collect();
        assert!(ids.contains(&0) || ids.contains(&1), "repair still ran");
    }

    #[test]
    fn rebalancer_restores_balance_on_skewed_admissions() {
        // All-to-shard-0 partitioner: every new user floods shard 0; the
        // rebalancer must keep the ratio in bound anyway.
        #[derive(Debug)]
        struct Hot;
        impl Partitioner for Hot {
            fn shard_of(&self, _user: UserId, _num_shards: usize) -> usize {
                0
            }
        }
        let mut engine = ShardedOnlineKnn::new(
            &figure2_toy(),
            OnlineConfig::new(2),
            ShardConfig::new(2)
                .with_threads(2)
                .with_partitioner(Arc::new(Hot))
                .with_rebalance(RebalanceConfig::new(1.5)),
        );
        for i in 0..12u32 {
            engine.apply_batch(vec![Update::AddRating {
                user: 4 + i,
                item: i % 4,
                rating: 1.0,
            }]);
        }
        let sizes = engine.shard_sizes();
        let (max, min) = (
            *sizes.iter().max().unwrap(),
            *sizes.iter().min().unwrap().max(&1),
        );
        assert!(
            (max as f64) <= 1.5 * (min as f64),
            "unbalanced after rebalancing: {sizes:?}"
        );
        let rb = engine.rebalance_stats();
        assert!(rb.cycles > 0 && rb.migrations > 0, "{rb:?}");
        assert!(engine.lifetime_stats().migrations >= rb.migrations);
        audit(&engine);
    }

    #[test]
    fn community_partitioner_co_locates_co_raters() {
        // The toy has two disjoint communities: {Alice, Bob} share coffee
        // and {Carl, Dave} share shopping. Two shards must split exactly
        // along that boundary.
        let ds = figure2_toy();
        let p = CommunityPartitioner::from_dataset(&ds, 2);
        assert_eq!(p.mapped_users(), 4);
        assert_eq!(p.shard_of(0, 2), p.shard_of(1, 2), "coffee drinkers");
        assert_eq!(p.shard_of(2, 2), p.shard_of(3, 2), "shoppers");
        assert_ne!(p.shard_of(0, 2), p.shard_of(2, 2), "communities split");
        // Unknown users fall back to hashing, inside range.
        assert!(p.shard_of(1000, 2) < 2);
        // Refreshing from the equivalent live graph agrees.
        let engine = ShardedOnlineKnn::new(
            &ds,
            OnlineConfig::new(2),
            ShardConfig::new(2).with_partitioner(Arc::new(p)),
        );
        let g = CommunityPartitioner::from_graph(&engine.graph(), 2);
        assert_eq!(g.shard_of(0, 2), g.shard_of(1, 2));
        assert_ne!(g.shard_of(0, 2), g.shard_of(2, 2));
        audit(&engine);
    }

    #[test]
    fn repartition_moves_users_to_their_community_shard() {
        let ds = figure2_toy();
        let mut engine = ShardedOnlineKnn::new(
            &ds,
            OnlineConfig::new(2),
            ShardConfig::new(2)
                .with_threads(2)
                .with_partitioner(Arc::new(ModuloPartitioner)),
        );
        let community = Arc::new(CommunityPartitioner::from_dataset(&ds, 2));
        let moved = engine.repartition(Arc::clone(&community) as Arc<dyn Partitioner>);
        assert!(moved > 0, "modulo split both communities");
        for u in 0..4 {
            assert_eq!(engine.shard_of(u), community.shard_of(u, 2), "user {u}");
        }
        audit(&engine);
        // Co-located communities exchange no messages on an intra-community
        // update.
        let stats = engine.apply(Update::AddRating {
            user: 0,
            item: 1,
            rating: 2.0,
        });
        assert_eq!(stats.cross_messages, 0, "coffee update stayed local");
    }

    #[test]
    fn telemetry_counters_are_the_cross_traffic_source_of_truth() {
        let registry = Registry::new();
        let mut engine = ShardedOnlineKnn::new(
            &figure2_toy(),
            OnlineConfig::new(2).with_telemetry(registry.clone()),
            ShardConfig::new(2)
                .with_threads(2)
                .with_partitioner(Arc::new(ModuloPartitioner)),
        );
        let stats = engine.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        assert!(stats.cross_messages > 0, "endpoints straddle shards");
        let snap = registry.snapshot();
        // The legacy accessors re-derive from the per-shard counters.
        assert_eq!(
            snap.counter_sum_matching("shard.", ".cross_messages"),
            stats.cross_messages
        );
        assert_eq!(engine.cross_shard_messages(), stats.cross_messages);
        assert_eq!(
            engine.shard_cross_traffic().iter().sum::<u64>(),
            stats.cross_messages
        );
        assert_eq!(
            snap.counter_sum_matching("shard.", ".repairs"),
            stats.repaired_users
        );
        assert_eq!(snap.counter("online.sims"), Some(stats.sim_evals));
        assert!(snap.histogram("online.repair_round_ns").unwrap().count > 0);
        assert_eq!(snap.histogram("online.apply_ns").unwrap().count, 1);
        assert_eq!(snap.counter("online.migrations"), Some(0));
        let target = 1 - engine.shard_of(0);
        assert!(engine.migrate_user(0, target));
        assert_eq!(registry.snapshot().counter("online.migrations"), Some(1));
        assert_eq!(engine.migrations_total(), 1);
    }

    #[test]
    fn disabled_registry_zeroes_derived_traffic_but_preserves_the_graph() {
        let update = Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        };
        let shards = || {
            ShardConfig::new(2)
                .with_threads(2)
                .with_partitioner(Arc::new(ModuloPartitioner))
        };
        let mut on = ShardedOnlineKnn::new(&figure2_toy(), OnlineConfig::new(2), shards());
        let mut off = ShardedOnlineKnn::new(
            &figure2_toy(),
            OnlineConfig::new(2).with_telemetry(Registry::disabled()),
            shards(),
        );
        let on_stats = on.apply(update);
        let off_stats = off.apply(update);
        // The graphs agree edge-for-edge; only the derived traffic
        // accounting goes dark under the disabled fast path.
        for u in 0..on.num_users() as UserId {
            assert_eq!(on.neighbors(u), off.neighbors(u), "user {u} diverged");
        }
        assert_eq!(on_stats.sim_evals, off_stats.sim_evals);
        assert!(on_stats.cross_messages > 0);
        assert_eq!(off_stats.cross_messages, 0);
        assert_eq!(off.cross_shard_messages(), 0);
        audit(&off);
    }

    #[test]
    fn cross_traffic_is_counted() {
        let mut engine = ShardedOnlineKnn::new(
            &figure2_toy(),
            OnlineConfig::new(2),
            ShardConfig::new(2)
                .with_threads(2)
                .with_partitioner(Arc::new(ModuloPartitioner)),
        );
        // Carl joins the coffee drinkers: endpoints straddle shards.
        let stats = engine.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        assert!(stats.cross_messages > 0, "cross-shard edges must message");
        assert_eq!(engine.cross_shard_messages(), stats.cross_messages);
        assert_eq!(
            engine.shard_cross_traffic().iter().sum::<u64>(),
            stats.cross_messages
        );
    }
}
