//! Crash-recovery and wire-parity guarantees of the serving layer.
//!
//! The durability contract under test: for *any* update stream, cutting
//! the daemon at any point — with a snapshot taken at any earlier point,
//! or never — and recovering from the newest snapshot plus the WAL tail
//! yields exactly the engine an uninterrupted run would have produced.
//! This holds because the online engine's repair is deterministic under
//! replay; these tests pin that end to end, including over TCP.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use kiff::prelude::*;
use kiff::serve::{recover, StoreConfig};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory per call (proptest cases must not share).
fn scratch(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "kiff-serve-recovery-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// A small but non-trivial seed: 8 users over 10 items with overlap.
fn seed_dataset() -> Dataset {
    let mut b = DatasetBuilder::new("serve-seed", 8, 10);
    for u in 0..8u32 {
        for j in 0..4u32 {
            b.add_rating(u, (u * 3 + j * 2) % 10, 1.0 + (u + j) as f32 % 3.0);
        }
    }
    b.build()
}

/// Arbitrary update streams over the seed's id space. `AddUser` grows
/// the population but ratings stay within the seed's 8 users, so every
/// stream is valid regardless of interleaving.
fn arb_stream() -> impl Strategy<Value = Vec<Update>> {
    proptest::collection::vec((0u8..8, 0u32..8, 0u32..10, 1u32..6), 1..60).prop_map(|ops| {
        ops.into_iter()
            .map(|(kind, user, item, rating)| match kind {
                0 => Update::AddUser,
                1 => Update::RemoveRating { user, item },
                _ => Update::AddRating {
                    user,
                    item,
                    rating: rating as f32,
                },
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any stream, any batch size, a snapshot at any batch boundary (or
    /// never, when `cut` exceeds the stream), then an unclean stop: the
    /// recovered graph is *identical* to an uninterrupted run's.
    #[test]
    fn snapshot_at_any_point_recovers_exactly(
        stream in arb_stream(),
        cut in 0usize..80,
        batch in 1usize..7,
    ) {
        let seed = seed_dataset();

        // Uninterrupted reference run. Same batch boundaries as the
        // persisted run below: repair is amortised per batch, so the
        // boundaries are part of the state — the WAL records them and
        // recovery replays with them.
        let mut reference = OnlineKnn::new(&seed, OnlineConfig::new(3));
        for chunk in stream.chunks(batch) {
            reference.apply_batch(chunk.to_vec());
        }

        // Persisted run: log + apply in batches, snapshot once when the
        // applied count first reaches `cut`, then stop without any
        // shutdown handshake — the moral equivalent of `kill -9`.
        let dir = scratch("prop");
        let cfg = StoreConfig::new(&dir).with_snapshot_every(0);
        let rec = recover(&cfg, &seed, None, OnlineConfig::new(3), None).unwrap();
        let (mut engine, mut store) = (rec.engine, rec.store);
        let mut applied = 0usize;
        let mut snapped = false;
        for chunk in stream.chunks(batch) {
            store.append(chunk, 0).unwrap();
            engine.apply_batch(chunk.to_vec());
            applied += chunk.len();
            if !snapped && applied >= cut {
                store.snapshot(engine.as_ref()).unwrap();
                snapped = true;
            }
        }
        drop((engine, store));

        let rec = recover(&cfg, &seed, None, OnlineConfig::new(3), None).unwrap();
        prop_assert!(!rec.truncated, "no corruption was injected");
        let (recovered, expected) = (rec.engine.graph(), reference.graph());
        prop_assert_eq!(
            recovered.as_ref(),
            expected.as_ref(),
            "recovered graph diverged from the uninterrupted run"
        );
        prop_assert_eq!(rec.engine.len(), reference.num_users());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// An unclean stop with *no* snapshot ever taken: the whole WAL replays
/// over the seed and nothing is lost.
#[test]
fn kill_without_snapshot_loses_nothing() {
    let seed = seed_dataset();
    let stream: Vec<Update> = (0..25u32)
        .map(|i| Update::AddRating {
            user: i % 8,
            item: (i * 7) % 10,
            rating: 1.0 + (i % 5) as f32,
        })
        .collect();

    let mut reference = OnlineKnn::new(&seed, OnlineConfig::new(3));
    for chunk in stream.chunks(4) {
        reference.apply_batch(chunk.to_vec());
    }

    let dir = scratch("kill9");
    let cfg = StoreConfig::new(&dir).with_snapshot_every(0);
    let rec = recover(&cfg, &seed, None, OnlineConfig::new(3), None).unwrap();
    let (mut engine, mut store) = (rec.engine, rec.store);
    for chunk in stream.chunks(4) {
        store.append(chunk, 0).unwrap();
        engine.apply_batch(chunk.to_vec());
    }
    drop((engine, store)); // no snapshot, no goodbye

    let rec = recover(&cfg, &seed, None, OnlineConfig::new(3), None).unwrap();
    assert_eq!(rec.snapshot_seq, None, "nothing was ever snapshotted");
    assert_eq!(rec.replayed, stream.len() as u64);
    assert_eq!(rec.engine.graph().as_ref(), reference.graph().as_ref());
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance path end to end: a daemon recovered from snapshot +
/// WAL answers `neighbors` over TCP identically to an in-process engine
/// fed the same stream — ids *and* similarities, which survive the JSON
/// wire format because floats print in shortest round-trip form.
#[test]
fn recovered_daemon_matches_in_process_over_tcp() {
    let seed = seed_dataset();
    let graph = KnnGraphBuilder::new(3).threads(1).build(&seed);
    let stream: Vec<Update> = (0..30u32)
        .map(|i| Update::AddRating {
            user: (i * 5) % 8,
            item: (i * 3) % 10,
            rating: 1.0 + (i % 4) as f32,
        })
        .collect();

    // In-process engine over the same prebuilt graph and stream,
    // applied with the same batch boundaries as the daemon's WAL.
    let config = || OnlineConfig::new(3);
    let mut in_process = OnlineKnn::from_graph(&seed, &graph, config());
    for chunk in stream.chunks(6) {
        in_process.apply_batch(chunk.to_vec());
    }

    // Persisted run: snapshot midway, crash, recover into a daemon.
    let dir = scratch("tcp");
    let cfg = StoreConfig::new(&dir).with_snapshot_every(0);
    let rec = recover(&cfg, &seed, Some(&graph), config(), None).unwrap();
    let (mut engine, mut store) = (rec.engine, rec.store);
    for (i, chunk) in stream.chunks(6).enumerate() {
        store.append(chunk, 0).unwrap();
        engine.apply_batch(chunk.to_vec());
        if i == 1 {
            store.snapshot(engine.as_ref()).unwrap();
        }
    }
    drop((engine, store));

    let rec = recover(&cfg, &seed, Some(&graph), config(), None).unwrap();
    assert_eq!(rec.snapshot_seq, Some(12));
    assert_eq!(rec.replayed, 18);
    let host = EngineHost::new(rec.engine, Some(rec.store), Registry::new());
    let server = Server::bind("127.0.0.1:0", host).unwrap();
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());

    let mut client = kiff::serve::Client::connect(&addr).unwrap();
    for u in 0..8u32 {
        let over_wire = client.neighbors(u).unwrap();
        let local = in_process.neighbors(u);
        assert_eq!(over_wire, local, "user {u} diverged over the wire");
    }
    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
