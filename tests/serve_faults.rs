//! Chaos harness: proptest fault schedules driven through a *live*
//! daemon over TCP.
//!
//! Each case arms a schedule of one-shot failpoints (WAL append/fsync
//! failures, connections torn by the server mid-read or mid-write),
//! pushes an arbitrary update stream through a [`SelfHealingClient`],
//! and then proves the two contracts the fault layer exists for:
//!
//! 1. **Bit-exact recovery** — the state recovered from disk equals a
//!    fault-free in-process run applying the same batches, exactly.
//! 2. **Exactly-once writes** — every batch applies once no matter how
//!    many times the client had to retry it; the applied high-water
//!    mark ends at the last batch id, never beyond.
//!
//! Failpoints are process-global, so every arm here is *scoped*: WAL
//! faults to this case's scratch directory, network faults to this
//! case's listener address. Triggers are one-shot (`Nth`), so entries
//! exhaust themselves and stale scopes can never match a later case.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use proptest::prelude::*;

use kiff::prelude::*;
use kiff::serve::{recover, RetryPolicy, SelfHealingClient, ServerConfig, StoreConfig};
use kiff_core::fault::{self, points, Trigger};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory per call — the directory path doubles as
/// the failpoint scope, so it must be unique per case.
fn scratch(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "kiff-serve-faults-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Arms any ambient `KIFF_FAILPOINTS` spec exactly once per test
/// binary. The CI chaos job sets one (probabilistic triggers with
/// fixed seeds) so the suite runs under background fault pressure;
/// unset, this is a no-op and the only faults are the scoped per-case
/// arms below.
fn ambient_failpoints() {
    static ARM: std::sync::Once = std::sync::Once::new();
    ARM.call_once(|| {
        let armed = fault::arm_from_env().expect("invalid KIFF_FAILPOINTS spec");
        if armed > 0 {
            eprintln!("chaos: {armed} ambient failpoint(s) armed from KIFF_FAILPOINTS");
        }
    });
}

/// Same seed shape as `serve_recovery`: 8 users over 10 items.
fn seed_dataset() -> Dataset {
    let mut b = DatasetBuilder::new("fault-seed", 8, 10);
    for u in 0..8u32 {
        for j in 0..4u32 {
            b.add_rating(u, (u * 3 + j * 2) % 10, 1.0 + (u + j) as f32 % 3.0);
        }
    }
    b.build()
}

/// Arbitrary update streams over the seed's id space.
fn arb_stream() -> impl Strategy<Value = Vec<Update>> {
    proptest::collection::vec((0u8..8, 0u32..8, 0u32..10, 1u32..6), 1..40).prop_map(|ops| {
        ops.into_iter()
            .map(|(kind, user, item, rating)| match kind {
                0 => Update::AddUser,
                1 => Update::RemoveRating { user, item },
                _ => Update::AddRating {
                    user,
                    item,
                    rating: rating as f32,
                },
            })
            .collect()
    })
}

/// A fault schedule: up to three one-shot failpoints, each firing on
/// its n-th check. Index picks the point; WAL faults scope to the
/// store directory, network faults to the listener address.
fn arb_faults() -> impl Strategy<Value = Vec<(u8, u64)>> {
    proptest::collection::vec((0u8..4, 1u64..5), 0..3)
}

/// Retries `shutdown` against a daemon whose connections a leftover
/// net fault might still tear. A refused connection means the daemon
/// already stopped (a torn shutdown ack still shuts down).
fn shutdown_daemon(addr: &str) {
    for _ in 0..20 {
        match kiff::serve::Client::connect(addr) {
            Ok(mut c) => {
                if c.shutdown().is_ok() {
                    return;
                }
            }
            Err(_) => return,
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("daemon at {addr} refused shutdown");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any stream, any batch size, any schedule of injected WAL and
    /// network faults: the self-healing client lands every batch
    /// exactly once, and recovery from disk is bit-exact against a
    /// fault-free reference run.
    #[test]
    fn fault_schedule_preserves_exactly_once_and_bit_exact_recovery(
        stream in arb_stream(),
        batch in 1usize..6,
        faults in arb_faults(),
    ) {
        ambient_failpoints();
        let seed = seed_dataset();
        let config = || OnlineConfig::new(3);

        // Fault-free reference: one apply_batch per client update call,
        // same boundaries — exactly-once means the daemon's effective
        // apply sequence must equal this.
        let mut reference = OnlineKnn::new(&seed, config());
        for chunk in stream.chunks(batch) {
            reference.apply_batch(chunk.to_vec());
        }

        let dir = scratch("chaos");
        let dir_scope = dir.to_string_lossy().into_owned();
        let cfg = StoreConfig::new(&dir).with_snapshot_every(0);
        let rec = recover(&cfg, &seed, None, config(), None).unwrap();
        let host = EngineHost::new(rec.engine, Some(rec.store), Registry::new());
        let server_config = ServerConfig {
            recovery_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        };
        let server = kiff::serve::Server::bind_with("127.0.0.1:0", host, server_config).unwrap();
        let addr = server.local_addr().to_string();
        let daemon = std::thread::spawn(move || server.run());

        // Connect *before* arming network faults so the handshake
        // (which seeds the batch-id counter from the server's hwm)
        // can't be torn; every later request is fair game.
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(3),
            max_delay: Duration::from_millis(30),
            seed: 7,
        };
        let mut client = SelfHealingClient::connect(&addr, policy).unwrap();
        prop_assert_eq!(client.next_batch(), 1, "fresh store starts below batch 1");

        for (point, nth) in &faults {
            match point {
                0 => fault::arm_scoped(points::WAL_APPEND, Trigger::Nth(*nth), &dir_scope),
                1 => fault::arm_scoped(points::WAL_FSYNC, Trigger::Nth(*nth), &dir_scope),
                2 => fault::arm_scoped(points::NET_READ, Trigger::Nth(*nth), &addr),
                _ => fault::arm_scoped(points::NET_WRITE, Trigger::Nth(*nth), &addr),
            }
        }

        let mut batches = 0u64;
        for chunk in stream.chunks(batch) {
            let ack = client.update(chunk);
            prop_assert!(
                ack.is_ok(),
                "batch must land within the retry budget: {:?}",
                ack.err()
            );
            batches += 1;
        }
        prop_assert_eq!(client.next_batch(), batches + 1);

        // The daemon must heal before the (bounded) patience runs out.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let health = client.health().unwrap();
            if health.status == "healthy" {
                prop_assert_eq!(health.batch_hwm, batches);
                break;
            }
            prop_assert!(Instant::now() < deadline, "stuck {}", health.status);
            std::thread::sleep(Duration::from_millis(5));
        }

        shutdown_daemon(&addr);
        daemon.join().unwrap().unwrap();

        // Recover from disk and compare bit-exactly. A batch that was
        // retried after a torn ack must appear exactly once.
        let rec = recover(&cfg, &seed, None, config(), None).unwrap();
        prop_assert_eq!(rec.store.batch_hwm(), batches, "hwm is the last batch id");
        let (recovered, expected) = (rec.engine.graph(), reference.graph());
        prop_assert_eq!(
            recovered.as_ref(),
            expected.as_ref(),
            "recovered graph diverged from the fault-free run"
        );
        prop_assert_eq!(rec.engine.len(), reference.num_users());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A failed snapshot write must leave recovery entirely WAL-driven: no
/// partial snapshot, no `.tmp` litter, no lost updates.
#[test]
fn failed_snapshot_write_falls_back_to_wal_replay() {
    ambient_failpoints();
    let seed = seed_dataset();
    let config = || OnlineConfig::new(3);
    let stream: Vec<Update> = (0..20u32)
        .map(|i| Update::AddRating {
            user: i % 8,
            item: (i * 7) % 10,
            rating: 1.0 + (i % 5) as f32,
        })
        .collect();

    let mut reference = OnlineKnn::new(&seed, config());
    for chunk in stream.chunks(4) {
        reference.apply_batch(chunk.to_vec());
    }

    let dir = scratch("snapfault");
    let dir_scope = dir.to_string_lossy().into_owned();
    let cfg = StoreConfig::new(&dir).with_snapshot_every(0);
    let rec = recover(&cfg, &seed, None, config(), None).unwrap();
    let (mut engine, mut store) = (rec.engine, rec.store);
    fault::arm_scoped(points::SNAPSHOT_WRITE, Trigger::Nth(1), &dir_scope);
    for (i, chunk) in stream.chunks(4).enumerate() {
        store.append(chunk, 0).unwrap();
        engine.apply_batch(chunk.to_vec());
        if i == 2 {
            assert!(
                store.snapshot(engine.as_ref()).is_err(),
                "injected write fault"
            );
        }
    }
    drop((engine, store)); // crash without a (working) snapshot

    for entry in std::fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name();
        let name = name.to_string_lossy().into_owned();
        assert!(!name.ends_with(".tmp"), "tmp litter: {name}");
        assert!(!name.contains("snapshot"), "phantom snapshot: {name}");
    }

    let rec = recover(&cfg, &seed, None, config(), None).unwrap();
    assert_eq!(rec.snapshot_seq, None);
    assert_eq!(rec.replayed, stream.len() as u64);
    assert_eq!(rec.engine.graph().as_ref(), reference.graph().as_ref());
    std::fs::remove_dir_all(&dir).ok();
}

/// The canonical torn-ack scenario, pinned deterministically: the
/// server applies a batch, the connection dies before the ack, the
/// client retries the same batch id, and the server dedupes it — one
/// apply, `deduped: true` on the retry.
#[test]
fn killed_ack_retries_without_double_apply() {
    ambient_failpoints();
    let seed = seed_dataset();
    let config = || OnlineConfig::new(3);

    let dir = scratch("tornack");
    let cfg = StoreConfig::new(&dir).with_snapshot_every(0);
    let rec = recover(&cfg, &seed, None, config(), None).unwrap();
    let host = EngineHost::new(rec.engine, Some(rec.store), Registry::new());
    let server = kiff::serve::Server::bind("127.0.0.1:0", host).unwrap();
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run());

    let mut client = SelfHealingClient::connect(&addr, RetryPolicy::default()).unwrap();
    // Fire on the write of the *next* response: the update below is
    // applied server-side, but its ack never reaches the client.
    fault::arm_scoped(points::NET_WRITE, Trigger::Nth(1), &addr);
    let ack = client
        .update(&[Update::AddRating {
            user: 0,
            item: 9,
            rating: 5.0,
        }])
        .unwrap();
    assert_eq!(ack.applied, 0, "retry was deduped, not re-applied");
    assert!(ack.deduped);
    assert!(client.retries() >= 1, "the torn ack forced a retry");
    assert!(client.reconnects() >= 1);

    // The batch landed exactly once despite the retry.
    let health = client.health().unwrap();
    assert_eq!(health.status, "healthy");
    assert_eq!(health.batch_hwm, 1);
    assert_eq!(health.seq, Some(1));

    shutdown_daemon(&addr);
    daemon.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
