//! The TCP daemon: accept loop, per-connection workers, request
//! dispatch, graceful degradation, and shutdown.
//!
//! One [`EngineHost`] owns the engine and its persistence behind a
//! mutex: the engines are `&mut`-update structures, so the daemon
//! serialises *writes* rather than pretending to share them. Queries
//! never touch that mutex: after every applied batch the host captures
//! a [`ServeView`] — an immutable graph + dataset snapshot tagged with
//! the batch version — and publishes it through an epoch cell
//! ([`kiff_parallel::ViewCell`]). Connection workers answer
//! `neighbors` / `recommend` / `predict` / `audience` / `search` /
//! `stats` from the view they load with one atomic epoch check
//! (`serve.read_wait_ns` measures the load; it stays ~0 even while a
//! batch is mid-apply), so one slow `apply_batch` no longer stalls
//! every reader. `update` / `snapshot` / `health` / `shutdown` keep
//! the serialized path; `serve.view_age_batches` reports how far the
//! published view trails the write epoch (1 while a batch is
//! in-flight, 0 otherwise).
//!
//! # Graceful degradation
//!
//! A WAL append or fsync failure must not take queries down with it —
//! the live engine is untouched and the failed batch was never
//! acknowledged. The daemon instead enters **read-only degraded mode**:
//! queries keep serving, writes come back as a typed
//! [`KiffError::Unavailable`], and a background recovery thread retries
//! [`Store::reopen_wal`] until the disk accepts an fsync again, flipping
//! the daemon back to healthy. The `health` op reports the current
//! state (`healthy | degraded | recovering`) plus sequence, applied-
//! batch high-water mark, and WAL/snapshot ages.
//!
//! # Overload shedding
//!
//! [`ServerConfig::max_inflight`] bounds concurrently processed
//! requests; beyond it the daemon answers [`KiffError::Overloaded`]
//! immediately (counted in `serve.shed`) instead of queueing without
//! bound on the host mutex. Shed responses are cheap — no engine lock
//! is touched — so a saturated daemon stays responsive enough to tell
//! clients to back off.
//!
//! Shutdown is cooperative: the `shutdown` op flips an atomic flag,
//! and the flipping connection pokes the accept loop with a throwaway
//! connect so it observes the flag without waiting for a real client.
//! Connection readers poll the flag between 100 ms read timeouts and
//! drain their in-flight request before exiting; `run` joins every
//! worker. On a graceful exit the host takes a final snapshot when the
//! WAL has advanced past the last one.
//!
//! The `net.read` / `net.write` failpoints ([`kiff_core::fault`]) fire
//! here, scoped by the listener address; a fired point kills only that
//! connection, exactly like a real peer reset.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use kiff_apps::{GraphSearcher, ProfileMetric, QueryProfile, Recommender};
use kiff_core::fault::{self, points};
use kiff_core::KiffError;
use kiff_online::{KnnEngine, ReadView, Update};
use kiff_parallel::{ViewCache, ViewCell};
use kiff_telemetry::{Gauge, Registry};
use serde_json::Value;

use crate::replication::{self, ReplState, ReplicationConfig, Role};
use crate::store::{Appended, Store};
use crate::wire::{self, Request, MAX_FRAME};

const READ_POLL: Duration = Duration::from_millis(100);

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently processed requests before shedding
    /// (`0` = unbounded).
    pub max_inflight: usize,
    /// Per-connection write timeout: a client that stops draining its
    /// socket is disconnected instead of wedging a worker forever.
    pub write_timeout: Duration,
    /// How often the degraded-mode recovery thread retries the WAL.
    pub recovery_interval: Duration,
    /// Primary/replica WAL shipping (`None` = standalone daemon). See
    /// [`crate::replication`].
    pub replication: Option<ReplicationConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_inflight: 0,
            write_timeout: Duration::from_secs(10),
            recovery_interval: Duration::from_millis(50),
            replication: None,
        }
    }
}

/// One published, immutable serving snapshot: everything the read ops
/// answer from, tagged with the write version it reflects.
///
/// The host publishes a fresh `ServeView` (through a
/// [`kiff_parallel::ViewCell`]) after every applied batch; readers load
/// the current one with a single atomic epoch check and keep it alive
/// for the duration of a request — snapshot isolation with a staleness
/// bound of the one batch currently mid-apply.
#[derive(Debug, Clone)]
pub struct ServeView {
    /// The engine snapshot: graph, materialized dataset, `k`, stats.
    pub view: ReadView,
    /// Last persisted sequence at capture (`None` without a store).
    pub seq: Option<u64>,
    /// Write-epoch version: the number of applied batches this view
    /// reflects. Strictly monotone across publishes, echoed as the
    /// `"view"` field on every view-served response.
    pub version: u64,
}

/// The engine, its persistence, and the published read view.
pub struct EngineHost {
    engine: Box<dyn KnnEngine>,
    store: Option<Store>,
    telemetry: Registry,
    /// The published read view; shared with every connection worker.
    views: Arc<ViewCell<ServeView>>,
    /// Batches applied (bumped before each `apply_batch`); the gap to
    /// the published view's version is `serve.view_age_batches`.
    write_epoch: Arc<AtomicU64>,
    /// Version of the last view published (writer-private mirror).
    last_published: u64,
    view_age: Gauge,
    read_only: bool,
    /// True while the recovery thread has a reopen attempt in flight —
    /// the `recovering` leg of the health tristate.
    recovering: Arc<AtomicBool>,
    /// Replication state when the daemon is part of a group; gates the
    /// write path on role and publishes committed batches.
    repl: Option<Arc<ReplState>>,
}

impl EngineHost {
    /// Wraps `engine` (and optionally its durable `store`) for serving.
    /// Publishes the initial read view (version 0) immediately, so
    /// queries can serve before — and during — the first write.
    pub fn new(engine: Box<dyn KnnEngine>, store: Option<Store>, telemetry: Registry) -> Self {
        let seq = store.as_ref().map(Store::seq);
        let initial = ServeView {
            view: engine.read_view(),
            seq,
            version: 0,
        };
        let view_age = telemetry.gauge("serve.view_age_batches");
        Self {
            engine,
            store,
            telemetry,
            views: Arc::new(ViewCell::new(Arc::new(initial))),
            write_epoch: Arc::new(AtomicU64::new(0)),
            last_published: 0,
            view_age,
            read_only: false,
            recovering: Arc::new(AtomicBool::new(false)),
            repl: None,
        }
    }

    /// The shared view cell readers load from (cloned into the server's
    /// shared state at bind time; also the in-process read handle tests
    /// and embedded readers use).
    pub fn view_handle(&self) -> Arc<ViewCell<ServeView>> {
        Arc::clone(&self.views)
    }

    /// Marks the start of one batch apply: bumps the write epoch so
    /// `serve.view_age_batches` reads 1 until the post-apply publish.
    fn begin_batch(&mut self) -> u64 {
        let epoch = self.write_epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.view_age.set((epoch - self.last_published) as i64);
        epoch
    }

    /// Captures the engine's current state and atomically publishes it
    /// as the serving view. Called with the host lock held (writes are
    /// serialized), after every mutation, *before* the client ack — an
    /// acknowledged write is visible to the very next read.
    fn publish_view(&mut self) -> u64 {
        let version = self.write_epoch.load(Ordering::Acquire);
        let view = ServeView {
            view: self.engine.read_view(),
            seq: self.store.as_ref().map(Store::seq),
            version,
        };
        self.views.publish(Arc::new(view));
        self.last_published = version;
        self.view_age.set(0);
        version
    }

    /// Installs replication state (done by [`Server::bind_with`] when
    /// [`ServerConfig::replication`] is set).
    pub(crate) fn set_replication(&mut self, repl: Arc<ReplState>) {
        self.repl = Some(repl);
    }

    /// Last persisted sequence (0 without a store).
    pub(crate) fn store_seq(&self) -> u64 {
        self.store.as_ref().map_or(0, Store::seq)
    }

    /// The store's data directory, for lock-free WAL catch-up reads.
    pub(crate) fn store_dir(&self) -> Option<PathBuf> {
        self.store.as_ref().map(|s| s.dir().to_path_buf())
    }

    /// The store's current leadership epoch (0 without a store).
    pub(crate) fn store_epoch(&self) -> u64 {
        self.store.as_ref().map_or(0, Store::epoch)
    }

    /// Applies one replicated batch from the primary's stream: seq
    /// continuity is enforced (a gap closes the stream so the primary
    /// redials and catches up), duplicates from the catch-up overlap
    /// are acked without re-applying, and everything else goes through
    /// the same WAL-then-engine path as a local write. Returns the
    /// applied sequence.
    pub(crate) fn apply_replicated(
        &mut self,
        first_seq: u64,
        batch_id: u64,
        updates: &[Update],
    ) -> Result<u64, KiffError> {
        if updates.is_empty() {
            return Ok(self.store_seq());
        }
        let seq = self.store_seq();
        let last = first_seq + updates.len() as u64 - 1;
        if last <= seq {
            return Ok(seq);
        }
        if first_seq != seq + 1 {
            return Err(KiffError::Protocol(format!(
                "replication gap: batch starts at {first_seq}, applied through {seq}"
            )));
        }
        let store = self
            .store
            .as_mut()
            .ok_or_else(|| KiffError::Protocol("replication requires a data dir".into()))?;
        let seq = match store.append(updates, batch_id)? {
            Appended::Applied { seq } => seq,
            Appended::Duplicate { seq } => return Ok(seq),
        };
        self.begin_batch();
        self.engine.apply_batch(updates.to_vec());
        if let Some(store) = &mut self.store {
            store.maybe_snapshot(self.engine.as_ref())?;
        }
        // Replica reads serve the shipped state as soon as it lands.
        self.publish_view();
        Ok(seq)
    }

    /// Promotion fence: persists `new_epoch` in a snapshot *before*
    /// the caller starts acknowledging writes under it, so the old
    /// primary's frames stay rejected even across a restart.
    pub(crate) fn promote(&mut self, new_epoch: u64) -> Result<(), KiffError> {
        let store = self
            .store
            .as_mut()
            .ok_or_else(|| KiffError::Protocol("replication requires a data dir".into()))?;
        store.set_epoch(new_epoch);
        store.snapshot(self.engine.as_ref())?;
        Ok(())
    }

    /// Adopts a newer leader's epoch (demotion path), persisting it.
    pub(crate) fn adopt_epoch(&mut self, epoch: u64) -> Result<(), KiffError> {
        self.promote(epoch)
    }

    /// Marks the host permanently read-only: queries serve, every write
    /// is refused as `Unavailable`. The `--degraded-ok` fallback when
    /// persistence could not be opened at startup.
    pub fn read_only(mut self) -> Self {
        self.read_only = true;
        self
    }

    /// Read-only access to the engine (tests compare served answers
    /// against direct calls).
    pub fn engine(&self) -> &dyn KnnEngine {
        self.engine.as_ref()
    }

    /// Whether writes are currently refused (permanent read-only mode
    /// or a poisoned WAL awaiting recovery).
    pub fn is_degraded(&self) -> bool {
        self.read_only || self.store.as_ref().is_some_and(Store::is_poisoned)
    }

    fn health_status(&self) -> &'static str {
        if !self.is_degraded() {
            "healthy"
        } else if self.recovering.load(Ordering::SeqCst) {
            "recovering"
        } else {
            "degraded"
        }
    }

    fn unavailable(&self, op: &str) -> KiffError {
        let detail = if self.read_only {
            "daemon is read-only (started with --degraded-ok after a persistence failure)".into()
        } else {
            "wal is poisoned by a failed append; recovery in progress".to_string()
        };
        KiffError::Unavailable {
            op: op.into(),
            detail,
        }
    }

    /// Dispatches one request. `Shutdown` is handled by the connection
    /// loop before this point; it answers like `Ping` here.
    ///
    /// Read ops answer from the *published view* — the same code path
    /// the lock-free connection workers use — so in-process callers
    /// (the CLI, tests) observe exactly what a TCP reader would.
    pub fn handle(&mut self, request: &Request) -> Result<Value, KiffError> {
        match request {
            Request::Ping | Request::Shutdown => Ok(serde_json::json!({"ok": true})),
            Request::Neighbors { .. }
            | Request::Recommend { .. }
            | Request::Predict { .. }
            | Request::Audience { .. }
            | Request::Search { .. }
            | Request::Stats => {
                let view = self.views.load();
                answer_from_view(&view, request)
                    .expect("view-served ops are classified exhaustively")
            }
            Request::Update { updates, batch } => {
                if let Some(repl) = &self.repl {
                    if repl.role() != Role::Primary {
                        // Typed refusal with a leader hint so a
                        // failover-aware client can re-route instead of
                        // treating this as a dead end.
                        return Err(KiffError::NotPrimary {
                            leader: repl.leader_hint(),
                        });
                    }
                }
                if self.is_degraded() {
                    return Err(self.unavailable("update"));
                }
                let mut applied_seq = None;
                let seq = match &mut self.store {
                    Some(store) => match store.append(updates, *batch) {
                        Ok(Appended::Applied { seq }) => {
                            applied_seq = Some(seq);
                            Value::Number(seq as f64)
                        }
                        Ok(Appended::Duplicate { seq }) => {
                            // The batch already landed in a previous
                            // life; acknowledge without re-applying so a
                            // retried write is idempotent. It must still
                            // clear the same durability bar as a fresh
                            // apply: a write refused as under-replicated
                            // keeps failing on retry until enough
                            // replicas re-attach (the batch is in the
                            // WAL, so the reconnect handshake ships it).
                            if let Some(repl) = &self.repl {
                                repl.require_min_sync()?;
                            }
                            return Ok(serde_json::json!({
                                "ok": true,
                                "applied": 0,
                                "deduped": true,
                                "seq": Value::Number(seq as f64),
                                "view": Value::Number(self.last_published as f64)
                            }));
                        }
                        Err(e) => {
                            // The WAL is now poisoned; this and every
                            // following write is refused until the
                            // recovery thread heals it. The batch was
                            // never acknowledged, so the client retries
                            // it — nothing is lost.
                            self.telemetry.gauge("serve.degraded").set(1);
                            return Err(KiffError::Unavailable {
                                op: "update".into(),
                                detail: e.to_string(),
                            });
                        }
                    },
                    None => Value::Null,
                };
                self.begin_batch();
                let stats = self.engine.apply_batch(updates.clone());
                // Publish before the (possibly slow, possibly failing)
                // replication wait and ack: the local apply stands
                // either way, and readers see it immediately.
                let version = self.publish_view();
                if let (Some(repl), Some(last_seq)) =
                    (&self.repl, applied_seq.filter(|_| !updates.is_empty()))
                {
                    // Semi-synchronous shipping: the batch reaches every
                    // live replica (bounded wait per replica) before the
                    // client sees the ack, so an acked write survives
                    // losing the primary. Runs under the host mutex, so
                    // replicas receive batches in commit order. Under
                    // `min_sync_replicas` a batch short of the bar fails
                    // the write (retryable; the local apply stands and
                    // the retry dedups).
                    let first_seq = last_seq + 1 - updates.len() as u64;
                    repl.publish_and_wait(first_seq, *batch, updates)?;
                }
                if let Some(store) = &mut self.store {
                    store.maybe_snapshot(self.engine.as_ref())?;
                }
                Ok(serde_json::json!({
                    "ok": true,
                    "applied": stats.updates,
                    "seq": seq,
                    "sim_evals": stats.sim_evals,
                    "repaired_users": stats.repaired_users,
                    "view": Value::Number(version as f64)
                }))
            }
            Request::Health => {
                let (seq, hwm, wal_age, snap_age) = match &self.store {
                    Some(store) => (
                        Value::Number(store.seq() as f64),
                        Value::Number(store.batch_hwm() as f64),
                        Value::Number(store.wal_age_secs() as f64),
                        Value::Number(store.snapshot_age_secs() as f64),
                    ),
                    None => (Value::Null, Value::Number(0.0), Value::Null, Value::Null),
                };
                let mut body = serde_json::json!({
                    "ok": true,
                    "status": self.health_status(),
                    "seq": seq,
                    "batch_hwm": hwm,
                    "wal_age_secs": wal_age,
                    "snapshot_age_secs": snap_age
                });
                if let Some(repl) = &self.repl {
                    // Role, epoch, lag, and the replication address:
                    // everything a failover-aware client needs to find
                    // the leader and spread reads.
                    if let Value::Object(entries) = &mut body {
                        entries.push(("role".into(), Value::String(repl.role().as_str().into())));
                        entries.push(("epoch".into(), Value::Number(repl.epoch() as f64)));
                        entries.push((
                            "replication_lag_batches".into(),
                            Value::Number(repl.lag() as f64),
                        ));
                        entries.push(("repl_addr".into(), Value::String(repl.repl_addr().into())));
                    }
                }
                Ok(body)
            }
            Request::Metrics => metrics_value(&self.telemetry),
            Request::Snapshot => {
                if self.is_degraded() {
                    return Err(self.unavailable("snapshot"));
                }
                match &mut self.store {
                    Some(store) => {
                        store.snapshot(self.engine.as_ref())?;
                        Ok(serde_json::json!({"ok": true, "seq": store.seq()}))
                    }
                    None => Err(KiffError::Protocol(
                        "daemon is running without a data dir; nothing to snapshot".into(),
                    )),
                }
            }
        }
    }

    /// One degraded-mode recovery attempt; returns whether the host is
    /// healthy afterwards.
    fn try_recover_wal(&mut self) -> bool {
        let Some(store) = &mut self.store else {
            return true;
        };
        if !store.is_poisoned() {
            self.telemetry.gauge("serve.degraded").set(0);
            return true;
        }
        self.telemetry.counter("serve.wal_recover_attempts").incr();
        if store.reopen_wal().is_ok() {
            self.telemetry.gauge("serve.degraded").set(0);
            true
        } else {
            false
        }
    }

    /// Final snapshot on graceful shutdown, when the WAL advanced.
    /// Skipped while degraded — everything committed is already durable
    /// in the WAL, and a poisoned store cannot prune safely anyway.
    fn final_snapshot(&mut self) -> Result<(), KiffError> {
        if self.is_degraded() {
            return Ok(());
        }
        if let Some(store) = &mut self.store {
            if store.dirty() {
                store.snapshot(self.engine.as_ref())?;
            }
        }
        Ok(())
    }
}

/// Renders the registry snapshot as the `metrics` response body. Pure
/// telemetry — never touches the host lock.
fn metrics_value(telemetry: &Registry) -> Result<Value, KiffError> {
    let text = kiff_telemetry::export::to_json(&telemetry.snapshot());
    let metrics: Value = serde_json::from_str(&text)
        .map_err(|e| KiffError::Protocol(format!("metrics render: {e}")))?;
    Ok(serde_json::json!({"ok": true, "metrics": metrics}))
}

/// Answers one view-served read op from `view` alone — no engine, no
/// lock, no I/O. Returns `None` for ops that need the host (writes,
/// health, snapshot, shutdown) or the registry (ping, metrics). Every
/// response carries the `"view"` version it was answered from, so
/// clients can assert read-your-writes and monotone reads.
fn answer_from_view(view: &ServeView, request: &Request) -> Option<Result<Value, KiffError>> {
    let version = Value::Number(view.version as f64);
    let answer = match request {
        Request::Neighbors { user } => view.view.neighbors(*user).map(|neighbors| {
            let neighbors: Vec<Value> = neighbors
                .iter()
                .map(|nb| serde_json::json!({"id": nb.id, "sim": nb.sim}))
                .collect();
            serde_json::json!({"ok": true, "neighbors": neighbors, "view": version})
        }),
        Request::Recommend { user, top } => Recommender::from_view(&view.view)
            .try_recommend(*user, *top)
            .map(|recs| {
                let recs: Vec<Value> = recs
                    .iter()
                    .map(|r| serde_json::json!({"item": r.item, "score": r.score}))
                    .collect();
                serde_json::json!({"ok": true, "recommendations": recs, "view": version})
            }),
        Request::Predict { user, item } => Recommender::from_view(&view.view)
            .try_predict(*user, *item)
            .map(|prediction| {
                let prediction = match prediction {
                    Some(p) => Value::Number(p),
                    None => Value::Null,
                };
                serde_json::json!({"ok": true, "prediction": prediction, "view": version})
            }),
        Request::Audience { item, top } => Recommender::from_view(&view.view)
            .try_audience(*item, *top)
            .map(|audience| {
                let audience: Vec<Value> = audience
                    .iter()
                    .map(|(u, score)| serde_json::json!({"user": *u, "score": *score}))
                    .collect();
                serde_json::json!({"ok": true, "audience": audience, "view": version})
            }),
        Request::Search { items, top } => {
            let searcher = GraphSearcher::from_view(&view.view, ProfileMetric::Cosine);
            let query = QueryProfile::new(items.iter().copied());
            let ef = (top * 4).max(40);
            searcher.try_search(&query, *top, ef).map(|hits| {
                let hits: Vec<Value> = hits
                    .iter()
                    .map(|h| serde_json::json!({"user": h.user, "sim": h.sim}))
                    .collect();
                serde_json::json!({"ok": true, "hits": hits, "view": version})
            })
        }
        Request::Stats => {
            let stats = &view.view.stats;
            let seq = match view.seq {
                Some(seq) => Value::Number(seq as f64),
                None => Value::Null,
            };
            Ok(serde_json::json!({
                "ok": true,
                "users": view.view.num_users(),
                "k": view.view.k,
                "seq": seq,
                "updates": stats.updates,
                "sim_evals": stats.sim_evals,
                "repaired_users": stats.repaired_users,
                "migrations": stats.migrations,
                "cross_messages": stats.cross_messages,
                "view": version
            }))
        }
        _ => return None,
    };
    Some(answer)
}

pub(crate) struct Shared {
    pub(crate) host: Mutex<EngineHost>,
    pub(crate) shutdown: AtomicBool,
    /// The published read view, shared with the host (the writer).
    /// Workers load it lock-free; the host mutex is never taken on the
    /// read path.
    pub(crate) views: Arc<ViewCell<ServeView>>,
    inflight: AtomicUsize,
    config: ServerConfig,
    pub(crate) telemetry: Registry,
    addr: SocketAddr,
    net_ctx: String,
    pub(crate) repl: Option<Arc<ReplState>>,
}

impl Shared {
    pub(crate) fn lock_host(&self) -> std::sync::MutexGuard<'_, EngineHost> {
        // A worker that panicked while holding the lock (a bug, but one
        // that must not cascade) leaves the engine in a valid state:
        // handle() mutates through &mut with no partial commits visible
        // after unwind, so serving beats poisoning the whole daemon.
        self.host.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    repl_listener: Option<TcpListener>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) with
    /// default [`ServerConfig`].
    pub fn bind(addr: &str, host: EngineHost) -> Result<Self, KiffError> {
        Self::bind_with(addr, host, ServerConfig::default())
    }

    /// Binds `addr` with explicit tuning knobs.
    pub fn bind_with(
        addr: &str,
        host: EngineHost,
        config: ServerConfig,
    ) -> Result<Self, KiffError> {
        let telemetry = host.telemetry.clone();
        let listener = TcpListener::bind(addr).map_err(KiffError::Io)?;
        let addr = listener.local_addr().map_err(KiffError::Io)?;
        let mut host = host;
        let (repl_listener, repl) = match &config.replication {
            Some(rc) => {
                if host.store.is_none() {
                    return Err(KiffError::Protocol(
                        "replication requires a data dir (the replica stream is WAL-backed)".into(),
                    ));
                }
                let repl_listener = TcpListener::bind(&rc.repl_listen).map_err(KiffError::Io)?;
                let repl_addr = repl_listener.local_addr().map_err(KiffError::Io)?;
                let state = Arc::new(ReplState::new(
                    rc.clone(),
                    repl_addr.to_string(),
                    addr.to_string(),
                    host.store_epoch(),
                    telemetry.clone(),
                ));
                host.set_replication(Arc::clone(&state));
                (Some(repl_listener), Some(state))
            }
            None => (None, None),
        };
        let views = host.view_handle();
        Ok(Self {
            listener,
            repl_listener,
            shared: Arc::new(Shared {
                host: Mutex::new(host),
                shutdown: AtomicBool::new(false),
                views,
                inflight: AtomicUsize::new(0),
                config,
                telemetry,
                addr,
                net_ctx: addr.to_string(),
                repl,
            }),
        })
    }

    /// The published read view cell: what connection workers answer
    /// read ops from. Exposed so embedded (in-process) readers can
    /// share the daemon's snapshots without a TCP round trip.
    pub fn view_handle(&self) -> Arc<ViewCell<ServeView>> {
        Arc::clone(&self.shared.views)
    }

    /// The actually bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The replication channel's bound address, when configured.
    pub fn repl_addr(&self) -> Option<SocketAddr> {
        self.repl_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// Runs the accept loop until a client sends `shutdown`. Consumes
    /// the server; returns once every connection worker has drained.
    pub fn run(mut self) -> Result<(), KiffError> {
        let repl_threads = match self.repl_listener.take() {
            Some(listener) => replication::spawn_replication(&self.shared, listener),
            None => Vec::new(),
        };
        let recovery = {
            // Background self-healing: while the WAL is poisoned, retry
            // reopening it so the daemon flips back from degraded to
            // healthy without operator intervention.
            let shared = Arc::clone(&self.shared);
            let recovering = Arc::clone(&shared.lock_host().recovering);
            std::thread::spawn(move || {
                while !shared.shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(shared.config.recovery_interval);
                    let degraded = shared
                        .lock_host()
                        .store
                        .as_ref()
                        .is_some_and(Store::is_poisoned);
                    if !degraded {
                        continue;
                    }
                    recovering.store(true, Ordering::SeqCst);
                    shared.lock_host().try_recover_wal();
                    recovering.store(false, Ordering::SeqCst);
                }
            })
        };
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let shared = Arc::clone(&self.shared);
                    workers.push(std::thread::spawn(move || {
                        let _ = handle_connection(stream, &shared);
                    }));
                }
                Err(e) => {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    return Err(KiffError::Io(e));
                }
            }
            workers.retain(|w| !w.is_finished());
        }
        for worker in workers {
            let _ = worker.join();
        }
        // Replication drains before the final snapshot: outbound
        // streaming threads flush every batch already acknowledged to a
        // client, then a bounded final pass re-dials any peer a torn
        // stream left lagging, so a graceful primary exit leaves no
        // acked write behind on its replicas.
        for thread in repl_threads {
            let _ = thread.join();
        }
        if let Some(repl) = &self.shared.repl {
            replication::final_drain(&self.shared, repl);
        }
        let _ = recovery.join();
        self.shared.lock_host().final_snapshot()
    }
}

enum Framed {
    Value(Value),
    Eof,
    ShuttingDown,
}

/// Fills `buf` from `stream`, polling the shutdown flag on every read
/// timeout. `allow_eof` treats EOF *before the first byte* as clean.
fn fill(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    allow_eof: bool,
) -> Result<Option<bool>, KiffError> {
    use std::io::Read as _;
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(Some(false));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && allow_eof {
                    return Ok(Some(true));
                }
                return Err(KiffError::Protocol("connection closed mid-frame".into()));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(KiffError::Io(e)),
        }
    }
    Ok(None)
}

/// Reads one frame, interruptible by the shutdown flag.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> Result<Framed, KiffError> {
    let mut header = [0u8; 4];
    match fill(stream, &mut header, shutdown, true)? {
        Some(true) => return Ok(Framed::Eof),
        Some(false) => return Ok(Framed::ShuttingDown),
        None => {}
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME {
        return Err(KiffError::Protocol(format!(
            "frame of {len} bytes exceeds {MAX_FRAME}"
        )));
    }
    let mut bytes = vec![0u8; len as usize];
    if fill(stream, &mut bytes, shutdown, false)?.is_some() {
        return Ok(Framed::ShuttingDown);
    }
    let text =
        String::from_utf8(bytes).map_err(|_| KiffError::Protocol("frame is not UTF-8".into()))?;
    serde_json::from_str(&text)
        .map(Framed::Value)
        .map_err(|e| KiffError::Protocol(e.to_string()))
}

/// RAII slot in the bounded in-flight window.
struct InflightSlot<'a>(&'a AtomicUsize);

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Claims an in-flight slot, or reports how oversubscribed the daemon
/// is. Claiming happens *before* waiting on the host mutex, so requests
/// queued behind a slow batch shed deterministically.
fn claim_slot(shared: &Shared) -> Result<InflightSlot<'_>, KiffError> {
    let inflight = shared.inflight.fetch_add(1, Ordering::SeqCst) + 1;
    let limit = shared.config.max_inflight;
    if limit > 0 && inflight > limit {
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        shared.telemetry.counter("serve.shed").incr();
        return Err(KiffError::Overloaded { inflight, limit });
    }
    Ok(InflightSlot(&shared.inflight))
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) -> Result<(), KiffError> {
    // Request/response framing is latency-bound, not throughput-bound:
    // without nodelay, Nagle holds small response frames for the
    // peer's delayed ACK (~40ms per request once quickack wears off).
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(READ_POLL))
        .map_err(KiffError::Io)?;
    // A peer that stops draining its socket must not pin this worker
    // (and the response buffer) forever.
    if !shared.config.write_timeout.is_zero() {
        stream
            .set_write_timeout(Some(shared.config.write_timeout))
            .map_err(KiffError::Io)?;
    }
    let queue_depth = shared.telemetry.gauge("serve.queue_depth");
    let requests = shared.telemetry.counter("serve.requests");
    let errors = shared.telemetry.counter("serve.errors");
    let read_wait = shared.telemetry.histogram("serve.read_wait_ns");
    // Per-connection view memo: in the steady state a read op costs one
    // atomic epoch check, no lock of any kind.
    let mut view_cache: ViewCache<ServeView> = ViewCache::new();

    loop {
        // An armed net.read failpoint kills the connection exactly like
        // a peer reset — the error stays connection-scoped.
        fault::check_ctx(points::NET_READ, &shared.net_ctx)?;
        let value = match read_frame_interruptible(&mut stream, &shared.shutdown)? {
            Framed::Value(v) => v,
            Framed::Eof | Framed::ShuttingDown => return Ok(()),
        };
        requests.incr();
        // RAII: every exit between here and the end of this iteration —
        // shed, handler error, write timeout, even a panicking handler
        // unwinding the worker — lowers the gauge again. A bare
        // add(1)/add(-1) pair leaked on exactly those paths.
        let _depth = queue_depth.raise(1);
        let started = Instant::now();
        let (response, op, shutdown) = match Request::from_value(&value) {
            Ok(request) => {
                let op = request.op();
                let shutdown = matches!(request, Request::Shutdown);
                let response = claim_slot(shared).and_then(|_slot| match request {
                    // Lock-free lane: answered from the published view
                    // (or pure telemetry) without touching the host
                    // mutex — a writer mid-`apply_batch` cannot stall
                    // these.
                    Request::Ping => Ok(serde_json::json!({"ok": true})),
                    Request::Metrics => metrics_value(&shared.telemetry),
                    Request::Neighbors { .. }
                    | Request::Recommend { .. }
                    | Request::Predict { .. }
                    | Request::Audience { .. }
                    | Request::Search { .. }
                    | Request::Stats => {
                        let load_started = Instant::now();
                        let view = shared.views.load_cached(&mut view_cache);
                        read_wait.record(load_started.elapsed().as_nanos() as u64);
                        answer_from_view(&view, &request)
                            .expect("view-served ops are classified exhaustively")
                    }
                    // Serialized lane: writes, persistence, health,
                    // shutdown — the host mutex path.
                    _ => shared.lock_host().handle(&request),
                });
                match response {
                    Ok(mut body) => {
                        if shutdown {
                            shared.shutdown.store(true, Ordering::SeqCst);
                            if let Value::Object(entries) = &mut body {
                                entries.push(("stopping".into(), Value::Bool(true)));
                            }
                        }
                        (body, op, shutdown)
                    }
                    Err(e) => {
                        errors.incr();
                        (wire::error_value(&e, op), op, false)
                    }
                }
            }
            Err(e) => {
                errors.incr();
                (wire::error_value(&e, ""), "invalid", false)
            }
        };
        shared
            .telemetry
            .histogram(&format!("serve.request_ns.{op}"))
            .record(started.elapsed().as_nanos() as u64);
        let written = fault::check_ctx(points::NET_WRITE, &shared.net_ctx)
            .and_then(|()| wire::write_frame(&mut stream, &response));
        if shutdown {
            // Poke the accept loop so it observes the flag — even when
            // the ack write failed: the flag is already set, and
            // skipping the poke would leave the daemon wedged in
            // `accept` with the client convinced it is stopping.
            if let Ok(mut poke) = TcpStream::connect(shared.addr) {
                let _ = poke.write_all(&[]);
            }
            return written;
        }
        written?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use kiff_dataset::dataset::figure2_toy;
    use kiff_online::{OnlineConfig, OnlineKnn, Update};

    fn spawn_toy_server() -> (std::thread::JoinHandle<Result<(), KiffError>>, SocketAddr) {
        let ds = figure2_toy();
        let reg = Registry::new();
        let config = OnlineConfig::new(2).with_telemetry(reg.clone());
        let engine = Box::new(OnlineKnn::new(&ds, config));
        let host = EngineHost::new(engine, None, reg);
        let server = Server::bind("127.0.0.1:0", host).unwrap();
        let addr = server.local_addr();
        (std::thread::spawn(move || server.run()), addr)
    }

    #[test]
    fn serves_queries_updates_and_shuts_down() {
        let (handle, addr) = spawn_toy_server();
        let mut client = Client::connect(&addr.to_string()).unwrap();
        client.ping().unwrap();

        // Alice's nearest neighbour is Bob, exactly as in-process.
        let nbrs = client.neighbors(0).unwrap();
        assert_eq!(nbrs[0].id, 1);

        let recs = client.recommend(0, 3).unwrap();
        assert!(!recs.is_empty(), "Alice gets recommendations");

        let err = client.neighbors(99).unwrap_err();
        match err {
            KiffError::Remote { kind, op, .. } => {
                assert_eq!(kind, "unknown_user");
                assert_eq!(op, "neighbors", "failing op crosses the wire");
            }
            other => panic!("expected Remote, got {other}"),
        }

        // Update over the wire, then observe the graph move.
        let applied = client
            .update(&[Update::AddRating {
                user: 2,
                item: 1,
                rating: 2.0,
            }])
            .unwrap();
        assert_eq!(applied, 1);
        let stats = client.stats().unwrap();
        assert_eq!(stats.get("updates").and_then(Value::as_u64), Some(1));

        let metrics = client.metrics().unwrap();
        assert!(metrics.get("counters").is_some(), "telemetry surfaces");

        // Health on a storeless daemon: healthy, no seq.
        let health = client.health().unwrap();
        assert_eq!(health.status, "healthy");
        assert_eq!(health.batch_hwm, 0);

        // A second concurrent client works while the first idles.
        let mut other = Client::connect(&addr.to_string()).unwrap();
        other.ping().unwrap();
        drop(other);

        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    /// The tentpole invariant: read ops are answered from the published
    /// view and never wait on the host mutex. We hold the writer's lock
    /// for the whole test and queries must still come back.
    #[test]
    fn reads_are_answered_while_the_host_mutex_is_held() {
        let ds = figure2_toy();
        let reg = Registry::new();
        let config = OnlineConfig::new(2).with_telemetry(reg.clone());
        let engine = Box::new(OnlineKnn::new(&ds, config));
        let host = EngineHost::new(engine, None, reg.clone());
        let server = Server::bind("127.0.0.1:0", host).unwrap();
        let addr = server.local_addr();
        let shared = Arc::clone(&server.shared);
        let handle = std::thread::spawn(move || server.run());

        // Wedge the writer: simulate a long apply_batch by holding the
        // host mutex on this thread. A locked read path would deadlock
        // the client below until the timeout fires.
        let guard = shared.lock_host();
        let (tx, rx) = std::sync::mpsc::channel();
        let reader = std::thread::spawn(move || {
            let mut client = Client::connect(&addr.to_string()).unwrap();
            let nbrs = client.neighbors(0);
            let stats = client.stats();
            let metrics = client.metrics();
            tx.send((nbrs, stats, metrics)).unwrap();
        });
        let (nbrs, stats, metrics) = rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("reads must not block on the writer's mutex");
        assert_eq!(nbrs.unwrap()[0].id, 1, "answered from the view");
        assert!(stats.unwrap().get("view").is_some(), "stats stamps a view");
        assert!(metrics.unwrap().get("counters").is_some());
        reader.join().unwrap();
        drop(guard);

        // And the read path never recorded a meaningful wait: the view
        // load is one atomic epoch check in the steady state.
        let waited = reg
            .snapshot()
            .histograms
            .iter()
            .any(|h| h.name == "serve.read_wait_ns" && h.count > 0);
        assert!(waited, "read_wait_ns instruments every view load");

        Client::connect(&addr.to_string())
            .unwrap()
            .shutdown()
            .unwrap();
        handle.join().unwrap().unwrap();
    }

    /// Regression (satellite 2): `serve.queue_depth` used to be a bare
    /// add(1)/add(-1) pair, which leaked a permanent +1 whenever the
    /// worker exited between the two. With the RAII guard the gauge
    /// returns to zero even when the connection dies mid-request.
    #[test]
    fn queue_depth_recovers_after_a_connection_dies_mid_request() {
        use kiff_core::fault::{self, points, Trigger};

        let ds = figure2_toy();
        let reg = Registry::new();
        let config = OnlineConfig::new(2).with_telemetry(reg.clone());
        let engine = Box::new(OnlineKnn::new(&ds, config));
        let host = EngineHost::new(engine, None, reg.clone());
        let server = Server::bind("127.0.0.1:0", host).unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());

        // Connect first, then arm: the very next response write on this
        // daemon fails, killing the worker while the depth guard is
        // live.
        let mut doomed = Client::connect(&addr.to_string()).unwrap();
        fault::arm_scoped(points::NET_WRITE, Trigger::Nth(1), addr.to_string());
        assert!(doomed.ping().is_err(), "the armed write kills the reply");
        drop(doomed);

        // The worker unwinds its stack on the way out; the guard must
        // have restored the gauge. Poll briefly — worker exit is
        // asynchronous with the client seeing the reset.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let depth = reg.snapshot().gauge("serve.queue_depth");
            if depth == Some(0) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "queue_depth leaked: stuck at {depth:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }

        let mut client = Client::connect(&addr.to_string()).unwrap();
        client.ping().unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    /// Acked writes are immediately visible to every reader (the view
    /// publishes before the ack), and each view-served response stamps
    /// the monotone view version it was answered from.
    #[test]
    fn acked_updates_are_visible_and_stamp_a_view_version() {
        let (handle, addr) = spawn_toy_server();
        let mut writer = Client::connect(&addr.to_string()).unwrap();
        let mut reader = Client::connect(&addr.to_string()).unwrap();

        let before = reader
            .request(&Request::Neighbors { user: 0 })
            .unwrap()
            .get("view")
            .and_then(Value::as_u64)
            .expect("view-served responses carry the version");

        let ack = writer
            .update(&[Update::AddRating {
                user: 2,
                item: 1,
                rating: 2.0,
            }])
            .unwrap();
        assert_eq!(ack, 1);

        // Read-your-writes through *any* connection: the ack means the
        // view was already published.
        let stats = reader.request(&Request::Stats).unwrap();
        assert_eq!(stats.get("updates").and_then(Value::as_u64), Some(1));
        let after = stats.get("view").and_then(Value::as_u64).unwrap();
        assert!(after > before, "the batch bumped the view version");

        // Monotone per connection: a later read never sees an older
        // version.
        let again = reader
            .request(&Request::Neighbors { user: 0 })
            .unwrap()
            .get("view")
            .and_then(Value::as_u64)
            .unwrap();
        assert!(again >= after);

        writer.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn snapshot_without_a_data_dir_is_a_protocol_error() {
        let (handle, addr) = spawn_toy_server();
        let mut client = Client::connect(&addr.to_string()).unwrap();
        let err = client.snapshot().unwrap_err();
        match err {
            KiffError::Remote { kind, .. } => assert_eq!(kind, "protocol"),
            other => panic!("expected Remote, got {other}"),
        }
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn read_only_host_serves_queries_but_refuses_writes() {
        let ds = figure2_toy();
        let reg = Registry::new();
        let config = OnlineConfig::new(2).with_telemetry(reg.clone());
        let engine = Box::new(OnlineKnn::new(&ds, config));
        let host = EngineHost::new(engine, None, reg).read_only();
        let server = Server::bind("127.0.0.1:0", host).unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.run());

        let mut client = Client::connect(&addr.to_string()).unwrap();
        assert_eq!(client.neighbors(0).unwrap()[0].id, 1, "queries serve");
        let err = client.update(&[Update::AddUser]).unwrap_err();
        match &err {
            KiffError::Remote { kind, op, .. } => {
                assert_eq!(kind, "unavailable");
                assert_eq!(op, "update");
            }
            other => panic!("expected Remote, got {other}"),
        }
        assert!(err.is_retryable(), "unavailable invites a retry");
        assert_eq!(client.health().unwrap().status, "degraded");

        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }
}
