#![warn(missing_docs)]

//! Applications of KNN graphs — the services §I of the paper motivates
//! KNN construction with: "search, recommendation and classification".
//!
//! Every module consumes a finished [`kiff_graph::KnnGraph`] (built by
//! KIFF or any of the baselines) together with the dataset it was built
//! from:
//!
//! * [`recommend`] — user-based collaborative filtering: items loved by a
//!   user's nearest neighbours become her recommendations, with
//!   similarity-weighted rating prediction and a leave-one-out evaluation
//!   harness.
//! * [`classify`] — k-nearest-neighbour classification by
//!   similarity-weighted vote over labelled neighbours.
//! * [`eval`] — offline evaluation protocols: train/test splits and
//!   ranking metrics (precision@N, MRR).
//! * [`search`] — similarity search for *out-of-graph* queries: a greedy
//!   best-first walk over the KNN graph that scores candidates against a
//!   free-standing query profile, avoiding a linear scan.

pub mod classify;
pub mod eval;
pub mod recommend;
pub mod search;

pub use classify::{accuracy, KnnClassifier, Vote};
pub use eval::{holdout_last_per_user, holdout_random, mean_reciprocal_rank, precision_at, Split};
pub use recommend::{hit_rate, Recommendation, Recommender};
pub use search::{GraphSearcher, ProfileMetric, QueryProfile, SearchResult};
