//! Incrementally maintained reverse adjacency.
//!
//! [`KnnGraph::reverse`] materialises in-neighbour lists once, which is
//! the right shape for batch algorithms. The online engine instead needs
//! the invariant *`u ∈ incoming(v)` ⇔ `v ∈ knn_u`* kept live across
//! thousands of single-edge mutations: when a user's profile changes,
//! every user currently pointing *at* it holds a stale similarity and must
//! be visited (the Debatty-style propagation step). This module provides
//! that as hash-set rows with O(1) edge add/remove.

use kiff_collections::FxHashSet;
use kiff_dataset::UserId;

use crate::knn::KnnGraph;

/// Live in-neighbour sets: `incoming(v)` holds every `u` with `v ∈ knn_u`.
#[derive(Debug, Clone, Default)]
pub struct ReverseAdjacency {
    incoming: Vec<FxHashSet<UserId>>,
}

impl ReverseAdjacency {
    /// Empty sets for `n` users.
    pub fn new(n: usize) -> Self {
        Self {
            incoming: vec![FxHashSet::default(); n],
        }
    }

    /// Builds the live sets matching a snapshot graph.
    pub fn from_graph(graph: &KnnGraph) -> Self {
        let mut rev = Self::new(graph.num_users());
        for u in 0..graph.num_users() as UserId {
            for n in graph.neighbors(u) {
                rev.add(u, n.id);
            }
        }
        rev
    }

    /// Number of users covered.
    pub fn num_users(&self) -> usize {
        self.incoming.len()
    }

    /// Appends an isolated user, returning its id.
    pub fn push_user(&mut self) -> UserId {
        self.incoming.push(FxHashSet::default());
        (self.incoming.len() - 1) as UserId
    }

    /// Records the directed KNN edge `u → v`.
    pub fn add(&mut self, u: UserId, v: UserId) {
        self.incoming[v as usize].insert(u);
    }

    /// Retracts the directed KNN edge `u → v`; returns whether it existed.
    pub fn remove(&mut self, u: UserId, v: UserId) -> bool {
        self.incoming[v as usize].remove(&u)
    }

    /// The users whose neighbourhoods contain `v` (unordered).
    pub fn in_neighbors(&self, v: UserId) -> impl Iterator<Item = UserId> + '_ {
        self.incoming[v as usize].iter().copied()
    }

    /// `|{u : v ∈ knn_u}|`.
    pub fn in_degree(&self, v: UserId) -> usize {
        self.incoming[v as usize].len()
    }

    /// Whether `u → v` is recorded.
    pub fn contains(&self, u: UserId, v: UserId) -> bool {
        self.incoming[v as usize].contains(&u)
    }

    /// Takes `u`'s in-neighbour set out of the structure by swapping the
    /// last row into its place (the caller owns the re-indexing of the
    /// displaced row). Building block of shard migration.
    pub fn swap_remove_row(&mut self, u: UserId) -> FxHashSet<UserId> {
        self.incoming.swap_remove(u as usize)
    }

    /// Appends a pre-built in-neighbour row, returning its id. The inverse
    /// of [`ReverseAdjacency::swap_remove_row`].
    pub fn push_row(&mut self, row: FxHashSet<UserId>) -> UserId {
        self.incoming.push(row);
        (self.incoming.len() - 1) as UserId
    }
}

/// Reverse adjacency for one *shard* of users: rows are indexed by the
/// shard's dense local slot, contents are **global** user ids.
///
/// The sharded online engine partitions users across engines, and the
/// invariant *`u ∈ incoming(v)` ⇔ `v ∈ knn_u`* crosses that partition:
/// the owner of edge `u → v` lives on `shard(u)` while `incoming(v)`
/// lives on `shard(v)`. Each shard keeps a `ShardReverse` covering only
/// its owned targets; edge edits whose target lives elsewhere are routed
/// to the owning shard as asynchronous messages and applied there. The
/// source ids stay global because the pointing user can be anywhere.
#[derive(Debug, Clone, Default)]
pub struct ShardReverse {
    /// Row index = local slot, contents = global source ids; the slot/id
    /// asymmetry is exactly what distinguishes this from the plain
    /// [`ReverseAdjacency`] it delegates to.
    rows: ReverseAdjacency,
}

impl ShardReverse {
    /// Empty in-neighbour sets for `slots` locally-owned users.
    pub fn new(slots: usize) -> Self {
        Self {
            rows: ReverseAdjacency::new(slots),
        }
    }

    /// Number of locally-owned slots.
    pub fn num_slots(&self) -> usize {
        self.rows.num_users()
    }

    /// Appends a slot for a newly-assigned user, returning its local index.
    pub fn push_slot(&mut self) -> usize {
        self.rows.push_user() as usize
    }

    /// Records the KNN edge `source → (local) target`.
    pub fn add(&mut self, target_slot: usize, source: UserId) {
        self.rows.add(source, target_slot as UserId);
    }

    /// Retracts the KNN edge `source → (local) target`; returns whether it
    /// was recorded.
    pub fn remove(&mut self, target_slot: usize, source: UserId) -> bool {
        self.rows.remove(source, target_slot as UserId)
    }

    /// The global ids of users whose neighbourhoods contain the local
    /// target (unordered).
    pub fn in_neighbors(&self, target_slot: usize) -> impl Iterator<Item = UserId> + '_ {
        self.rows.in_neighbors(target_slot as UserId)
    }

    /// In-degree of the local target.
    pub fn in_degree(&self, target_slot: usize) -> usize {
        self.rows.in_degree(target_slot as UserId)
    }

    /// Whether `source → (local) target` is recorded.
    pub fn contains(&self, target_slot: usize, source: UserId) -> bool {
        self.rows.contains(source, target_slot as UserId)
    }

    /// Detaches the in-neighbour row of the local target, swapping the
    /// shard's last slot into its place — the shard-migration primitive.
    /// The caller must re-index whichever user occupied the last slot.
    pub fn detach_slot(&mut self, target_slot: usize) -> FxHashSet<UserId> {
        self.rows.swap_remove_row(target_slot as UserId)
    }

    /// Attaches a detached in-neighbour row as a new local slot, returning
    /// its index. The inverse of [`ShardReverse::detach_slot`], applied on
    /// the migration's destination shard.
    pub fn attach_slot(&mut self, row: FxHashSet<UserId>) -> usize {
        self.rows.push_row(row) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::Neighbor;

    #[test]
    fn add_remove_round_trip() {
        let mut rev = ReverseAdjacency::new(3);
        rev.add(0, 2);
        rev.add(1, 2);
        assert_eq!(rev.in_degree(2), 2);
        assert!(rev.contains(0, 2));
        assert!(rev.remove(0, 2));
        assert!(!rev.remove(0, 2));
        assert_eq!(rev.in_degree(2), 1);
        let ins: Vec<u32> = rev.in_neighbors(2).collect();
        assert_eq!(ins, vec![1]);
    }

    #[test]
    fn from_graph_matches_batch_reverse() {
        let g = KnnGraph::from_neighbors(
            2,
            vec![
                vec![Neighbor { id: 1, sim: 0.9 }, Neighbor { id: 2, sim: 0.5 }],
                vec![Neighbor { id: 2, sim: 0.8 }],
                vec![],
            ],
        );
        let rev = ReverseAdjacency::from_graph(&g);
        let batch = g.reverse();
        for v in 0..3u32 {
            let mut live: Vec<u32> = rev.in_neighbors(v).collect();
            live.sort_unstable();
            assert_eq!(live, batch[v as usize], "user {v}");
        }
    }

    #[test]
    fn shard_reverse_round_trip() {
        let mut rev = ShardReverse::new(2);
        assert_eq!(rev.num_slots(), 2);
        rev.add(0, 7);
        rev.add(0, 1000); // sources are global ids, unbounded by slot count
        rev.add(1, 7);
        assert_eq!(rev.in_degree(0), 2);
        assert!(rev.contains(0, 1000));
        assert!(rev.remove(0, 7));
        assert!(!rev.remove(0, 7), "double retract reports absence");
        let ins: Vec<u32> = rev.in_neighbors(0).collect();
        assert_eq!(ins, vec![1000]);
        assert_eq!(rev.push_slot(), 2);
        rev.add(2, 3);
        assert_eq!(rev.in_degree(2), 1);
    }

    #[test]
    fn detach_attach_round_trip() {
        let mut rev = ShardReverse::new(3);
        rev.add(0, 10);
        rev.add(1, 11);
        rev.add(1, 12);
        rev.add(2, 13);
        // Detaching slot 0 swaps the last slot (2) into its place.
        let row = rev.detach_slot(0);
        let mut sources: Vec<u32> = row.iter().copied().collect();
        sources.sort_unstable();
        assert_eq!(sources, vec![10]);
        assert_eq!(rev.num_slots(), 2);
        assert!(rev.contains(0, 13), "last slot swapped into the hole");
        assert!(rev.contains(1, 11));
        // Attaching on another shard restores the row verbatim.
        let mut dest = ShardReverse::new(1);
        let slot = dest.attach_slot(row);
        assert_eq!(slot, 1);
        assert!(dest.contains(1, 10));
        assert_eq!(dest.in_degree(1), 1);
    }

    #[test]
    fn push_user_extends() {
        let mut rev = ReverseAdjacency::new(1);
        assert_eq!(rev.push_user(), 1);
        rev.add(1, 0);
        assert_eq!(rev.in_degree(0), 1);
        assert_eq!(rev.num_users(), 2);
    }
}
