//! User-based collaborative filtering over a KNN graph.
//!
//! "In a movie rating database, nodes are users, and each user is
//! associated with the movies (items) she has already rated" (§I). Once
//! the KNN graph connects each user to her most similar peers, two
//! classic primitives follow:
//!
//! * **Top-N recommendation** — rank the items the user has *not* rated
//!   by the similarity-weighted enthusiasm of her neighbours
//!   ([`Recommender::recommend`]).
//! * **Rating prediction** — estimate `ρ(u, i)` as the similarity-weighted
//!   mean of the neighbours' ratings of `i`
//!   ([`Recommender::predict_rating`]).
//!
//! [`hit_rate`] evaluates top-N quality with the standard leave-one-out
//! protocol, so graph quality (recall) can be traced through to
//! application quality.

use std::sync::Arc;

use kiff_collections::FxHashMap;
use kiff_core::KiffError;
use kiff_dataset::{Dataset, ItemId, UserId};
use kiff_graph::KnnGraph;
use kiff_online::ReadView;

/// One recommended item with its aggregation score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recommendation {
    /// The recommended item.
    pub item: ItemId,
    /// Similarity-weighted aggregate score (higher is better; not a
    /// rating prediction — use [`Recommender::predict_rating`] for that).
    pub score: f64,
}

/// A user-based collaborative-filtering recommender over `(dataset,
/// graph)`.
///
/// Owns `Arc` snapshots of both sides, so one can be built per request
/// from a live engine's [`graph()`](kiff_graph::KnnGraph) snapshot
/// without lifetime gymnastics — the shape the `kiff-serve` daemon
/// needs. Cloning is cheap (two `Arc` bumps).
///
/// ```
/// use std::sync::Arc;
/// use kiff_apps::Recommender;
/// use kiff_core::kiff_knn;
/// use kiff_dataset::dataset::figure2_toy;
///
/// let ds = Arc::new(figure2_toy());
/// let graph = Arc::new(kiff_knn(&ds, 1));
/// let rec = Recommender::new(ds, graph).unwrap();
/// // Alice's neighbour Bob likes cheese (item 2), which Alice lacks.
/// assert_eq!(rec.recommend(0, 5)[0].item, 2);
/// ```
#[derive(Debug, Clone)]
pub struct Recommender {
    dataset: Arc<Dataset>,
    graph: Arc<KnnGraph>,
}

impl Recommender {
    /// Wraps a dataset and a KNN graph built over its users, or
    /// [`KiffError::Mismatch`] when they disagree on the user count.
    pub fn new(dataset: Arc<Dataset>, graph: Arc<KnnGraph>) -> Result<Self, KiffError> {
        if dataset.num_users() != graph.num_users() {
            return Err(KiffError::Mismatch {
                detail: format!(
                    "graph has {} users, dataset has {}",
                    graph.num_users(),
                    dataset.num_users()
                ),
            });
        }
        Ok(Self { dataset, graph })
    }

    /// Builds over an engine's published [`ReadView`]: two `Arc` bumps,
    /// no copies, no engine lock — the serving daemon's per-request
    /// path. A view is captured between mutations, so its graph and
    /// dataset always agree on the user count and this cannot fail.
    pub fn from_view(view: &ReadView) -> Self {
        Self::new(Arc::clone(&view.dataset), Arc::clone(&view.graph))
            .expect("a ReadView is batch-consistent by construction")
    }

    /// Pre-PR-7 borrowing constructor, kept as a migration shim: clones
    /// both sides into fresh `Arc`s (an `O(|E|)` copy per call).
    ///
    /// # Panics
    /// If the graph was built over a different number of users.
    #[doc(hidden)]
    #[deprecated(note = "build over Arc snapshots via Recommender::new")]
    pub fn from_refs(dataset: &Dataset, graph: &KnnGraph) -> Self {
        Self::new(Arc::new(dataset.clone()), Arc::new(graph.clone()))
            .expect("graph and dataset disagree on |U|")
    }

    /// Bounds-checked [`Recommender::recommend`]: errors on an unknown
    /// user instead of panicking — the daemon's request path.
    pub fn try_recommend(&self, u: UserId, n: usize) -> Result<Vec<Recommendation>, KiffError> {
        self.check_user(u)?;
        Ok(self.recommend(u, n))
    }

    /// Bounds-checked [`Recommender::predict_rating`]: errors on an
    /// unknown user or item; `Ok(None)` still means "no neighbour with
    /// positive similarity rated the item".
    pub fn try_predict(&self, u: UserId, i: ItemId) -> Result<Option<f64>, KiffError> {
        self.check_user(u)?;
        self.check_item(i)?;
        Ok(self.predict_rating(u, i))
    }

    /// Bounds-checked [`Recommender::audience`]: errors on an unknown
    /// item instead of silently returning an empty ranking.
    pub fn try_audience(&self, i: ItemId, n: usize) -> Result<Vec<(UserId, f64)>, KiffError> {
        self.check_item(i)?;
        Ok(self.audience(i, n))
    }

    fn check_user(&self, u: UserId) -> Result<(), KiffError> {
        if (u as usize) < self.dataset.num_users() {
            Ok(())
        } else {
            Err(KiffError::UnknownUser {
                user: u,
                num_users: self.dataset.num_users(),
            })
        }
    }

    fn check_item(&self, i: ItemId) -> Result<(), KiffError> {
        if (i as usize) < self.dataset.num_items() {
            Ok(())
        } else {
            Err(KiffError::UnknownItem {
                item: i,
                num_items: self.dataset.num_items(),
            })
        }
    }

    /// Top-`n` items for `u`: items rated by `u`'s neighbours but not by
    /// `u`, scored by `Σ sim(u, v) · ρ(v, i)` over the neighbours `v`
    /// that rated `i`. Ties break towards the smaller item id, so results
    /// are deterministic.
    pub fn recommend(&self, u: UserId, n: usize) -> Vec<Recommendation> {
        let mut scores: FxHashMap<ItemId, f64> = FxHashMap::default();
        let own = self.dataset.user_profile(u);
        for neighbor in self.graph.neighbors(u) {
            if neighbor.sim <= 0.0 {
                continue;
            }
            for (item, rating) in self.dataset.user_profile(neighbor.id).iter() {
                if own.rating(item).is_none() {
                    *scores.entry(item).or_insert(0.0) += neighbor.sim * f64::from(rating);
                }
            }
        }
        let mut ranked: Vec<Recommendation> = scores
            .into_iter()
            .map(|(item, score)| Recommendation { item, score })
            .collect();
        ranked.sort_unstable_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.item.cmp(&b.item))
        });
        ranked.truncate(n);
        ranked
    }

    /// Predicted rating of `i` by `u`: the similarity-weighted mean of
    /// the neighbours' ratings of `i`. `None` when no neighbour with
    /// positive similarity rated `i`.
    pub fn predict_rating(&self, u: UserId, i: ItemId) -> Option<f64> {
        let mut num = 0.0;
        let mut den = 0.0;
        for neighbor in self.graph.neighbors(u) {
            if neighbor.sim <= 0.0 {
                continue;
            }
            if let Some(r) = self.dataset.user_profile(neighbor.id).rating(i) {
                num += neighbor.sim * f64::from(r);
                den += neighbor.sim;
            }
        }
        (den > 0.0).then(|| num / den)
    }

    /// The audience of item `i`: the top-`n` users most likely to
    /// appreciate it, ranked by the similarity-weighted enthusiasm of
    /// their neighbours for `i`, excluding users who already rated it.
    ///
    /// This is the *reversed CF* query of Park et al. (cited as \[6\] by
    /// the paper): instead of asking "what should user u see?", ask
    /// "who should see item i?" — the primitive behind push campaigns
    /// and cold-start item seeding. It exploits the same KNN graph
    /// through its reverse edges.
    pub fn audience(&self, i: ItemId, n: usize) -> Vec<(UserId, f64)> {
        let raters = self.dataset.item_profile(i);
        let mut scores: FxHashMap<UserId, f64> = FxHashMap::default();
        // Reverse edges: a rater v of i boosts every user u that lists v
        // as a neighbour.
        for u in 0..self.dataset.num_users() as u32 {
            if self.dataset.user_profile(u).rating(i).is_some() {
                continue;
            }
            for neighbor in self.graph.neighbors(u) {
                if neighbor.sim <= 0.0 {
                    continue;
                }
                if let Some(r) = raters.rating(neighbor.id) {
                    // `raters` is the item profile: ids are users, the
                    // rating is v's rating of i.
                    *scores.entry(u).or_insert(0.0) += neighbor.sim * f64::from(r);
                }
            }
        }
        let mut ranked: Vec<(UserId, f64)> = scores.into_iter().collect();
        ranked.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        ranked.truncate(n);
        ranked
    }

    /// Fraction of the item space reachable through recommendations:
    /// distinct items recommended in anyone's top-`n`, over `|I|`.
    /// A catalogue-coverage diagnostic for the demo binaries.
    pub fn coverage(&self, n: usize) -> f64 {
        let mut seen: Vec<bool> = vec![false; self.dataset.num_items()];
        for u in 0..self.dataset.num_users() as u32 {
            for rec in self.recommend(u, n) {
                seen[rec.item as usize] = true;
            }
        }
        if self.dataset.num_items() == 0 {
            return 0.0;
        }
        seen.iter().filter(|&&s| s).count() as f64 / self.dataset.num_items() as f64
    }
}

/// Leave-one-out hit rate: for each held-out `(user, item)` pair — a
/// rating removed *before* the graph/dataset were built — checks whether
/// `item` appears in the user's top-`n`. Returns hits / pairs, or 0.0 on
/// an empty slice.
pub fn hit_rate(
    dataset: &Dataset,
    graph: &KnnGraph,
    held_out: &[(UserId, ItemId)],
    n: usize,
) -> f64 {
    if held_out.is_empty() {
        return 0.0;
    }
    // One-shot evaluation: the clone into owning `Arc`s is paid once for
    // the whole held-out sweep.
    let rec = Recommender::new(Arc::new(dataset.clone()), Arc::new(graph.clone()))
        .expect("graph and dataset disagree on |U|");
    let hits = held_out
        .iter()
        .filter(|&&(u, i)| rec.recommend(u, n).iter().any(|r| r.item == i))
        .count();
    hits as f64 / held_out.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::DatasetBuilder;
    use kiff_graph::{KnnGraph, Neighbor};

    fn rec_over(ds: &Dataset, graph: &KnnGraph) -> Recommender {
        Recommender::new(Arc::new(ds.clone()), Arc::new(graph.clone())).unwrap()
    }

    /// Three users: 0 and 1 near-identical, 2 disjoint. Item 3 is rated
    /// only by user 1.
    fn small() -> (Dataset, KnnGraph) {
        let mut b = DatasetBuilder::new("rec", 3, 5);
        b.add_rating(0, 0, 5.0);
        b.add_rating(0, 1, 3.0);
        b.add_rating(1, 0, 4.0);
        b.add_rating(1, 1, 3.0);
        b.add_rating(1, 3, 5.0);
        b.add_rating(2, 4, 2.0);
        let ds = b.build();
        let graph = KnnGraph::from_neighbors(
            2,
            vec![
                vec![Neighbor { id: 1, sim: 0.9 }],
                vec![Neighbor { id: 0, sim: 0.9 }],
                vec![],
            ],
        );
        (ds, graph)
    }

    #[test]
    fn recommends_unseen_neighbour_items() {
        let (ds, graph) = small();
        let rec = rec_over(&ds, &graph);
        let top = rec.recommend(0, 3);
        assert_eq!(top.len(), 1, "only item 3 is new to user 0");
        assert_eq!(top[0].item, 3);
        assert!((top[0].score - 0.9 * 5.0).abs() < 1e-12);
    }

    #[test]
    fn never_recommends_rated_items() {
        let (ds, graph) = small();
        let rec = rec_over(&ds, &graph);
        for u in 0..3 {
            let own = ds.user_profile(u);
            for r in rec.recommend(u, 10) {
                assert!(own.rating(r.item).is_none(), "user {u} item {}", r.item);
            }
        }
    }

    #[test]
    fn predicts_weighted_mean() {
        let (ds, graph) = small();
        let rec = rec_over(&ds, &graph);
        // User 0's only neighbour (sim 0.9) rated item 3 with 5.0.
        assert!((rec.predict_rating(0, 3).unwrap() - 5.0).abs() < 1e-12);
        // Nobody in user 2's (empty) neighbourhood rated anything.
        assert_eq!(rec.predict_rating(2, 0), None);
        // Item 2 was rated by no one.
        assert_eq!(rec.predict_rating(0, 2), None);
    }

    #[test]
    fn audience_is_reverse_of_recommend() {
        let (ds, graph) = small();
        let rec = rec_over(&ds, &graph);
        // Item 3 is rated only by user 1; user 0 (1's neighbour) is its
        // audience. Users 1 (already rated) and 2 (no neighbours) are not.
        let audience = rec.audience(3, 5);
        assert_eq!(audience.len(), 1);
        assert_eq!(audience[0].0, 0);
        assert!((audience[0].1 - 0.9 * 5.0).abs() < 1e-12);
        // Consistency with the forward query: user 0's top recommendation
        // is exactly that item.
        assert_eq!(rec.recommend(0, 1)[0].item, 3);
    }

    #[test]
    fn audience_of_unrated_item_is_empty() {
        let (ds, graph) = small();
        let rec = rec_over(&ds, &graph);
        assert!(rec.audience(2, 5).is_empty(), "item 2 has no raters");
    }

    #[test]
    fn isolated_user_gets_nothing() {
        let (ds, graph) = small();
        let rec = rec_over(&ds, &graph);
        assert!(rec.recommend(2, 5).is_empty());
    }

    #[test]
    fn hit_rate_counts_hits() {
        let (ds, graph) = small();
        // Item 3 is recommended to user 0; item 4 is not.
        assert_eq!(hit_rate(&ds, &graph, &[(0, 3)], 5), 1.0);
        assert_eq!(hit_rate(&ds, &graph, &[(0, 3), (0, 4)], 5), 0.5);
        assert_eq!(hit_rate(&ds, &graph, &[], 5), 0.0);
    }

    #[test]
    fn coverage_counts_distinct_items() {
        let (ds, graph) = small();
        let rec = rec_over(&ds, &graph);
        // Items 0, 1, 3 are recommendable (between users 0 and 1); 5 items
        // total. Item 3 → user 0; items 0,1 are rated by both, nothing for
        // user 1 except… user 1 already has 0,1,3; user 0 lacks 3.
        let c = rec.coverage(5);
        assert!((c - 1.0 / 5.0).abs() < 1e-12, "coverage = {c}");
    }

    #[test]
    fn rejects_mismatched_graph() {
        let (ds, _) = small();
        let graph = KnnGraph::from_neighbors(1, vec![vec![]]);
        let err = Recommender::new(Arc::new(ds), Arc::new(graph)).unwrap_err();
        assert!(matches!(err, KiffError::Mismatch { .. }));
        assert_eq!(err.exit_code(), 5);
    }

    #[test]
    fn try_variants_type_their_errors() {
        let (ds, graph) = small();
        let rec = rec_over(&ds, &graph);
        assert!(matches!(
            rec.try_recommend(99, 3).unwrap_err(),
            KiffError::UnknownUser { user: 99, .. }
        ));
        assert!(matches!(
            rec.try_predict(0, 99).unwrap_err(),
            KiffError::UnknownItem { item: 99, .. }
        ));
        assert!(matches!(
            rec.try_audience(99, 3).unwrap_err(),
            KiffError::UnknownItem { item: 99, .. }
        ));
        // In-range calls defer to the plain methods.
        assert_eq!(rec.try_recommend(0, 3).unwrap(), rec.recommend(0, 3));
        assert_eq!(rec.try_predict(0, 3).unwrap(), rec.predict_rating(0, 3));
    }

    #[test]
    fn end_to_end_with_kiff_graph() {
        use kiff_core::{Kiff, KiffConfig};
        use kiff_dataset::generators::{generate_planted, PlantedConfig};
        use kiff_similarity::WeightedCosine;

        // Planted communities: recommendations should come from the
        // user's own item block far more often than not.
        let cfg = PlantedConfig {
            affinity: 0.95,
            ..PlantedConfig::tiny("rec-e2e", 23)
        };
        let (ds, labels) = generate_planted(&cfg);
        let sim = WeightedCosine::fit(&ds);
        let graph = Kiff::new(KiffConfig::new(8)).run(&ds, &sim).graph;
        let rec = rec_over(&ds, &graph);
        let block = cfg.num_items / cfg.communities;
        let mut home = 0usize;
        let mut total = 0usize;
        for u in 0..ds.num_users() as u32 {
            for r in rec.recommend(u, 5) {
                let item_block = ((r.item as usize) / block).min(cfg.communities - 1);
                home += usize::from(item_block as u32 == labels[u as usize]);
                total += 1;
            }
        }
        assert!(total > 0);
        let ratio = home as f64 / total as f64;
        assert!(ratio > 0.8, "home-block ratio = {ratio}");
    }
}
