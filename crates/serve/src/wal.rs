//! Write-ahead log of [`Update`] events.
//!
//! Every mutation batch the daemon accepts is appended here *before* it
//! is applied to the engine, so a crash between acknowledgement and the
//! next snapshot loses nothing. The log is a sequence of segment files
//! (`wal-{first_seq:016}.log`) of self-checking records:
//!
//! ```text
//! record  = u32 payload length (LE) · u32 CRC-32 of payload (LE) · payload
//! payload = u64 seq (LE) · u8 tag · fields · [u64 batch id, commit only]
//! tag 0   = AddRating    (u32 user, u32 item, u32 f32-bits rating)
//! tag 1   = AddUser      (no fields)
//! tag 2   = RemoveRating (u32 user, u32 item)
//! ```
//!
//! Bit 7 of the tag marks the *first* record of an appended batch; bit 6
//! marks the *last* and turns the record into the batch's **commit
//! marker**, carrying the client-assigned batch id (0 when the writer
//! had none). Batches are atomic: replay applies only batches whose
//! commit marker survived — a torn tail drops the whole partial batch,
//! never a prefix of one. That matters twice over: the engine's repair
//! pass is amortised per batch, so graph state depends on where batch
//! boundaries fell ([`WalReplay::batches`] re-applies them with the
//! original boundaries, keeping recovery bit-identical to the
//! uninterrupted run); and the committed batch ids form a high-water
//! mark ([`WalReplay::batch_hwm`]) the server dedupes retried client
//! batches against — a half-written batch must not advance it, or the
//! client's retry would be wrongly dropped.
//!
//! Sequence numbers start at 1 and increase by one per update — they are
//! the global ordering the snapshots cut through (a snapshot at seq `S`
//! covers updates `1..=S`; recovery replays strictly greater). The file
//! is `sync_data`ed once per appended batch, not per record. An append
//! whose write or fsync fails leaves the in-memory sequence untouched
//! and **poisons** the log — the bytes on disk past the last committed
//! batch are unknown (an fsync error may leave them readable anyway),
//! so further appends are refused until [`Wal::reopen`] physically
//! truncates the uncommitted tail and re-probes the disk. This is the
//! mechanism behind the daemon's read-only degraded mode.
//!
//! Replay is deliberately forgiving at the tail: a record that is
//! truncated, fails its CRC, carries a malformed payload, breaks the
//! sequence run, or belongs to an uncommitted batch marks the end of the
//! log — everything before it is recovered, everything after is
//! discarded. That is exactly the state a `kill -9` mid-append leaves
//! behind.
//!
//! The `wal.append` and `wal.fsync` failpoints ([`kiff_core::fault`])
//! fire here, scoped by the WAL directory path.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use kiff_core::fault::{self, points};
use kiff_core::KiffError;
use kiff_online::Update;
use kiff_telemetry::Registry;

/// Rotate to a fresh segment once the current one exceeds this size.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 * 1024 * 1024;

/// Largest accepted record payload; anything bigger is corruption.
const MAX_PAYLOAD: u32 = 64;

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:016}.log")
}

/// Sorted list of `(first_seq, path)` for every WAL segment in `dir`
/// (empty when the directory does not exist yet).
fn segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, KiffError> {
    let mut found = Vec::new();
    if !dir.exists() {
        return Ok(found);
    }
    for entry in fs::read_dir(dir).map_err(KiffError::Io)? {
        let entry = entry.map_err(KiffError::Io)?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            found.push((seq, entry.path()));
        }
    }
    found.sort_unstable();
    Ok(found)
}

/// Decodes the fixed 8-byte frame header shared by WAL records and the
/// replication stream: `u32 payload length (LE) · u32 payload CRC-32
/// (LE)`. Returns `None` when fewer than 8 bytes remain or the length
/// exceeds `max_payload` — both read as corruption (or, on a live
/// stream, a peer speaking a different protocol).
pub(crate) fn decode_frame_header(header: &[u8], max_payload: u32) -> Option<(u32, u32)> {
    let len = u32::from_le_bytes(header.get(..4)?.try_into().ok()?);
    let crc = u32::from_le_bytes(header.get(4..8)?.try_into().ok()?);
    (len <= max_payload).then_some((len, crc))
}

/// The checked record starting at `bytes[at..]`: decodes the header via
/// [`decode_frame_header`], bounds-checks the payload, and verifies its
/// CRC. Returns the payload slice and the total encoded record length,
/// or `None` for any structural failure (the caller treats the rest of
/// the buffer as a crash tail).
fn checked_record(bytes: &[u8], at: usize) -> Option<(&[u8], usize)> {
    let (len, crc) = decode_frame_header(bytes.get(at..)?, MAX_PAYLOAD)?;
    let payload = bytes.get(at + 8..at + 8 + len as usize)?;
    (crc32(payload) == crc).then_some((payload, 8 + len as usize))
}

/// Tag bit marking the first record of an appended batch.
const BATCH_HEAD: u8 = 0x80;
/// Tag bit marking the last record of a batch — the commit marker. The
/// payload gains a trailing u64 batch id; replay drops batches whose
/// commit marker did not survive.
const BATCH_COMMIT: u8 = 0x40;
const TAG_MASK: u8 = !(BATCH_HEAD | BATCH_COMMIT);

fn encode(seq: u64, update: &Update, batch_head: bool, commit: Option<u64>) -> Vec<u8> {
    let mut payload = Vec::with_capacity(29);
    payload.extend_from_slice(&seq.to_le_bytes());
    let mut marks = if batch_head { BATCH_HEAD } else { 0 };
    if commit.is_some() {
        marks |= BATCH_COMMIT;
    }
    match update {
        Update::AddRating { user, item, rating } => {
            payload.push(marks);
            payload.extend_from_slice(&user.to_le_bytes());
            payload.extend_from_slice(&item.to_le_bytes());
            payload.extend_from_slice(&rating.to_bits().to_le_bytes());
        }
        Update::AddUser => payload.push(1 | marks),
        Update::RemoveRating { user, item } => {
            payload.push(2 | marks);
            payload.extend_from_slice(&user.to_le_bytes());
            payload.extend_from_slice(&item.to_le_bytes());
        }
    }
    if let Some(batch_id) = commit {
        payload.extend_from_slice(&batch_id.to_le_bytes());
    }
    let mut record = Vec::with_capacity(8 + payload.len());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&crc32(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

/// One decoded record: sequence, update, batch-head flag, and — on the
/// batch's commit marker — the batch id.
fn decode_payload(payload: &[u8]) -> Option<(u64, Update, bool, Option<u64>)> {
    let seq = u64::from_le_bytes(payload.get(..8)?.try_into().ok()?);
    let raw_tag = *payload.get(8)?;
    let batch_head = raw_tag & BATCH_HEAD != 0;
    let committed = raw_tag & BATCH_COMMIT != 0;
    let tag = raw_tag & TAG_MASK;
    let mut rest = &payload[9..];
    let commit = if committed {
        if rest.len() < 8 {
            return None;
        }
        let (fields, id) = rest.split_at(rest.len() - 8);
        rest = fields;
        Some(u64::from_le_bytes(id.try_into().ok()?))
    } else {
        None
    };
    let le_u32 = |b: &[u8], at: usize| -> Option<u32> {
        Some(u32::from_le_bytes(b.get(at..at + 4)?.try_into().ok()?))
    };
    let update = match tag {
        0 if rest.len() == 12 => Update::AddRating {
            user: le_u32(rest, 0)?,
            item: le_u32(rest, 4)?,
            rating: f32::from_bits(le_u32(rest, 8)?),
        },
        1 if rest.is_empty() => Update::AddUser,
        2 if rest.len() == 8 => Update::RemoveRating {
            user: le_u32(rest, 0)?,
            item: le_u32(rest, 4)?,
        },
        _ => return None,
    };
    Some((seq, update, batch_head, commit))
}

/// Length of the *committed* record prefix of a segment: structurally
/// valid records up to and including the last surviving batch-commit
/// marker. Records of a batch whose commit never made it to disk are
/// part of the discarded tail.
fn committed_len(bytes: &[u8]) -> usize {
    let mut at = 0usize;
    let mut committed = 0usize;
    while at < bytes.len() {
        let Some((payload, advance)) = checked_record(bytes, at) else {
            break;
        };
        let Some((_, _, _, commit)) = decode_payload(payload) else {
            break;
        };
        at += advance;
        if commit.is_some() {
            committed = at;
        }
    }
    committed
}

/// The outcome of scanning a WAL directory.
#[derive(Debug)]
pub struct WalReplay {
    /// Recovered `(seq, update, batch_head)` triples with
    /// `seq > after_seq`, in order, restricted to *committed* batches.
    /// `batch_head` marks the first record of each appended batch.
    pub updates: Vec<(u64, Update, bool)>,
    /// The sequence number the next appended update will carry — the
    /// last committed seq plus one, so a dropped partial batch's
    /// numbers are reused.
    pub next_seq: u64,
    /// Whether an invalid record or an uncommitted batch cut the scan
    /// short (crash tail).
    pub truncated: bool,
    /// Highest client-assigned batch id among *all* committed batches
    /// scanned (not just those past `after_seq`); 0 when none carried
    /// one. The server's double-apply guard for retried client batches.
    pub batch_hwm: u64,
    /// Client-assigned batch id of each recovered batch, aligned with
    /// [`WalReplay::batches`] (0 when the writer had none). Replication
    /// catch-up re-streams these so a replica's dedup hwm tracks the
    /// primary's exactly.
    pub batch_ids: Vec<u64>,
}

impl WalReplay {
    /// The recovered updates regrouped into their original append
    /// batches, in order. Re-applying these batch-by-batch reproduces
    /// the uninterrupted engine exactly — the repair pass is amortised
    /// per batch, so boundaries are state, not just framing.
    pub fn batches(self) -> Vec<Vec<Update>> {
        self.batches_with_ids()
            .into_iter()
            .map(|(_, _, updates)| updates)
            .collect()
    }

    /// Like [`WalReplay::batches`], but each batch keeps its identity:
    /// `(first_seq, batch_id, updates)`. The replication stream sends
    /// exactly these triples during catch-up, so a replica applies them
    /// under the same sequence numbers and dedup ids as the original
    /// client writes.
    pub fn batches_with_ids(self) -> Vec<(u64, u64, Vec<Update>)> {
        let ids = self.batch_ids;
        let mut batches: Vec<(u64, u64, Vec<Update>)> = Vec::new();
        for (seq, update, head) in self.updates {
            if head || batches.is_empty() {
                let id = ids.get(batches.len()).copied().unwrap_or(0);
                batches.push((seq, id, Vec::new()));
            }
            batches.last_mut().expect("just pushed").2.push(update);
        }
        batches
    }
}

/// An appendable write-ahead log rooted at a directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    ctx: String,
    file: File,
    segment_len: u64,
    segment_bytes: u64,
    next_seq: u64,
    poisoned: bool,
    telemetry: Registry,
}

impl Wal {
    /// Opens (or starts) the log in `dir`, appending to the newest
    /// segment. `next_seq` must come from a prior [`Wal::replay`] (or be
    /// 1 for a fresh directory). The uncommitted tail left by a crash —
    /// torn records *and* whole batches missing their commit marker —
    /// is truncated away first, so appended records always follow the
    /// last committed one.
    pub fn open(dir: &Path, next_seq: u64, telemetry: Registry) -> Result<Self, KiffError> {
        fs::create_dir_all(dir).map_err(KiffError::Io)?;
        let segments = segments(dir)?;
        let path = match segments.last() {
            Some((first, path)) if *first <= next_seq => path.clone(),
            _ => dir.join(segment_name(next_seq)),
        };
        if let Ok(bytes) = fs::read(&path) {
            let keep = committed_len(&bytes);
            if keep < bytes.len() {
                let f = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(KiffError::Io)?;
                f.set_len(keep as u64).map_err(KiffError::Io)?;
                f.sync_data().map_err(KiffError::Io)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(KiffError::Io)?;
        let segment_len = file.metadata().map_err(KiffError::Io)?.len();
        let wal = Self {
            dir: dir.to_path_buf(),
            ctx: dir.to_string_lossy().into_owned(),
            file,
            segment_len,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            next_seq,
            poisoned: false,
            telemetry,
        };
        wal.update_segment_gauge()?;
        Ok(wal)
    }

    /// Overrides the segment rotation threshold (tests use tiny ones).
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(1);
        self
    }

    /// The sequence number the next appended update will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Whether a failed append has poisoned the log (see [`Wal::reopen`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Appends `updates` as one atomic batch — consecutive records whose
    /// last carries the commit marker and `batch_id` (0 = no client id)
    /// — and flushes them with a single `sync_data`. Returns the
    /// sequence number of the last appended update.
    ///
    /// On failure nothing logical changes: the in-memory sequence stays
    /// put, the half-written bytes carry no commit marker (replay and
    /// reopen discard them), and the log is poisoned until a successful
    /// [`Wal::reopen`].
    pub fn append_batch(&mut self, updates: &[Update], batch_id: u64) -> Result<u64, KiffError> {
        if updates.is_empty() {
            return Ok(self.next_seq.saturating_sub(1));
        }
        if self.poisoned {
            return Err(KiffError::Io(std::io::Error::other(
                "wal is poisoned by a failed append; reopen required",
            )));
        }
        if self.segment_len >= self.segment_bytes {
            self.rotate()?;
        }
        // Build the whole batch before touching any state, so a failure
        // below leaves `next_seq` ready to reuse the same numbers.
        let mut buf = Vec::with_capacity(updates.len() * 37);
        let last = updates.len() - 1;
        for (i, update) in updates.iter().enumerate() {
            let commit = (i == last).then_some(batch_id);
            buf.extend_from_slice(&encode(self.next_seq + i as u64, update, i == 0, commit));
        }
        let result = fault::check_ctx(points::WAL_APPEND, &self.ctx)
            .and_then(|()| self.file.write_all(&buf).map_err(KiffError::Io))
            .and_then(|()| fault::check_ctx(points::WAL_FSYNC, &self.ctx))
            .and_then(|()| self.file.sync_data().map_err(KiffError::Io));
        if let Err(e) = result {
            self.poisoned = true;
            self.telemetry.counter("wal.append_errors").incr();
            return Err(e);
        }
        self.next_seq += updates.len() as u64;
        self.segment_len += buf.len() as u64;
        self.telemetry
            .counter("wal.appends")
            .add(updates.len() as u64);
        self.telemetry.counter("wal.fsyncs").incr();
        Ok(self.next_seq - 1)
    }

    /// Heals a poisoned log: physically truncates the segment back to
    /// the committed length, re-probes the disk with an fsync, and
    /// reopens the append handle. Fails (and stays poisoned) while the
    /// underlying disk — or an armed `wal.fsync` failpoint — still
    /// refuses to sync; the daemon's degraded-mode recovery loop calls
    /// this until it succeeds.
    pub fn reopen(&mut self) -> Result<(), KiffError> {
        let segments = segments(&self.dir)?;
        let path = match segments.last() {
            Some((_, path)) => path.clone(),
            None => self.dir.join(segment_name(self.next_seq)),
        };
        let f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(KiffError::Io)?;
        f.set_len(self.segment_len).map_err(KiffError::Io)?;
        fault::check_ctx(points::WAL_FSYNC, &self.ctx)?;
        f.sync_data().map_err(KiffError::Io)?;
        drop(f);
        self.file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(KiffError::Io)?;
        self.poisoned = false;
        self.telemetry.counter("wal.reopens").incr();
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), KiffError> {
        let path = self.dir.join(segment_name(self.next_seq));
        self.file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(KiffError::Io)?;
        self.segment_len = 0;
        self.update_segment_gauge()?;
        Ok(())
    }

    /// Deletes every segment whose records are all `<= through_seq`
    /// (they are covered by a snapshot). The newest segment is always
    /// kept: it holds, or will hold, the live tail.
    ///
    /// `through_seq` is clamped to the newest on-disk snapshot's
    /// sequence: a segment holding batches no snapshot covers is never
    /// deleted, no matter what the caller asks — dropping it would lose
    /// committed updates (and the batch ids that dedupe client
    /// retries). A clamped call bumps the `wal.prune_refused` counter.
    pub fn prune(&mut self, through_seq: u64) -> Result<usize, KiffError> {
        let covered = crate::snapshot::latest_snapshot(&self.dir)?.map_or(0, |(seq, _)| seq);
        let effective = through_seq.min(covered);
        if effective < through_seq {
            self.telemetry.counter("wal.prune_refused").incr();
        }
        let segments = segments(&self.dir)?;
        let mut removed = 0;
        // Segment i's records all precede segment i+1's first_seq.
        for window in segments.windows(2) {
            let (_, ref path) = window[0];
            let (next_first, _) = window[1];
            if next_first <= effective + 1 {
                fs::remove_file(path).map_err(KiffError::Io)?;
                removed += 1;
            }
        }
        self.update_segment_gauge()?;
        Ok(removed)
    }

    /// Refreshes the `wal.segments` gauge from the directory listing.
    fn update_segment_gauge(&self) -> Result<(), KiffError> {
        let n = segments(&self.dir)?.len();
        self.telemetry.gauge("wal.segments").set(n as i64);
        Ok(())
    }

    /// Scans every segment in `dir` and returns the updates of committed
    /// batches with `seq > after_seq`. Stops at the first invalid or
    /// out-of-order record and drops any trailing uncommitted batch (see
    /// the module docs); sequence numbers must form one contiguous run
    /// across segment boundaries.
    pub fn replay(
        dir: &Path,
        after_seq: u64,
        telemetry: &Registry,
    ) -> Result<WalReplay, KiffError> {
        let mut updates = Vec::new();
        let mut pending: Vec<(u64, Update, bool)> = Vec::new();
        let mut next_seq = after_seq + 1;
        let mut expected: Option<u64> = None;
        let mut batch_hwm = 0u64;
        let mut batch_ids = Vec::new();
        let mut truncated = false;

        'segments: for (_, path) in segments(dir)? {
            let mut bytes = Vec::new();
            File::open(&path)
                .and_then(|mut f| f.read_to_end(&mut bytes))
                .map_err(KiffError::Io)?;
            let mut at = 0usize;
            while at < bytes.len() {
                let Some((payload, advance)) = checked_record(&bytes, at) else {
                    truncated = true;
                    break 'segments;
                };
                let Some((seq, update, head, commit)) = decode_payload(payload) else {
                    truncated = true;
                    break 'segments;
                };
                if expected.is_some_and(|e| seq != e) {
                    truncated = true;
                    break 'segments;
                }
                if head && !pending.is_empty() {
                    // The previous batch never committed mid-log; only a
                    // failed tail truncation produces this. Nothing past
                    // it can be trusted.
                    truncated = true;
                    break 'segments;
                }
                expected = Some(seq + 1);
                at += advance;
                if seq > after_seq {
                    if seq != next_seq + updates.len() as u64 + pending.len() as u64 {
                        // A gap between the snapshot point and the log:
                        // replaying would skip updates silently.
                        return Err(KiffError::corrupt(
                            "wal",
                            format!(
                                "expected seq {}, found {seq}",
                                next_seq + updates.len() as u64 + pending.len() as u64
                            ),
                        ));
                    }
                    pending.push((seq, update, head));
                }
                if let Some(batch_id) = commit {
                    if !pending.is_empty() {
                        batch_ids.push(batch_id);
                    }
                    updates.append(&mut pending);
                    batch_hwm = batch_hwm.max(batch_id);
                }
            }
        }
        if !pending.is_empty() {
            // A batch whose commit marker never hit the disk: drop it
            // whole, so its sequence numbers get reused by the retry.
            truncated = true;
            pending.clear();
        }
        next_seq += updates.len() as u64;
        if truncated {
            telemetry.counter("wal.truncated").incr();
        }
        telemetry.counter("wal.replayed").add(updates.len() as u64);
        Ok(WalReplay {
            updates,
            next_seq,
            truncated,
            batch_hwm,
            batch_ids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_core::fault::Trigger;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kiff-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    fn add(user: u32, item: u32, rating: f32) -> Update {
        Update::AddRating { user, item, rating }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = tmp("round-trip");
        let reg = Registry::new();
        let mut wal = Wal::open(&dir, 1, reg.clone()).unwrap();
        let batch = vec![
            add(0, 1, 2.5),
            Update::AddUser,
            Update::RemoveRating { user: 0, item: 1 },
        ];
        assert_eq!(wal.append_batch(&batch, 11).unwrap(), 3);
        assert_eq!(wal.append_batch(&[add(4, 4, 1.0)], 12).unwrap(), 4);

        let replay = Wal::replay(&dir, 0, &reg).unwrap();
        assert!(!replay.truncated);
        assert_eq!(replay.next_seq, 5);
        assert_eq!(replay.batch_hwm, 12, "highest committed batch id");
        let seqs: Vec<u64> = replay.updates.iter().map(|(s, _, _)| *s).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4]);
        assert_eq!(replay.updates[0].1, batch[0]);
        assert_eq!(replay.updates[2].1, batch[2]);
        let heads: Vec<bool> = replay.updates.iter().map(|(_, _, h)| *h).collect();
        assert_eq!(heads, vec![true, false, false, true], "batch heads marked");
        assert_eq!(
            Wal::replay(&dir, 0, &reg).unwrap().batches(),
            vec![batch.clone(), vec![add(4, 4, 1.0)]],
            "replay regroups the original append batches"
        );
        assert_eq!(
            Wal::replay(&dir, 0, &reg).unwrap().batches_with_ids(),
            vec![(1, 11, batch.clone()), (4, 12, vec![add(4, 4, 1.0)])],
            "each batch keeps its first seq and client id"
        );

        // Replay after a snapshot point skips the prefix but still sees
        // every committed batch id.
        let tail = Wal::replay(&dir, 3, &reg).unwrap();
        assert_eq!(tail.updates.len(), 1);
        assert_eq!(tail.updates[0].0, 4);
        assert_eq!(tail.batch_hwm, 12);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A snapshot file covering `seq` — the contents never matter to
    /// `prune`, only the `snap-{seq}.kifs` name `latest_snapshot` sees.
    fn fake_snapshot(dir: &Path, seq: u64) {
        let ds = kiff_dataset::dataset::figure2_toy();
        let graph = kiff_graph::KnnGraph::from_neighbors(
            1,
            (0..4u32)
                .map(|u| {
                    vec![kiff_graph::Neighbor {
                        id: u ^ 1,
                        sim: 0.5,
                    }]
                })
                .collect(),
        );
        crate::snapshot::save_snapshot(dir, seq, 0, 0, &ds, &graph, None).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_replay_spans_them() {
        let dir = tmp("rotate");
        let reg = Registry::new();
        let mut wal = Wal::open(&dir, 1, reg.clone())
            .unwrap()
            .with_segment_bytes(1);
        for i in 0..5u32 {
            wal.append_batch(&[add(i, i, 1.0)], 0).unwrap();
        }
        assert!(segments(&dir).unwrap().len() >= 4, "tiny threshold rotates");
        assert_eq!(
            reg.snapshot().gauge("wal.segments"),
            Some(segments(&dir).unwrap().len() as i64),
            "rotation keeps the segment gauge fresh"
        );
        let replay = Wal::replay(&dir, 0, &reg).unwrap();
        assert_eq!(replay.updates.len(), 5);
        assert_eq!(replay.next_seq, 6);

        // No snapshot yet: pruning is refused outright, whatever the
        // caller claims is covered.
        assert_eq!(wal.prune(3).unwrap(), 0, "nothing covered, nothing pruned");
        assert_eq!(reg.snapshot().counter("wal.prune_refused"), Some(1));

        // With a snapshot at seq 3, pruning through 3 removes segments
        // fully covered by it.
        fake_snapshot(&dir, 3);
        let before = segments(&dir).unwrap().len();
        let removed = wal.prune(3).unwrap();
        assert!(removed >= 2, "removed {removed} of {before}");
        assert_eq!(
            reg.snapshot().gauge("wal.segments"),
            Some(segments(&dir).unwrap().len() as i64)
        );
        let after = Wal::replay(&dir, 3, &reg).unwrap();
        assert_eq!(after.updates.len(), 2, "tail survives pruning");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The prune safety guard, under fire: a mid-rotation append fault
    /// poisons the log, and an over-eager prune (claiming more is
    /// covered than any snapshot proves) must still keep every segment
    /// holding unsnapshotted batches — recovery after the fault loses
    /// nothing.
    #[test]
    fn prune_mid_rotation_under_append_faults_keeps_uncovered_batches() {
        let dir = tmp("prune-guard");
        let reg = Registry::new();
        let scope = dir.to_string_lossy().into_owned();
        let mut wal = Wal::open(&dir, 1, reg.clone())
            .unwrap()
            .with_segment_bytes(1);
        for i in 0..3u32 {
            wal.append_batch(&[add(i, i, 1.0)], u64::from(i) + 1)
                .unwrap();
        }
        // Snapshot covers only seq 2; seq 3 lives in WAL segments alone.
        fake_snapshot(&dir, 2);

        // The next append dies mid-rotation and poisons the log.
        fault::arm_scoped(points::WAL_APPEND, Trigger::Nth(1), scope.clone());
        assert!(wal.append_batch(&[add(3, 3, 1.0)], 4).is_err());
        assert!(wal.is_poisoned());

        // A buggy caller prunes "through seq 10". The guard clamps to
        // the snapshot boundary: batch 3 must survive.
        wal.prune(10).unwrap();
        assert_eq!(reg.snapshot().counter("wal.prune_refused"), Some(1));
        let replay = Wal::replay(&dir, 2, &reg).unwrap();
        assert_eq!(replay.updates.len(), 1, "unsnapshotted batch survives");
        assert_eq!(replay.updates[0].0, 3);
        assert_eq!(replay.batch_hwm, 3, "dedup hwm survives the prune");

        // Heal and land the faulted batch; nothing was lost.
        wal.reopen().unwrap();
        assert_eq!(wal.append_batch(&[add(3, 3, 1.0)], 4).unwrap(), 4);
        let replay = Wal::replay(&dir, 2, &reg).unwrap();
        assert_eq!(replay.updates.len(), 2);
        assert_eq!(replay.batch_hwm, 4);
        fault::disarm(points::WAL_APPEND);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_tail_drops_the_whole_uncommitted_batch() {
        let dir = tmp("corrupt");
        let reg = Registry::new();
        let mut wal = Wal::open(&dir, 1, reg.clone()).unwrap();
        wal.append_batch(&[add(7, 7, 1.0)], 1).unwrap();
        wal.append_batch(&[add(0, 0, 1.0), add(1, 1, 1.0), add(2, 2, 1.0)], 2)
            .unwrap();
        drop(wal);

        let (_, path) = segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte of the last record: its CRC fails, the
        // commit marker is lost, and the whole second batch — not just
        // its tail record — must vanish. Batches are atomic.
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        let replay = Wal::replay(&dir, 0, &reg).unwrap();
        assert!(replay.truncated);
        assert_eq!(replay.updates.len(), 1, "only the committed batch survives");
        assert_eq!(replay.next_seq, 2, "partial batch seqs are reusable");
        assert_eq!(
            replay.batch_hwm, 1,
            "uncommitted batch id does not advance hwm"
        );

        // Truncated mid-record (a torn write) behaves the same.
        bytes.truncate(n - 3);
        fs::write(&path, &bytes).unwrap();
        let replay = Wal::replay(&dir, 0, &reg).unwrap();
        assert!(replay.truncated);
        assert_eq!(replay.updates.len(), 1);

        // Reopening drops the torn tail; the retry reuses seqs 2..=4 and
        // replays cleanly.
        let mut wal = Wal::open(&dir, replay.next_seq, reg.clone()).unwrap();
        wal.append_batch(&[add(0, 0, 1.0), add(1, 1, 1.0), add(2, 2, 1.0)], 2)
            .unwrap();
        let healed = Wal::replay(&dir, 0, &reg).unwrap();
        assert!(!healed.truncated);
        assert_eq!(healed.updates.len(), 4);
        assert_eq!(healed.updates[3].0, 4);
        assert_eq!(healed.batch_hwm, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_fsync_poisons_until_reopen_and_loses_nothing() {
        let dir = tmp("poison");
        let reg = Registry::new();
        let scope = dir.to_string_lossy().into_owned();
        let mut wal = Wal::open(&dir, 1, reg.clone()).unwrap();
        wal.append_batch(&[add(0, 0, 1.0)], 1).unwrap();

        // Arm the fsync failpoint for this directory only: the append
        // writes its bytes but the sync fails, so the batch must not
        // exist logically.
        fault::arm_scoped(points::WAL_FSYNC, Trigger::Nth(1), scope.clone());
        let err = wal
            .append_batch(&[add(1, 1, 1.0), add(2, 2, 1.0)], 2)
            .unwrap_err();
        assert_eq!(err.kind(), "io");
        assert!(wal.is_poisoned());
        assert_eq!(wal.next_seq(), 2, "failed append advances nothing");

        // While poisoned, further appends are refused outright.
        assert!(wal.append_batch(&[add(3, 3, 1.0)], 3).is_err());

        // The unacknowledged batch's bytes physically landed before the
        // fsync failed, so a crash *now* would recover it — which is
        // safe: the ack was lost, the client retries under the same id,
        // and the recovered hwm dedupes the retry. (Had the bytes not
        // survived, the retry would apply instead. Either way, exactly
        // once.)
        let replay = Wal::replay(&dir, 0, &reg).unwrap();
        assert_eq!(replay.updates.len(), 3);
        assert_eq!(replay.batch_hwm, 2);

        // The live process instead heals by truncating back to what it
        // *knows* is durable; the retried batch then lands on the same
        // sequence numbers.
        wal.reopen().unwrap();
        assert!(!wal.is_poisoned());
        let replay = Wal::replay(&dir, 0, &reg).unwrap();
        assert_eq!(
            replay.updates.len(),
            1,
            "reopen discarded the unsynced tail"
        );
        assert_eq!(
            wal.append_batch(&[add(1, 1, 1.0), add(2, 2, 1.0)], 2)
                .unwrap(),
            3
        );
        let replay = Wal::replay(&dir, 0, &reg).unwrap();
        assert!(!replay.truncated);
        assert_eq!(replay.updates.len(), 3);
        assert_eq!(replay.batch_hwm, 2);
        assert_eq!(reg.snapshot().counter("wal.reopens"), Some(1));
        fault::disarm(points::WAL_FSYNC);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_stays_poisoned_while_fsync_keeps_failing() {
        let dir = tmp("stuck");
        let reg = Registry::new();
        let scope = dir.to_string_lossy().into_owned();
        let mut wal = Wal::open(&dir, 1, reg.clone()).unwrap();
        wal.append_batch(&[add(0, 0, 1.0)], 1).unwrap();

        fault::arm_scoped(points::WAL_FSYNC, Trigger::Nth(1), scope.clone());
        assert!(wal.append_batch(&[add(1, 1, 1.0)], 2).is_err());
        // The reopen probe hits the same failing disk.
        fault::arm_scoped(points::WAL_FSYNC, Trigger::Nth(1), scope.clone());
        assert!(wal.reopen().is_err());
        assert!(wal.is_poisoned());
        // Once the disk recovers, reopen heals.
        wal.reopen().unwrap();
        assert!(!wal.is_poisoned());
        assert_eq!(wal.append_batch(&[add(1, 1, 1.0)], 2).unwrap(), 2);
        fault::disarm(points::WAL_FSYNC);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_continues_the_sequence() {
        let dir = tmp("reopen");
        let reg = Registry::new();
        let mut wal = Wal::open(&dir, 1, reg.clone()).unwrap();
        wal.append_batch(&[add(0, 0, 1.0)], 0).unwrap();
        drop(wal);

        let replay = Wal::replay(&dir, 0, &reg).unwrap();
        let mut wal = Wal::open(&dir, replay.next_seq, reg.clone()).unwrap();
        assert_eq!(wal.next_seq(), 2);
        wal.append_batch(&[add(1, 1, 1.0)], 0).unwrap();
        let replay = Wal::replay(&dir, 0, &reg).unwrap();
        assert_eq!(replay.updates.len(), 2);
        assert_eq!(reg.snapshot().counter("wal.fsyncs"), Some(2));
        fs::remove_dir_all(&dir).unwrap();
    }
}
