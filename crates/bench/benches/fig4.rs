//! Bench for Fig. 4: CCDF construction over profile-size distributions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kiff_bench::datasets::bench_dataset;
use kiff_dataset::stats::{item_profile_sizes, user_profile_sizes};
use kiff_eval::Ccdf;

fn bench(c: &mut Criterion) {
    let ds = bench_dataset(11);
    let up = user_profile_sizes(&ds);
    let ip = item_profile_sizes(&ds);
    let mut group = c.benchmark_group("fig4");
    group.bench_function("ccdf_user_profiles", |b| {
        b.iter(|| black_box(Ccdf::from_observations(black_box(&up))))
    });
    group.bench_function("ccdf_item_profiles", |b| {
        b.iter(|| black_box(Ccdf::from_observations(black_box(&ip))))
    });
    let ccdf = Ccdf::from_observations(&up);
    group.bench_function("log_samples", |b| b.iter(|| black_box(ccdf.log_samples(4))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
