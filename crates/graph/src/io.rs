//! KNN graph persistence.
//!
//! Two formats:
//!
//! * **Edge-list TSV** — `user<TAB>neighbor<TAB>similarity`, one directed
//!   edge per line, `#` comments. The same shape as the SNAP-style inputs
//!   the datasets load from, so standard tooling (sort, join, gnuplot)
//!   applies directly.
//! * **JSON** — a self-describing dump including `k`, for programmatic
//!   round-trips.
//!
//! Loading validates ids and similarity values and restores the
//! per-neighbourhood ordering invariant (best first, ties by id).

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::knn::{KnnGraph, Neighbor};

/// Errors raised while reading a graph file.
#[derive(Debug)]
pub enum GraphLoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed or inconsistent line; carries the 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        message: String,
    },
}

impl fmt::Display for GraphLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphLoadError::Io(e) => write!(f, "i/o error: {e}"),
            GraphLoadError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for GraphLoadError {}

impl From<io::Error> for GraphLoadError {
    fn from(e: io::Error) -> Self {
        GraphLoadError::Io(e)
    }
}

/// Writes `graph` as an edge-list TSV.
pub fn save_edges_tsv(graph: &KnnGraph, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_edges_tsv(graph, &mut w)?;
    w.flush()
}

/// Writes `graph` as `user<TAB>neighbor<TAB>similarity` lines to `w`.
pub fn write_edges_tsv(graph: &KnnGraph, w: &mut (impl Write + ?Sized)) -> io::Result<()> {
    writeln!(
        w,
        "# kiff knn graph: k={} users={}",
        graph.k(),
        graph.num_users()
    )?;
    for u in 0..graph.num_users() as u32 {
        for n in graph.neighbors(u) {
            // 17 significant digits round-trip every f64 exactly.
            writeln!(w, "{u}\t{}\t{:.17e}", n.id, n.sim)?;
        }
    }
    Ok(())
}

/// Loads an edge-list TSV written by [`save_edges_tsv`] (or any
/// `user<TAB>neighbor<TAB>similarity` file). `num_users` fixes the graph
/// size — isolated users are legal and produce empty neighbourhoods; `k`
/// is the nominal neighbourhood bound recorded in the result.
pub fn load_edges_tsv(
    path: impl AsRef<Path>,
    num_users: usize,
    k: usize,
) -> Result<KnnGraph, GraphLoadError> {
    let reader = BufReader::new(File::open(path)?);
    let mut neighbors: Vec<Vec<Neighbor>> = vec![Vec::new(); num_users];
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut cols = trimmed.split('\t');
        let (u, v, s) = match (cols.next(), cols.next(), cols.next()) {
            (Some(u), Some(v), Some(s)) => (u, v, s),
            _ => {
                return Err(GraphLoadError::Parse {
                    line: lineno,
                    message: "expected `user<TAB>neighbor<TAB>similarity`".into(),
                })
            }
        };
        let parse_id = |raw: &str, what: &str| -> Result<u32, GraphLoadError> {
            raw.parse().map_err(|e| GraphLoadError::Parse {
                line: lineno,
                message: format!("bad {what} '{raw}': {e}"),
            })
        };
        let u = parse_id(u, "user")?;
        let v = parse_id(v, "neighbor")?;
        let sim: f64 = s.parse().map_err(|e| GraphLoadError::Parse {
            line: lineno,
            message: format!("bad similarity '{s}': {e}"),
        })?;
        if u as usize >= num_users || v as usize >= num_users {
            return Err(GraphLoadError::Parse {
                line: lineno,
                message: format!("edge ({u}, {v}) outside 0..{num_users}"),
            });
        }
        if u == v {
            return Err(GraphLoadError::Parse {
                line: lineno,
                message: format!("self-loop at user {u}"),
            });
        }
        if !sim.is_finite() || sim < 0.0 {
            return Err(GraphLoadError::Parse {
                line: lineno,
                message: format!("similarity {sim} not finite and non-negative"),
            });
        }
        neighbors[u as usize].push(Neighbor { id: v, sim });
    }
    Ok(KnnGraph::from_neighbors(k, neighbors))
}

/// Writes `graph` as JSON (`{"k": …, "neighbors": [[[id, sim], …], …]}`).
/// Hand-rolled writer: the graph crate stays serde-free, and the format
/// is small enough that a schema dependency buys nothing.
pub fn save_json(graph: &KnnGraph, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "{{\"k\":{},\"neighbors\":[", graph.k())?;
    for u in 0..graph.num_users() as u32 {
        if u > 0 {
            write!(w, ",")?;
        }
        write!(w, "[")?;
        for (pos, n) in graph.neighbors(u).iter().enumerate() {
            if pos > 0 {
                write!(w, ",")?;
            }
            write!(w, "[{},{:.17e}]", n.id, n.sim)?;
        }
        write!(w, "]")?;
    }
    writeln!(w, "]}}")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kiff-graph-io-{}-{name}", std::process::id()));
        p
    }

    fn sample() -> KnnGraph {
        KnnGraph::from_neighbors(
            2,
            vec![
                vec![
                    Neighbor {
                        id: 1,
                        sim: 0.123456789012345,
                    },
                    Neighbor { id: 2, sim: 0.5 },
                ],
                vec![Neighbor { id: 0, sim: 1.0 }],
                vec![], // isolated
            ],
        )
    }

    #[test]
    fn tsv_round_trip_is_exact() {
        let graph = sample();
        let path = tmp("roundtrip.tsv");
        save_edges_tsv(&graph, &path).unwrap();
        let loaded = load_edges_tsv(&path, 3, 2).unwrap();
        assert_eq!(graph, loaded);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn loader_restores_ordering() {
        // Shuffled input: best-first per user must be restored.
        let path = tmp("shuffled.tsv");
        std::fs::write(&path, "0\t2\t0.1\n0\t1\t0.9\n").unwrap();
        let g = load_edges_tsv(&path, 3, 2).unwrap();
        assert_eq!(g.neighbors(0)[0].id, 1);
        assert_eq!(g.neighbors(0)[1].id, 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn loader_rejects_garbage() {
        let cases = [
            ("0\t1\n", "missing column"),
            ("0\tx\t0.5\n", "bad neighbor"),
            ("0\t1\tNaN\n", "NaN similarity"),
            ("0\t1\t-0.5\n", "negative similarity"),
            ("0\t9\t0.5\n", "out of range"),
            ("1\t1\t0.5\n", "self loop"),
        ];
        for (content, what) in cases {
            let path = tmp("bad.tsv");
            std::fs::write(&path, content).unwrap();
            let r = load_edges_tsv(&path, 3, 2);
            assert!(r.is_err(), "{what} accepted");
            let msg = r.unwrap_err().to_string();
            assert!(msg.starts_with("line 1"), "{what}: {msg}");
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let path = tmp("comments.tsv");
        std::fs::write(&path, "# header\n\n0\t1\t0.5\n").unwrap();
        let g = load_edges_tsv(&path, 2, 1).unwrap();
        assert_eq!(g.num_edges(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let r = load_edges_tsv("/nonexistent/graph.tsv", 2, 1);
        assert!(matches!(r, Err(GraphLoadError::Io(_))));
    }

    #[test]
    fn json_is_valid_and_complete() {
        let graph = sample();
        let path = tmp("graph.json");
        save_json(&graph, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Deterministic output: neighbours best-first, 17-digit floats,
        // the isolated user as an empty list.
        assert_eq!(
            text.trim_end(),
            "{\"k\":2,\"neighbors\":[[[2,5.00000000000000000e-1],\
             [1,1.23456789012344997e-1]],[[0,1.00000000000000000e0]],[]]}"
        );
        std::fs::remove_file(path).ok();
    }
}
