#![warn(missing_docs)]

//! Core collection primitives shared by the KIFF workspace.
//!
//! The KIFF algorithm (Boutet et al., ICDE 2016) is dominated by a handful of
//! low-level operations: counting shared items between users, selecting the
//! top-k of a candidate stream, and building compressed sparse rows out of
//! edge streams. This crate provides small, dependency-free building blocks
//! for all of them:
//!
//! * [`hash`] — an FxHash-style fast hasher plus [`FxHashMap`]/[`FxHashSet`]
//!   aliases (the default SipHash is needlessly slow for `u32` keys).
//! * [`topk`] — a bounded max-heap used to keep the best `k` scored entries
//!   of an unbounded stream.
//! * [`radix`] — least-significant-digit radix sort for `u32` keys, the
//!   workhorse of sort-based candidate counting.
//! * [`csr`] — a compressed-sparse-row builder for bipartite adjacency.
//! * [`bitset`] — a fixed-capacity bitset for candidate deduplication.
//! * [`counter`] — multiplicity counters (hash-based, sort-based, and
//!   epoch-stamped dense).
//! * [`unionfind`] — disjoint-set forest for component analysis.

pub mod bitset;
pub mod counter;
pub mod csr;
pub mod hash;
pub mod radix;
pub mod topk;
pub mod unionfind;

pub use bitset::FixedBitSet;
pub use counter::{count_sorted_runs, count_sorted_runs_into, DenseCounter, SparseCounter};
pub use csr::{Csr, CsrBuilder};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use radix::{radix_sort_u32, radix_sort_u64};
pub use topk::BoundedTopK;
pub use unionfind::UnionFind;
