#![warn(missing_docs)]

//! Greedy KNN-graph construction baselines: NN-Descent and HyRec.
//!
//! Both baselines follow the paper's experimental setup (§IV-B):
//!
//! * **NN-Descent** (Dong, Moses, Li — WWW'11): starts from a random
//!   `k`-degree graph and iteratively joins each user's *new* neighbours
//!   against her full bidirectional neighbourhood, using new/old flags to
//!   avoid re-evaluating pairs and a pivot so each local pair is evaluated
//!   once. Run "without sampling (as in the original publication)".
//! * **HyRec** (Boutet et al., Middleware'14): per user, considers the
//!   neighbours of her current neighbours plus `r` random users (the
//!   paper's default is `r = 0`), "with the same pivot mechanism as in
//!   NN-Descent and the early termination of KIFF".
//! * **L2Knng** (Anastasiu & Karypis, CIKM'15): the cosine-specific
//!   two-phase pruning approach of §VI — an approximate graph sets per-user
//!   thresholds, then a sequential exact pass abandons pairs whose L2
//!   suffix-norm bound cannot beat them.
//!
//! Shared infrastructure: random initial graphs ([`init`]), candidate
//! deduplication, per-activity instrumentation ([`GreedyStats`]) matching
//! §IV-C so the harness can chart Figs 1/5/8 for every algorithm alike.
//!
//! Every candidate loop here is node-centric: the pivot/reference profile
//! is prepared once per batch through
//! [`kiff_similarity::Similarity::scorer`] and its candidates stream
//! through the prepared scorer (`kiff_similarity::ScoringMode::Prepared`,
//! the default); the historical per-pair path stays selectable via
//! `ScoringMode::Pairwise` and builds bit-identical graphs — the
//! comparison against KIFF measures algorithms, not scoring plumbing.

pub mod config;
pub mod hyrec;
pub mod init;
pub mod l2knng;
pub mod lsh;
pub mod nndescent;
pub mod stats;

pub use config::GreedyConfig;
pub use hyrec::HyRec;
pub use init::{random_graph, random_graph_with};
pub use l2knng::{L2Knng, L2KnngConfig, L2Stats};
pub use lsh::{Lsh, LshConfig, LshFamily, LshStats};
pub use nndescent::NnDescent;
pub use stats::GreedyStats;
