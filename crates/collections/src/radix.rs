//! Least-significant-digit radix sort for unsigned integer keys.
//!
//! The KIFF counting phase gathers, for each user, every co-rater id found in
//! the item profiles of her items and then needs multiplicities. Sorting the
//! gathered ids and run-length encoding is both cache-friendlier and faster
//! than hashing for the bursty, skewed batches this produces. An LSD radix
//! sort with 8-bit digits beats `sort_unstable` on these `u32` batches and
//! is stable, which we exploit when sorting `(count, id)` pairs packed into
//! `u64`s.

/// Sorts a `u32` slice ascending using LSD radix sort with a scratch buffer.
///
/// Skips passes whose digit is constant across the slice (common when ids are
/// small). Falls back to `sort_unstable` for tiny inputs where the counting
/// overhead dominates.
pub fn radix_sort_u32(data: &mut [u32]) {
    let mut scratch = Vec::new();
    radix_sort_u32_with(data, &mut scratch);
}

/// [`radix_sort_u32`] with a caller-owned scratch buffer (resized on
/// demand, never shrunk) — the allocation-free variant for hot loops that
/// sort many batches.
pub fn radix_sort_u32_with(data: &mut [u32], scratch: &mut Vec<u32>) {
    const SMALL: usize = 64;
    if data.len() <= SMALL {
        data.sort_unstable();
        return;
    }
    if scratch.len() < data.len() {
        scratch.resize(data.len(), 0);
    }
    let scratch = &mut scratch[..data.len()];
    let mut src_is_data = true;
    for pass in 0..4 {
        let shift = pass * 8;
        let (src, dst): (&mut [u32], &mut [u32]) = if src_is_data {
            (&mut data[..], &mut scratch[..])
        } else {
            (&mut scratch[..], &mut data[..])
        };
        let mut counts = [0usize; 256];
        for &x in src.iter() {
            counts[((x >> shift) & 0xFF) as usize] += 1;
        }
        // Digit constant for every element: nothing to move this pass.
        if counts.contains(&src.len()) {
            continue;
        }
        let mut offsets = [0usize; 256];
        let mut sum = 0;
        for (o, &c) in offsets.iter_mut().zip(counts.iter()) {
            *o = sum;
            sum += c;
        }
        for &x in src.iter() {
            let d = ((x >> shift) & 0xFF) as usize;
            dst[offsets[d]] = x;
            offsets[d] += 1;
        }
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        data.copy_from_slice(scratch);
    }
}

/// Sorts a `u64` slice ascending using LSD radix sort (8 passes of 8 bits,
/// with constant-digit passes skipped).
///
/// Used to order `(count << 32 | id)` packed pairs in a single pass over the
/// data, which is how ranked candidate sets are ordered by multiplicity.
pub fn radix_sort_u64(data: &mut [u64]) {
    const SMALL: usize = 64;
    if data.len() <= SMALL {
        data.sort_unstable();
        return;
    }
    let mut scratch = vec![0u64; data.len()];
    let mut src_is_data = true;
    for pass in 0..8 {
        let shift = pass * 8;
        let (src, dst): (&mut [u64], &mut [u64]) = if src_is_data {
            (&mut data[..], &mut scratch[..])
        } else {
            (&mut scratch[..], &mut data[..])
        };
        let mut counts = [0usize; 256];
        for &x in src.iter() {
            counts[((x >> shift) & 0xFF) as usize] += 1;
        }
        if counts.contains(&src.len()) {
            continue;
        }
        let mut offsets = [0usize; 256];
        let mut sum = 0;
        for (o, &c) in offsets.iter_mut().zip(counts.iter()) {
            *o = sum;
            sum += c;
        }
        for &x in src.iter() {
            let d = ((x >> shift) & 0xFF) as usize;
            dst[offsets[d]] = x;
            offsets[d] += 1;
        }
        src_is_data = !src_is_data;
    }
    if !src_is_data {
        data.copy_from_slice(&scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_empty_and_singleton() {
        let mut v: Vec<u32> = vec![];
        radix_sort_u32(&mut v);
        assert!(v.is_empty());
        let mut v = vec![7u32];
        radix_sort_u32(&mut v);
        assert_eq!(v, vec![7]);
    }

    #[test]
    fn sorts_small_input_via_fallback() {
        let mut v = vec![5u32, 3, 9, 1, 1, 0];
        radix_sort_u32(&mut v);
        assert_eq!(v, vec![0, 1, 1, 3, 5, 9]);
    }

    #[test]
    fn sorts_large_input_with_duplicates() {
        // Deterministic pseudo-random data exercising all four passes.
        let mut v: Vec<u32> = (0..10_000u32)
            .map(|i| i.wrapping_mul(2_654_435_761) ^ (i << 16))
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        radix_sort_u32(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn sorts_values_with_high_bits() {
        let mut v: Vec<u32> = (0..5_000)
            .map(|i| u32::MAX - (i * 7919) % 100_000)
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        radix_sort_u32(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn skips_constant_digit_passes_correctly() {
        // All values < 256: only the first pass does work.
        let mut v: Vec<u32> = (0..1000u32).map(|i| (i * 31) % 256).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        radix_sort_u32(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn sorts_u64_pairs_by_packed_key() {
        let mut v: Vec<u64> = (0..3000u64)
            .map(|i| ((i * 2_654_435_761) % 977) << 32 | (i % 541))
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        radix_sort_u64(&mut v);
        assert_eq!(v, expected);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn u32_matches_std_sort(mut v in proptest::collection::vec(any::<u32>(), 0..2000)) {
                let mut expected = v.clone();
                expected.sort_unstable();
                radix_sort_u32(&mut v);
                prop_assert_eq!(v, expected);
            }

            #[test]
            fn u64_matches_std_sort(mut v in proptest::collection::vec(any::<u64>(), 0..2000)) {
                let mut expected = v.clone();
                expected.sort_unstable();
                radix_sort_u64(&mut v);
                prop_assert_eq!(v, expected);
            }
        }
    }
}
