//! Synthetic dataset generators calibrated to the paper's evaluation data.
//!
//! The original evaluation uses four public SNAP datasets plus MovieLens-1M.
//! Those cannot be fetched in an offline environment, so this module builds
//! statistical stand-ins (see DESIGN.md §3): the generators reproduce the
//! properties KIFF's behaviour depends on — user/item counts, average
//! profile sizes, long-tailed degree distributions, rating semantics — and
//! every reported table recomputes the realised statistics rather than
//! assuming the targets.
//!
//! * [`bipartite`] — general user–item generator (Wikipedia- and
//!   Gowalla-like data, and the MovieLens family);
//! * [`coauthor`] — collaboration graphs through a preferential-attachment
//!   paper model (Arxiv- and DBLP-like data);
//! * [`movielens`] — the ML-1 stand-in of Table IX;
//! * [`planted`] — labelled planted-community data for the classification
//!   application (§I);
//! * [`presets`] — one-call calibrated configurations for the four paper
//!   datasets.

pub mod bipartite;
pub mod coauthor;
pub mod movielens;
pub mod planted;
pub mod presets;

pub use bipartite::{generate_bipartite, BipartiteConfig};
pub use coauthor::{filter_users_by_min_weight, generate_coauthorship, CoauthorConfig};
pub use movielens::movielens_like;
pub use planted::{generate_planted, PlantedConfig};
pub use presets::{paper_k, reduced_k, PaperDataset};

use rand::Rng;

/// How edge labels (ratings) are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RatingModel {
    /// Every rating is `1.0` (Wikipedia votes, unweighted co-authorship).
    Binary,
    /// Geometric counts with the given mean ≥ 1 (Gowalla visit counts,
    /// DBLP co-publication counts).
    Counts {
        /// Mean count; must be ≥ 1.
        mean: f64,
    },
    /// Star ratings on a 5-star scale (MovieLens), optionally with
    /// half-star increments as described in §V-B3.
    Stars {
        /// Allow x.5 values.
        half_steps: bool,
    },
}

impl RatingModel {
    /// Draws one rating.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        match *self {
            RatingModel::Binary => 1.0,
            RatingModel::Counts { mean } => {
                debug_assert!(mean >= 1.0);
                // Geometric with success probability 1/mean, support {1, …},
                // capped to keep weights bounded.
                let p = 1.0 / mean.max(1.0);
                let mut count = 1u32;
                while count < 1000 && rng.gen::<f64>() > p {
                    count += 1;
                }
                count as f32
            }
            RatingModel::Stars { half_steps } => {
                // Empirical MovieLens-1M star shares (1★..5★).
                const SHARES: [f64; 5] = [0.056, 0.107, 0.261, 0.349, 0.226];
                let x = rng.gen::<f64>();
                let mut acc = 0.0;
                let mut star = 5.0f32;
                for (i, &s) in SHARES.iter().enumerate() {
                    acc += s;
                    if x < acc {
                        star = (i + 1) as f32;
                        break;
                    }
                }
                if half_steps && star > 0.5 && rng.gen::<bool>() {
                    star -= 0.5;
                }
                star
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binary_is_always_one() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(RatingModel::Binary.sample(&mut rng), 1.0);
        }
    }

    #[test]
    fn counts_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = RatingModel::Counts { mean: 3.0 };
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| f64::from(model.sample(&mut rng))).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn counts_are_positive_integers() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = RatingModel::Counts { mean: 2.0 };
        for _ in 0..1000 {
            let r = model.sample(&mut rng);
            assert!(r >= 1.0 && r.fract() == 0.0);
        }
    }

    #[test]
    fn stars_are_on_grid() {
        let mut rng = StdRng::seed_from_u64(3);
        let whole = RatingModel::Stars { half_steps: false };
        for _ in 0..500 {
            let r = whole.sample(&mut rng);
            assert!((1.0..=5.0).contains(&r) && r.fract() == 0.0);
        }
        let half = RatingModel::Stars { half_steps: true };
        let mut saw_half = false;
        for _ in 0..500 {
            let r = half.sample(&mut rng);
            assert!((0.5..=5.0).contains(&r));
            assert_eq!((r * 2.0).fract(), 0.0);
            saw_half |= r.fract() != 0.0;
        }
        assert!(saw_half, "half-step ratings never produced");
    }
}
