//! Bench for Fig. 1: greedy baselines whose per-iteration time is
//! dominated by similarity computations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kiff_bench::datasets::small_bench_dataset;
use kiff_bench::runner::{run_hyrec, run_nndescent, RunOptions};

fn bench(c: &mut Criterion) {
    let ds = small_bench_dataset(10);
    let opts = RunOptions {
        k: 10,
        threads: Some(2),
        seed: 5,
    };
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("nndescent_traced", |b| {
        b.iter(|| black_box(run_nndescent(&ds, opts).per_iteration))
    });
    group.bench_function("hyrec_traced", |b| {
        b.iter(|| black_box(run_hyrec(&ds, opts).per_iteration))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
