//! Deterministic failpoint injection for the serving stack.
//!
//! Production inference stacks fail at the edges — a full disk mid-fsync,
//! a client killed mid-frame, a torn snapshot rename — and those paths
//! are exactly the ones ordinary tests never execute. This module gives
//! every layer a shared registry of **named injection points**: a call
//! site asks [`check`] whether the failpoint with its name should fire,
//! and an armed trigger answers with an injected I/O error the caller
//! propagates exactly as it would a real one. The chaos harness
//! (`tests/serve_faults.rs`), the `faults` bench experiment, and
//! `kiff serve --failpoints` all drive the same registry.
//!
//! # Injection points
//!
//! The canonical names live in [`points`]:
//!
//! | name | fired from |
//! |------|-----------|
//! | `wal.append`      | WAL record write, before bytes hit the file |
//! | `wal.fsync`       | WAL `sync_data`, incl. the reopen health probe |
//! | `snapshot.write`  | snapshot `.tmp` streaming |
//! | `snapshot.rename` | the atomic `.tmp` → final rename |
//! | `net.read`        | server-side frame read (connection killed) |
//! | `net.write`       | server-side response write (connection killed) |
//! | `repl.stream`     | primary→replica replication frame send |
//! | `repl.ack`        | replica-side replication ack write |
//! | `repl.heartbeat`  | primary heartbeat send (suppressed when fired) |
//!
//! # Triggers
//!
//! A failpoint is armed with a [`Trigger`]:
//!
//! * `always` — every check fires.
//! * `nth:N` — exactly the `N`-th check fires (one-shot).
//! * `every:N` — every `N`-th check fires.
//! * `prob:P@SEED` — each check fires with probability `P`, drawn from a
//!   seeded xorshift stream, so a given seed produces the *same* fire
//!   pattern on every run (deterministic chaos).
//!
//! # Scopes
//!
//! An armed failpoint may carry a **scope** — a substring that must occur
//! in the checking call site's context string (the WAL directory, the
//! listener address) for the trigger to be evaluated at all. Scoped
//! arming lets concurrent tests inject faults into *their* daemon
//! without perturbing a neighbour's, and lets an operator target one
//! store among many. Multiple scopes of the same name coexist.
//!
//! # Cost
//!
//! When nothing is armed, [`check`] is a single relaxed atomic load —
//! cheap enough to leave the checks compiled into release builds (the
//! same trick the telemetry registry uses for its disabled fast path).
//! Checks and fires are counted per failpoint; [`counters`] exposes them
//! for the daemon's `fault.*` telemetry instruments.
//!
//! # Arming
//!
//! Programmatic ([`arm`], [`arm_scoped`]) or via the `KIFF_FAILPOINTS`
//! environment variable ([`arm_from_env`]), whose value is a spec like
//! `wal.fsync=prob:0.01@42,snapshot.rename=nth:3` (see [`arm_from_spec`]
//! for the grammar). The registry is process-global: arming is for
//! tests, benchmarks, and drills — never default production paths.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use crate::error::KiffError;

/// Canonical failpoint names used across the serving stack.
pub mod points {
    /// WAL record write, before the bytes reach the segment file.
    pub const WAL_APPEND: &str = "wal.append";
    /// WAL `sync_data` — the per-batch durability fsync and the reopen
    /// health probe.
    pub const WAL_FSYNC: &str = "wal.fsync";
    /// Snapshot `.tmp` streaming write.
    pub const SNAPSHOT_WRITE: &str = "snapshot.write";
    /// The atomic `.tmp` → final snapshot rename.
    pub const SNAPSHOT_RENAME: &str = "snapshot.rename";
    /// Server-side frame read; firing kills that connection.
    pub const NET_READ: &str = "net.read";
    /// Server-side response write; firing kills that connection.
    pub const NET_WRITE: &str = "net.write";
    /// Replication frame send on the primary → replica stream; firing
    /// tears that replication connection (the replica re-handshakes).
    pub const REPL_STREAM: &str = "repl.stream";
    /// Replica-side ack write; firing loses the ack and makes the
    /// primary treat the replica as lagging or dead.
    pub const REPL_ACK: &str = "repl.ack";
    /// Primary heartbeat send; firing suppresses heartbeats so replicas
    /// see a silent primary and start failure detection.
    pub const REPL_HEARTBEAT: &str = "repl.heartbeat";
}

/// When an armed failpoint fires.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Never fires (keeps counters readable after a disarm).
    Off,
    /// Every check fires.
    Always,
    /// Exactly the `n`-th check (1-based) fires, once.
    Nth(u64),
    /// Every `n`-th check fires.
    Every(u64),
    /// Each check fires with probability `p`, drawn from a seeded
    /// deterministic stream.
    Prob {
        /// Fire probability in `[0, 1]`.
        p: f64,
        /// Stream seed; the same seed reproduces the same fire pattern.
        seed: u64,
    },
}

/// One armed entry: a trigger plus its (optional) scope and counters.
#[derive(Debug)]
struct Entry {
    trigger: Trigger,
    scope: Option<String>,
    checks: u64,
    fires: u64,
    rng: u64,
}

/// Check/fire counts of one failpoint name, aggregated over its scopes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCounter {
    /// The failpoint name.
    pub name: String,
    /// Trigger evaluations since the failpoint was first armed.
    pub checks: u64,
    /// How many of those checks fired.
    pub fires: u64,
}

/// Number of entries with a live (non-`Off`) trigger; the fast path.
static ARMED: AtomicUsize = AtomicUsize::new(0);

fn table() -> &'static Mutex<HashMap<String, Vec<Entry>>> {
    static TABLE: OnceLock<Mutex<HashMap<String, Vec<Entry>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_table() -> MutexGuard<'static, HashMap<String, Vec<Entry>>> {
    // A panic while holding the registry lock (impossible in the code
    // below, but cheap to defend) must not wedge every future check.
    table().lock().unwrap_or_else(PoisonError::into_inner)
}

/// One step of the shared xorshift64* PRNG; also used by the
/// self-healing client's deterministic backoff jitter.
#[inline]
pub fn xorshift64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// FNV-1a over the name, to decorrelate per-failpoint `prob` streams
/// that share a seed.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn seed_rng(trigger: &Trigger, name: &str) -> u64 {
    match trigger {
        Trigger::Prob { seed, .. } => (seed ^ name_hash(name)) | 1,
        _ => 1,
    }
}

/// Arms `name` globally (no scope) with `trigger`, replacing any
/// previous unscoped entry. Counters of a re-armed entry restart.
pub fn arm(name: &str, trigger: Trigger) {
    arm_entry(name, trigger, None);
}

/// Arms `name` with `trigger`, firing only for checks whose context
/// string contains `scope` (e.g. a store directory or listener address).
/// Entries with different scopes coexist; re-arming an existing scope
/// replaces it.
pub fn arm_scoped(name: &str, trigger: Trigger, scope: impl Into<String>) {
    arm_entry(name, trigger, Some(scope.into()));
}

fn arm_entry(name: &str, trigger: Trigger, scope: Option<String>) {
    let mut table = lock_table();
    let entries = table.entry(name.to_string()).or_default();
    let rng = seed_rng(&trigger, name);
    let live = trigger != Trigger::Off;
    if let Some(entry) = entries.iter_mut().find(|e| e.scope == scope) {
        let was_live = entry.trigger != Trigger::Off;
        entry.trigger = trigger;
        entry.rng = rng;
        entry.checks = 0;
        entry.fires = 0;
        match (was_live, live) {
            (false, true) => {
                ARMED.fetch_add(1, Ordering::SeqCst);
            }
            (true, false) => {
                ARMED.fetch_sub(1, Ordering::SeqCst);
            }
            _ => {}
        }
    } else {
        entries.push(Entry {
            trigger,
            scope,
            checks: 0,
            fires: 0,
            rng,
        });
        if live {
            ARMED.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Disarms every entry of `name` (all scopes). Counters stay readable
/// via [`counters`] until [`reset`].
pub fn disarm(name: &str) {
    let mut table = lock_table();
    if let Some(entries) = table.get_mut(name) {
        for entry in entries.iter_mut() {
            if entry.trigger != Trigger::Off {
                entry.trigger = Trigger::Off;
                ARMED.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Disarms every failpoint (counters stay readable).
pub fn disarm_all() {
    let mut table = lock_table();
    for entries in table.values_mut() {
        for entry in entries.iter_mut() {
            if entry.trigger != Trigger::Off {
                entry.trigger = Trigger::Off;
                ARMED.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Disarms everything and clears all counters.
pub fn reset() {
    let mut table = lock_table();
    for entries in table.values_mut() {
        for entry in entries.iter_mut() {
            if entry.trigger != Trigger::Off {
                ARMED.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
    table.clear();
}

/// Names currently armed with a live trigger.
pub fn armed() -> Vec<String> {
    let table = lock_table();
    let mut names: Vec<String> = table
        .iter()
        .filter(|(_, entries)| entries.iter().any(|e| e.trigger != Trigger::Off))
        .map(|(name, _)| name.clone())
        .collect();
    names.sort_unstable();
    names
}

/// Per-failpoint check/fire counters (aggregated over scopes), sorted
/// by name — the source of the daemon's `fault.*` instruments.
pub fn counters() -> Vec<FaultCounter> {
    let table = lock_table();
    let mut out: Vec<FaultCounter> = table
        .iter()
        .map(|(name, entries)| FaultCounter {
            name: name.clone(),
            checks: entries.iter().map(|e| e.checks).sum(),
            fires: entries.iter().map(|e| e.fires).sum(),
        })
        .collect();
    out.sort_unstable_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Checks the unscoped failpoint `name`; see [`check_ctx`].
pub fn check(name: &str) -> Result<(), KiffError> {
    check_ctx(name, "")
}

/// Asks whether failpoint `name` should fire for a call site whose
/// context string is `ctx` (a store directory, a listener address, …).
///
/// Returns an injected [`KiffError::Io`] when an armed trigger fires;
/// `Ok(())` otherwise — including always when nothing is armed, at the
/// cost of one relaxed atomic load.
pub fn check_ctx(name: &str, ctx: &str) -> Result<(), KiffError> {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return Ok(());
    }
    let mut table = lock_table();
    let Some(entries) = table.get_mut(name) else {
        return Ok(());
    };
    for entry in entries.iter_mut() {
        if entry.trigger == Trigger::Off {
            continue;
        }
        if let Some(scope) = &entry.scope {
            if !ctx.contains(scope.as_str()) {
                continue;
            }
        }
        entry.checks += 1;
        let fire = match &entry.trigger {
            Trigger::Off => false,
            Trigger::Always => true,
            Trigger::Nth(n) => entry.checks == *n,
            Trigger::Every(n) => *n > 0 && entry.checks % *n == 0,
            Trigger::Prob { p, .. } => {
                let draw = (xorshift64(&mut entry.rng) >> 11) as f64 / (1u64 << 53) as f64;
                draw < *p
            }
        };
        if fire {
            entry.fires += 1;
            return Err(KiffError::Io(std::io::Error::other(format!(
                "failpoint {name} fired (injected)"
            ))));
        }
    }
    Ok(())
}

/// Parses one trigger spec: `off`, `always`, `nth:N`, `every:N`,
/// `prob:P` or `prob:P@SEED`.
pub fn parse_trigger(spec: &str) -> Result<Trigger, KiffError> {
    let bad = |detail: String| KiffError::Protocol(format!("failpoint trigger `{spec}`: {detail}"));
    match spec.split_once(':') {
        None => match spec {
            "off" => Ok(Trigger::Off),
            "always" => Ok(Trigger::Always),
            other => Err(bad(format!("unknown mode `{other}`"))),
        },
        Some(("nth", n)) => n
            .parse::<u64>()
            .map(Trigger::Nth)
            .map_err(|e| bad(e.to_string())),
        Some(("every", n)) => n
            .parse::<u64>()
            .map(Trigger::Every)
            .map_err(|e| bad(e.to_string())),
        Some(("prob", rest)) => {
            let (p, seed) = match rest.split_once('@') {
                Some((p, seed)) => (p, seed.parse::<u64>().map_err(|e| bad(e.to_string()))?),
                None => (rest, 42),
            };
            let p: f64 = p
                .parse()
                .map_err(|e: std::num::ParseFloatError| bad(e.to_string()))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(bad(format!("probability {p} outside [0, 1]")));
            }
            Ok(Trigger::Prob { p, seed })
        }
        Some((mode, _)) => Err(bad(format!("unknown mode `{mode}`"))),
    }
}

/// Arms failpoints from a comma-separated spec:
///
/// ```text
/// spec    = point ("," point)*
/// point   = name "=" trigger ["%" scope]
/// trigger = "off" | "always" | "nth:" N | "every:" N | "prob:" P ["@" SEED]
/// ```
///
/// e.g. `wal.fsync=prob:0.01@42,snapshot.rename=nth:3%/var/lib/kiff`.
/// Returns the number of points armed.
pub fn arm_from_spec(spec: &str) -> Result<usize, KiffError> {
    let points = parse_spec(spec)?;
    let armed = points.len();
    for (name, trigger, scope) in points {
        arm_entry(&name, trigger, scope);
    }
    Ok(armed)
}

/// Parses a spec (same grammar as [`arm_from_spec`]) without arming
/// anything — a dry run for validating user input up front.
pub fn parse_spec(spec: &str) -> Result<Vec<(String, Trigger, Option<String>)>, KiffError> {
    let mut points = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, rest) = part.split_once('=').ok_or_else(|| {
            KiffError::Protocol(format!("failpoint spec `{part}` is missing `=`"))
        })?;
        let (trigger_spec, scope) = match rest.split_once('%') {
            Some((t, s)) => (t, Some(s.to_string())),
            None => (rest, None),
        };
        let trigger = parse_trigger(trigger_spec)?;
        points.push((name.trim().to_string(), trigger, scope));
    }
    Ok(points)
}

/// Arms failpoints from the `KIFF_FAILPOINTS` environment variable, if
/// set; returns the number armed (0 when unset or empty).
pub fn arm_from_env() -> Result<usize, KiffError> {
    match std::env::var("KIFF_FAILPOINTS") {
        Ok(spec) if !spec.trim().is_empty() => arm_from_spec(&spec),
        _ => Ok(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and other modules' tests may run
    // concurrently, so every test here uses its own unique names/scopes.

    #[test]
    fn unarmed_checks_are_free_and_ok() {
        assert!(check("fault.test.never-armed").is_ok());
    }

    #[test]
    fn nth_fires_exactly_once() {
        arm("fault.test.nth", Trigger::Nth(3));
        let fired: Vec<bool> = (0..6).map(|_| check("fault.test.nth").is_err()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        let c = counters()
            .into_iter()
            .find(|c| c.name == "fault.test.nth")
            .unwrap();
        assert_eq!((c.checks, c.fires), (6, 1));
        disarm("fault.test.nth");
    }

    #[test]
    fn prob_streams_are_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            arm("fault.test.prob", Trigger::Prob { p: 0.3, seed });
            (0..64).map(|_| check("fault.test.prob").is_err()).collect()
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed, same fire pattern");
        assert_ne!(a, c, "different seed diverges");
        assert!(a.iter().any(|&f| f), "p=0.3 fires within 64 draws");
        assert!(!a.iter().all(|&f| f), "p=0.3 spares some draws");
        disarm("fault.test.prob");
    }

    #[test]
    fn scopes_isolate_contexts_and_coexist() {
        arm_scoped("fault.test.scope", Trigger::Always, "/store-a");
        assert!(check_ctx("fault.test.scope", "/tmp/store-b/wal").is_ok());
        assert!(check_ctx("fault.test.scope", "/tmp/store-a/wal").is_err());
        // A second scope of the same name operates independently.
        arm_scoped("fault.test.scope", Trigger::Nth(1), "/store-b");
        assert!(check_ctx("fault.test.scope", "/tmp/store-b/wal").is_err());
        assert!(check_ctx("fault.test.scope", "/tmp/store-b/wal").is_ok());
        assert!(check_ctx("fault.test.scope", "/tmp/store-a/wal").is_err());
        disarm("fault.test.scope");
        assert!(check_ctx("fault.test.scope", "/tmp/store-a/wal").is_ok());
    }

    #[test]
    fn spec_grammar_round_trips() {
        let n = arm_from_spec(
            "fault.test.spec1=always, fault.test.spec2=nth:4, \
             fault.test.spec3=prob:0.5@9%scope-x",
        )
        .unwrap();
        assert_eq!(n, 3);
        assert!(check("fault.test.spec1").is_err());
        assert!(check_ctx("fault.test.spec3", "no-match").is_ok());
        assert!(armed().iter().any(|n| n == "fault.test.spec2"));
        for name in ["fault.test.spec1", "fault.test.spec2", "fault.test.spec3"] {
            disarm(name);
        }

        assert!(arm_from_spec("nope").is_err(), "missing `=`");
        assert!(arm_from_spec("x=warp").is_err(), "unknown mode");
        assert!(arm_from_spec("x=prob:1.5").is_err(), "p outside [0,1]");
        assert!(
            parse_trigger("every:0").is_ok(),
            "every:0 parses (never fires)"
        );
    }

    #[test]
    fn injected_errors_are_io_class() {
        arm("fault.test.kind", Trigger::Always);
        let err = check("fault.test.kind").unwrap_err();
        assert_eq!(err.kind(), "io");
        assert!(err.to_string().contains("fault.test.kind"));
        disarm("fault.test.kind");
    }
}
