//! Plain-text table rendering in the paper's row format.

/// A simple right-aligned ASCII table builder.
///
/// ```
/// use kiff_eval::Table;
/// let text = Table::new(&["Approach", "recall", "wall-time (s)"])
///     .row(&["KIFF", "0.99", "10.7"])
///     .row(&["NN-Descent", "0.95", "41.8"])
///     .render();
/// assert!(text.contains("KIFF"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: AsRef<str>>(headers: &[S]) -> Self {
        Self {
            headers: headers.iter().map(|h| h.as_ref().to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are dropped.
    pub fn row<S: AsRef<str>>(mut self, cells: &[S]) -> Self {
        let mut row: Vec<String> = cells
            .iter()
            .take(self.headers.len())
            .map(|c| c.as_ref().to_string())
            .collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Appends a row in place (for loop bodies).
    pub fn push_row<S: AsRef<str>>(&mut self, cells: &[S]) {
        let mut row: Vec<String> = cells
            .iter()
            .take(self.headers.len())
            .map(|c| c.as_ref().to_string())
            .collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data row was added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with a header separator; first column left-aligned, the rest
    /// right-aligned (matching numeric tables).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i] - cell.chars().count();
                if i == 0 {
                    out.push_str(cell);
                    out.push_str(&" ".repeat(pad));
                } else {
                    out.push_str(&" ".repeat(pad));
                    out.push_str(cell);
                }
            }
            // Trailing spaces trimmed for clean diffs.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }
}

/// Formats seconds with adaptive precision (ms below 1 s).
pub fn fmt_secs(seconds: f64) -> String {
    if seconds < 0.0005 {
        format!("{:.1}us", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.1}ms", seconds * 1e3)
    } else if seconds < 100.0 {
        format!("{seconds:.2}s")
    } else {
        format!("{seconds:.1}s")
    }
}

/// Formats a fraction as the percentage style the paper uses.
pub fn fmt_percent(fraction: f64) -> String {
    let pct = fraction * 100.0;
    if pct >= 10.0 {
        format!("{pct:.1}%")
    } else if pct >= 0.1 {
        format!("{pct:.2}%")
    } else {
        format!("{pct:.4}%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = Table::new(&["name", "v"])
            .row(&["a", "1"])
            .row(&["longer", "22"])
            .render();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right alignment of the numeric column.
        assert!(lines[2].ends_with(" 1"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let t = Table::new(&["a", "b"])
            .row(&["only-one"])
            .row(&["x", "y", "z"]);
        let text = t.render();
        assert!(text.contains("only-one"));
        assert!(!text.contains('z'));
    }

    #[test]
    fn format_helpers() {
        assert_eq!(fmt_secs(0.0001), "100.0us");
        assert_eq!(fmt_secs(0.5), "500.0ms");
        assert_eq!(fmt_secs(12.345), "12.35s");
        assert_eq!(fmt_secs(568.0), "568.0s");
        assert_eq!(fmt_percent(0.5169), "51.7%");
        assert_eq!(fmt_percent(0.0737), "7.37%");
        assert_eq!(fmt_percent(0.000007), "0.0007%");
    }

    #[test]
    fn push_row_in_place() {
        let mut t = Table::new(&["x"]);
        t.push_row(&["1"]);
        t.push_row(&["2"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
