//! Collaboration-graph generator (Arxiv- and DBLP-like datasets).
//!
//! In the paper's bibliographic datasets "authors play both the roles, i.e.,
//! of users and items: if two authors u1 and u2 have co-authored a paper, u1
//! contains u2 in her profile and vice-versa" (§IV-A1). We synthesise such
//! data with a classic preferential-attachment paper model: papers draw
//! 2..=`max` authors, preferring authors who have already published, which
//! yields the heavy-tailed collaboration degrees observed in \[23\].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kiff_collections::FxHashMap;

use crate::dataset::{Dataset, DatasetBuilder};
use crate::zipf::Zipf;

/// Configuration of the collaboration generator.
#[derive(Debug, Clone)]
pub struct CoauthorConfig {
    /// Dataset name.
    pub name: String,
    /// Number of authors (users *and* items).
    pub num_authors: usize,
    /// Stop once this many distinct collaboration pairs exist.
    pub target_pairs: usize,
    /// Smallest paper (≥ 2 authors).
    pub paper_size_min: usize,
    /// Largest paper.
    pub paper_size_max: usize,
    /// Zipf exponent over paper sizes (higher = small papers dominate).
    pub paper_size_exponent: f64,
    /// Probability that an author slot is filled preferentially (by prior
    /// publication count) rather than uniformly.
    pub preferential_bias: f64,
    /// Keep co-publication counts as ratings (DBLP) or collapse to binary
    /// (Arxiv, whose dataset "does not include ratings").
    pub weighted: bool,
    /// RNG seed.
    pub seed: u64,
}

impl CoauthorConfig {
    /// A small smoke-test configuration.
    pub fn tiny(name: &str, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            num_authors: 400,
            target_pairs: 2500,
            paper_size_min: 2,
            paper_size_max: 10,
            paper_size_exponent: 1.5,
            preferential_bias: 0.6,
            weighted: false,
            seed,
        }
    }
}

/// Generates a symmetric collaboration dataset: `|U| = |I| = num_authors`,
/// `UP_u` = the co-authors of `u` (rated by co-publication count when
/// `weighted`).
pub fn generate_coauthorship(config: &CoauthorConfig) -> Dataset {
    assert!(config.num_authors >= 2);
    assert!(config.paper_size_min >= 2 && config.paper_size_min <= config.paper_size_max);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let size_dist = Zipf::new(
        config.paper_size_max - config.paper_size_min + 1,
        config.paper_size_exponent,
    );

    // Undirected pair -> co-publication count. Pairs are keyed as
    // (min << 32) | max.
    let mut pairs: FxHashMap<u64, u32> = FxHashMap::default();
    // Preferential pool: every author once, plus once per authored paper.
    let mut pool: Vec<u32> = (0..config.num_authors as u32).collect();
    let mut paper_authors: Vec<u32> = Vec::with_capacity(config.paper_size_max);
    // Hard cap on papers so a mis-configured target cannot loop forever.
    let max_papers = 50 * config.target_pairs.max(1);
    let mut papers = 0usize;
    while pairs.len() < config.target_pairs && papers < max_papers {
        papers += 1;
        let size = (config.paper_size_min + size_dist.sample(&mut rng)).min(config.num_authors);
        paper_authors.clear();
        let mut guard = 0;
        while paper_authors.len() < size && guard < 50 * size {
            guard += 1;
            let author = if rng.gen::<f64>() < config.preferential_bias {
                pool[rng.gen_range(0..pool.len())]
            } else {
                rng.gen_range(0..config.num_authors as u32)
            };
            if !paper_authors.contains(&author) {
                paper_authors.push(author);
            }
        }
        for (idx, &a) in paper_authors.iter().enumerate() {
            pool.push(a);
            for &b in &paper_authors[idx + 1..] {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                *pairs
                    .entry(u64::from(lo) << 32 | u64::from(hi))
                    .or_insert(0) += 1;
            }
        }
    }

    let mut builder = DatasetBuilder::new(&config.name, config.num_authors, config.num_authors);
    builder.reserve(2 * pairs.len());
    for (&key, &count) in pairs.iter() {
        let (a, b) = ((key >> 32) as u32, key as u32);
        let rating = if config.weighted { count as f32 } else { 1.0 };
        builder.add_rating(a, b, rating);
        builder.add_rating(b, a, rating);
    }
    builder.build()
}

/// Restricts the *user* side to rows whose total rating weight is at least
/// `min_weight`, keeping the item space unchanged.
///
/// This mirrors the DBLP snapshot of §IV-A4, which "contains information
/// about users with at least five co-publications" while profiles may still
/// reference any author. Returns the filtered dataset together with the
/// kept original user ids (new id = position).
pub fn filter_users_by_min_weight(dataset: &Dataset, min_weight: f32) -> (Dataset, Vec<u32>) {
    let mut kept: Vec<u32> = Vec::new();
    for u in 0..dataset.num_users() as u32 {
        let total: f32 = dataset.user_profile(u).ratings.iter().sum();
        if total >= min_weight {
            kept.push(u);
        }
    }
    let mut builder = DatasetBuilder::new(dataset.name(), kept.len(), dataset.num_items());
    for (new_u, &old_u) in kept.iter().enumerate() {
        for (item, rating) in dataset.user_profile(old_u).iter() {
            builder.add_rating(new_u as u32, item, rating);
        }
    }
    (builder.build(), kept)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_unweighted_graph() {
        let ds = generate_coauthorship(&CoauthorConfig::tiny("arxiv-t", 1));
        assert_eq!(ds.num_users(), ds.num_items());
        // Symmetry: u in UP_v iff v in UP_u, with equal ratings.
        for u in 0..ds.num_users() as u32 {
            for (v, r) in ds.user_profile(u).iter() {
                assert_eq!(ds.user_profile(v).rating(u), Some(r), "asymmetric {u}-{v}");
            }
        }
    }

    #[test]
    fn no_self_loops() {
        let ds = generate_coauthorship(&CoauthorConfig::tiny("loops", 2));
        for u in 0..ds.num_users() as u32 {
            assert_eq!(ds.user_profile(u).rating(u), None, "self-loop at {u}");
        }
    }

    #[test]
    fn unweighted_ratings_are_binary() {
        let ds = generate_coauthorship(&CoauthorConfig::tiny("bin", 3));
        assert!(ds.iter_ratings().all(|(_, _, r)| r == 1.0));
    }

    #[test]
    fn weighted_ratings_reflect_copublications() {
        let cfg = CoauthorConfig {
            weighted: true,
            target_pairs: 4000,
            ..CoauthorConfig::tiny("dblp-t", 4)
        };
        let ds = generate_coauthorship(&cfg);
        assert!(ds
            .iter_ratings()
            .all(|(_, _, r)| r >= 1.0 && r.fract() == 0.0));
        // Preferential attachment should create at least one repeated
        // collaboration.
        assert!(
            ds.iter_ratings().any(|(_, _, r)| r > 1.0),
            "no repeated collaborations generated"
        );
    }

    #[test]
    fn reaches_target_pairs() {
        let cfg = CoauthorConfig::tiny("target", 5);
        let ds = generate_coauthorship(&cfg);
        // Directed edges = 2 × pairs.
        assert!(ds.num_ratings() >= 2 * cfg.target_pairs);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate_coauthorship(&CoauthorConfig::tiny("d", 9));
        let b = generate_coauthorship(&CoauthorConfig::tiny("d", 9));
        assert_eq!(a.users_csr(), b.users_csr());
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let cfg = CoauthorConfig {
            num_authors: 2000,
            target_pairs: 20_000,
            ..CoauthorConfig::tiny("skew", 6)
        };
        let ds = generate_coauthorship(&cfg);
        let degrees: Vec<usize> = (0..ds.num_users() as u32)
            .map(|u| ds.user_degree(u))
            .collect();
        let max = *degrees.iter().max().unwrap();
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!(max as f64 > 3.0 * mean, "max={max} mean={mean}");
    }

    #[test]
    fn min_weight_filter_keeps_heavy_users() {
        let cfg = CoauthorConfig {
            weighted: true,
            ..CoauthorConfig::tiny("filter", 7)
        };
        let ds = generate_coauthorship(&cfg);
        let (filtered, kept) = filter_users_by_min_weight(&ds, 5.0);
        assert_eq!(filtered.num_users(), kept.len());
        assert!(filtered.num_users() < ds.num_users());
        assert_eq!(filtered.num_items(), ds.num_items());
        for (new_u, &old_u) in kept.iter().enumerate() {
            assert_eq!(
                filtered.user_profile(new_u as u32).items,
                ds.user_profile(old_u).items
            );
        }
        // Every kept user meets the threshold.
        for u in 0..filtered.num_users() as u32 {
            let total: f32 = filtered.user_profile(u).ratings.iter().sum();
            assert!(total >= 5.0);
        }
    }
}
