//! Instrumentation shared by the greedy baselines (mirrors §IV-C's
//! metrics: scan rate, per-activity timing, per-iteration traces).

use std::time::Duration;

use kiff_graph::IterationTrace;

/// Metrics of one NN-Descent or HyRec run.
#[derive(Debug, Clone, Default)]
pub struct GreedyStats {
    /// Iterations executed (the random initialisation is not an
    /// iteration).
    pub iterations: usize,
    /// Total similarity evaluations, including the `|U|·k` spent scoring
    /// the random initial graph.
    pub sim_evals: u64,
    /// `sim_evals / (|U|·(|U|−1)/2)`.
    pub scan_rate: f64,
    /// Aggregated worker time assembling candidate sets (neighbour-of-
    /// neighbour unions, reversals, dedup) — the dominant non-similarity
    /// cost of greedy approaches (Fig. 5).
    pub candidate_selection_time: Duration,
    /// Aggregated worker time evaluating similarities.
    pub similarity_time: Duration,
    /// Wall time of the random initialisation.
    pub init_time: Duration,
    /// End-to-end wall time.
    pub total_time: Duration,
    /// Per-iteration traces (Fig. 8).
    pub per_iteration: Vec<IterationTrace>,
}

impl GreedyStats {
    /// Finalises the scan rate for `n` users.
    pub(crate) fn finish(&mut self, n: usize) {
        let possible = n as f64 * (n as f64 - 1.0) / 2.0;
        self.scan_rate = if possible > 0.0 {
            self.sim_evals as f64 / possible
        } else {
            0.0
        };
    }
}
