//! Exact KNN graph construction (ground truth).
//!
//! Two constructions are provided:
//!
//! * [`exact_knn_brute`] — the literal `O(|U|²)` definition (Eq. 1): every
//!   pair is evaluated. The paper uses this to establish its ideal graphs
//!   (§IV-C). Kept for validation and small data.
//! * [`exact_knn`] — inverted-index construction: only pairs sharing at
//!   least one item are evaluated. For metrics satisfying the sparse axioms
//!   (Eq. 5–6) the result is exact, because non-sharing pairs have
//!   similarity 0 and can never beat a sharing pair; users with fewer than
//!   `k` sharing candidates simply get shorter neighbour lists, which the
//!   tie-aware recall treats as similarity 0 (§III-B, Eq. 3). This is the
//!   `γ = ∞` special case of KIFF discussed in §III-D.
//!
//! Both are *blocked prepare-row × stream-columns kernels*: rows (users)
//! are handed to workers in blocks, each row's reference profile is
//! prepared once ([`Similarity::scorer`]) and every column (candidate) of
//! that row streams through the prepared scorer in `O(|UP_v|)` — they
//! share one `scored_row` kernel, so the brute path cannot drift from
//! the inverted-index path. The historical per-pair [`Similarity::sim`]
//! behaviour stays selectable through [`ScoringMode::Pairwise`] (the
//! `*_with` variants); both modes compute bit-identical similarities and
//! therefore identical graphs.

use kiff_collections::FixedBitSet;
use kiff_dataset::{Dataset, UserId};
use kiff_parallel::{effective_threads, parallel_fold};
use kiff_similarity::{ScorerWorkspace, ScoringMode, Similarity, PREPARED_MIN_BATCH};

use crate::knn::{KnnGraph, KnnHeap, Neighbor};

/// Per-worker scratch of the row kernels: the scorer-preparation arena
/// and the batch similarity buffer.
#[derive(Default)]
struct RowScratch {
    ws: ScorerWorkspace,
    sims: Vec<f64>,
}

/// The shared row kernel: scores `u` against every candidate and returns
/// its sorted `k` best sharing neighbours.
///
/// Under [`ScoringMode::Prepared`] (and a batch worth preparing for),
/// `u`'s profile is prepared once and the candidates stream through the
/// prepared scorer; otherwise each pair goes through the pairwise
/// [`Similarity::sim`]. Identical output either way.
fn scored_row<S: Similarity + ?Sized>(
    dataset: &Dataset,
    sim: &S,
    u: UserId,
    candidates: &[UserId],
    k: usize,
    scoring: ScoringMode,
    scratch: &mut RowScratch,
) -> Vec<Neighbor> {
    let mut heap = KnnHeap::new(k);
    match scoring {
        ScoringMode::Prepared if candidates.len() >= PREPARED_MIN_BATCH => {
            let mut scorer = sim.scorer(dataset, u, &mut scratch.ws);
            scorer.score_into(candidates, &mut scratch.sims);
            for (&v, &s) in candidates.iter().zip(scratch.sims.iter()) {
                if s > 0.0 {
                    heap.update(s, v);
                }
            }
        }
        ScoringMode::Prepared | ScoringMode::Pairwise => {
            for &v in candidates {
                let s = sim.sim(dataset, u, v);
                if s > 0.0 {
                    heap.update(s, v);
                }
            }
        }
    }
    heap.sorted_neighbors()
}

/// Exhaustive exact KNN: evaluates all `|U|·(|U|−1)/2` pairs, with
/// prepared row scoring (see [`exact_knn_brute_with`]).
pub fn exact_knn_brute<S: Similarity + ?Sized>(
    dataset: &Dataset,
    sim: &S,
    k: usize,
    threads: Option<usize>,
) -> KnnGraph {
    exact_knn_brute_with(dataset, sim, k, threads, ScoringMode::default())
}

/// [`exact_knn_brute`] with an explicit [`ScoringMode`]. Both modes build
/// identical graphs; pairwise is the regression baseline of the
/// `baselines` bench experiment.
pub fn exact_knn_brute_with<S: Similarity + ?Sized>(
    dataset: &Dataset,
    sim: &S,
    k: usize,
    threads: Option<usize>,
    scoring: ScoringMode,
) -> KnnGraph {
    let n = dataset.num_users();
    let threads = effective_threads(threads);
    let neighbors = parallel_fold(
        threads,
        n,
        16,
        || {
            (
                Vec::<(UserId, Vec<Neighbor>)>::new(),
                Vec::<UserId>::new(),
                RowScratch::default(),
            )
        },
        |(acc, cols, scratch), range| {
            for u in range {
                let u = u as UserId;
                // Stream every column of the row except the diagonal.
                cols.clear();
                cols.extend((0..n as UserId).filter(|&v| v != u));
                acc.push((u, scored_row(dataset, sim, u, cols, k, scoring, scratch)));
            }
        },
        |mut a, b| {
            a.0.extend(b.0);
            a
        },
    )
    .0;
    assemble(k, n, neighbors)
}

/// Inverted-index exact KNN: for each user, candidates are gathered from the
/// item profiles of her items (both id directions, no pivot) and only those
/// are evaluated, with prepared row scoring (see [`exact_knn_with`]).
///
/// # Panics
/// Panics if the metric does not satisfy the sparse axioms — the
/// construction would silently miss candidates otherwise.
pub fn exact_knn<S: Similarity + ?Sized>(
    dataset: &Dataset,
    sim: &S,
    k: usize,
    threads: Option<usize>,
) -> KnnGraph {
    exact_knn_with(dataset, sim, k, threads, ScoringMode::default())
}

/// [`exact_knn`] with an explicit [`ScoringMode`]. Both modes build
/// identical graphs.
///
/// # Panics
/// Panics if the metric does not satisfy the sparse axioms.
pub fn exact_knn_with<S: Similarity + ?Sized>(
    dataset: &Dataset,
    sim: &S,
    k: usize,
    threads: Option<usize>,
    scoring: ScoringMode,
) -> KnnGraph {
    assert!(
        sim.sparse_axioms(),
        "inverted-index exact KNN requires a metric with sparse axioms (Eq. 5-6); \
         use exact_knn_brute for {}",
        sim.name()
    );
    let n = dataset.num_users();
    let items = dataset.item_profiles();
    let threads = effective_threads(threads);
    let neighbors = parallel_fold(
        threads,
        n,
        16,
        || {
            (
                Vec::<(UserId, Vec<Neighbor>)>::new(),
                FixedBitSet::new(n),
                Vec::<UserId>::new(),
                RowScratch::default(),
            )
        },
        |(acc, seen, touched, scratch), range| {
            for u in range {
                let u = u as UserId;
                // Gather each co-rater exactly once via the reusable bitset.
                touched.clear();
                for &item in dataset.user_profile(u).items {
                    for &v in items.row(item) {
                        if v != u && seen.insert(v) {
                            touched.push(v);
                        }
                    }
                }
                let row = scored_row(dataset, sim, u, touched, k, scoring, scratch);
                seen.clear_ids(touched);
                acc.push((u, row));
            }
        },
        |mut a, b| {
            a.0.extend(b.0);
            a
        },
    )
    .0;
    assemble(k, n, neighbors)
}

fn assemble(k: usize, n: usize, mut chunks: Vec<(UserId, Vec<Neighbor>)>) -> KnnGraph {
    let mut lists: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
    for (u, list) in chunks.drain(..) {
        lists[u as usize] = list;
    }
    KnnGraph::from_neighbors(k, lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::dataset::figure2_toy;
    use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
    use kiff_similarity::{Jaccard, WeightedCosine};

    #[test]
    fn toy_exact_neighbors() {
        let ds = figure2_toy();
        let g = exact_knn(&ds, &WeightedCosine::new(), 1, Some(1));
        assert_eq!(g.neighbors(0)[0].id, 1); // Alice ↔ Bob via coffee
        assert_eq!(g.neighbors(1)[0].id, 0);
        assert_eq!(g.neighbors(2)[0].id, 3); // Carl ↔ Dave via shopping
        assert_eq!(g.neighbors(3)[0].id, 2);
    }

    #[test]
    fn inverted_index_matches_brute_force() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("x", 17));
        let sim = WeightedCosine::fit(&ds);
        for k in [1, 5, 10] {
            let fast = exact_knn(&ds, &sim, k, Some(2));
            let brute = exact_knn_brute(&ds, &sim, k, Some(2));
            for u in 0..ds.num_users() as u32 {
                // Ties can reorder ids, but the similarity multiset is
                // unique. Both use the same deterministic tie-breaking, so
                // direct equality should hold.
                assert_eq!(fast.neighbors(u), brute.neighbors(u), "user {u}, k={k}");
            }
        }
    }

    #[test]
    fn prepared_and_pairwise_build_identical_graphs() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("sc", 19));
        let sim = WeightedCosine::fit(&ds);
        for k in [1, 5] {
            let prepared = exact_knn_with(&ds, &sim, k, Some(2), ScoringMode::Prepared);
            let pairwise = exact_knn_with(&ds, &sim, k, Some(2), ScoringMode::Pairwise);
            assert_eq!(prepared, pairwise, "inverted, k={k}");
            let brute_p = exact_knn_brute_with(&ds, &sim, k, Some(2), ScoringMode::Prepared);
            let brute_w = exact_knn_brute_with(&ds, &sim, k, Some(2), ScoringMode::Pairwise);
            assert_eq!(brute_p, brute_w, "brute, k={k}");
        }
    }

    #[test]
    fn brute_force_respects_positive_only() {
        // Users with no sharing candidates get empty neighbourhoods, not
        // arbitrary zero-similarity fillers.
        let ds = figure2_toy();
        let g = exact_knn_brute(&ds, &Jaccard, 3, Some(1));
        // Alice shares with Bob only.
        assert_eq!(g.neighbors(0).len(), 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("p", 23));
        let sim = WeightedCosine::fit(&ds);
        let seq = exact_knn(&ds, &sim, 5, Some(1));
        let par = exact_knn(&ds, &sim, 5, Some(8));
        assert_eq!(seq, par);
    }

    #[test]
    fn neighbor_lists_exclude_self_and_duplicates() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("d", 31));
        let g = exact_knn(&ds, &Jaccard, 8, None);
        for u in 0..ds.num_users() as u32 {
            let ids: Vec<u32> = g.neighbors(u).iter().map(|n| n.id).collect();
            assert!(!ids.contains(&u));
            let mut dedup = ids.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), ids.len());
        }
    }
}
