//! One module per paper artefact. Every experiment takes the shared
//! [`Ctx`] (dataset + ground-truth caches, output directory) and returns
//! the human-readable report it also writes to `results/<id>.txt` (with a
//! machine-readable twin at `results/<id>.json`).

pub mod comparison;
pub mod convergence;
pub mod counting_exps;
pub mod datasets_exps;
pub mod density_exps;
pub mod extensions;
pub mod online;
pub mod sensitivity;

use std::collections::HashMap;
use std::path::PathBuf;
use std::rc::Rc;

use serde::Serialize;

use kiff_dataset::{Dataset, PaperDataset};
use kiff_eval::{AlgoRunRecord, ExperimentRecord};
use kiff_graph::KnnGraph;

use crate::datasets::SuiteScale;
use crate::runner::{self, RunOptions};

/// Shared state across experiments in one `experiments` invocation:
/// generated datasets and exact ground truths are cached because half the
/// experiments need them.
pub struct Ctx {
    /// Where reports land.
    pub out_dir: PathBuf,
    /// Dataset scale.
    pub scale: SuiteScale,
    /// Generation / initialisation seed.
    pub seed: u64,
    /// Worker threads for all runs.
    pub threads: Option<usize>,
    datasets: HashMap<PaperDataset, Rc<Dataset>>,
    truths: HashMap<(PaperDataset, usize), Rc<KnnGraph>>,
    table2_cache: Option<Rc<Vec<AlgoRunRecord>>>,
}

impl Ctx {
    /// Creates a context writing into `out_dir` (created if missing).
    pub fn new(out_dir: PathBuf, scale: SuiteScale, seed: u64, threads: Option<usize>) -> Self {
        std::fs::create_dir_all(&out_dir).expect("cannot create output directory");
        Self {
            out_dir,
            scale,
            seed,
            threads,
            datasets: HashMap::new(),
            truths: HashMap::new(),
            table2_cache: None,
        }
    }

    /// The calibrated stand-in for `d` (cached).
    pub fn dataset(&mut self, d: PaperDataset) -> Rc<Dataset> {
        let scale = self.scale.scale_for(d);
        let seed = self.seed;
        Rc::clone(
            self.datasets
                .entry(d)
                .or_insert_with(|| Rc::new(d.generate(scale, seed))),
        )
    }

    /// Exact cosine ground truth for `(d, k)` (cached).
    pub fn ground_truth(&mut self, d: PaperDataset, k: usize) -> Rc<KnnGraph> {
        if !self.truths.contains_key(&(d, k)) {
            let ds = self.dataset(d);
            let gt = runner::ground_truth(&ds, k, self.threads);
            self.truths.insert((d, k), Rc::new(gt));
        }
        Rc::clone(&self.truths[&(d, k)])
    }

    /// Run options for neighbourhood size `k`.
    pub fn opts(&self, k: usize) -> RunOptions {
        RunOptions {
            k,
            threads: self.threads,
            seed: self.seed,
        }
    }

    /// Table II records, computed once and shared with Table III / Fig. 5.
    pub fn table2_records(&mut self) -> Rc<Vec<AlgoRunRecord>> {
        if self.table2_cache.is_none() {
            let records = comparison::collect_table2(self);
            self.table2_cache = Some(Rc::new(records));
        }
        Rc::clone(self.table2_cache.as_ref().expect("just inserted"))
    }

    /// Writes `<id>.txt` and `<id>.json`, returning the text.
    pub fn finish(
        &self,
        id: &str,
        description: &str,
        text: String,
        payload: &impl Serialize,
    ) -> String {
        std::fs::write(self.out_dir.join(format!("{id}.txt")), &text)
            .unwrap_or_else(|e| eprintln!("warning: cannot write {id}.txt: {e}"));
        match ExperimentRecord::new(id, description, payload) {
            Ok(record) => {
                record
                    .save(self.out_dir.join(format!("{id}.json")))
                    .unwrap_or_else(|e| eprintln!("warning: cannot write {id}.json: {e}"));
            }
            Err(e) => eprintln!("warning: cannot serialise {id}: {e}"),
        }
        text
    }
}

/// Every experiment id, in the paper's presentation order.
pub const ALL: [&str; 22] = [
    "table1",
    "fig4",
    "fig1",
    "table2",
    "table3",
    "fig5",
    "table4",
    "table5",
    "table6",
    "fig6",
    "fig7",
    "table7",
    "fig8",
    "table8",
    "fig9",
    "table9_fig10",
    "ext1",
    "ext2",
    "ext3",
    "ext4",
    "ext5",
    "online",
];

/// Runs one experiment by id.
pub fn run_experiment(id: &str, ctx: &mut Ctx) -> Result<String, String> {
    match id {
        "table1" => Ok(datasets_exps::table1(ctx)),
        "fig4" => Ok(datasets_exps::fig4(ctx)),
        "fig1" => Ok(comparison::fig1(ctx)),
        "table2" => Ok(comparison::table2(ctx)),
        "table3" => Ok(comparison::table3(ctx)),
        "fig5" => Ok(comparison::fig5(ctx)),
        "table4" => Ok(counting_exps::table4(ctx)),
        "table5" => Ok(counting_exps::table5(ctx)),
        "table6" => Ok(counting_exps::table6(ctx)),
        "fig6" => Ok(counting_exps::fig6(ctx)),
        "fig7" => Ok(counting_exps::fig7(ctx)),
        "table7" => Ok(counting_exps::table7(ctx)),
        "fig8" => Ok(convergence::fig8(ctx)),
        "table8" => Ok(sensitivity::table8(ctx)),
        "fig9" => Ok(sensitivity::fig9(ctx)),
        "table9" | "fig10" | "table9_fig10" => Ok(density_exps::table9_fig10(ctx)),
        "ext1" => Ok(extensions::ext1(ctx)),
        "ext2" => Ok(extensions::ext2(ctx)),
        "ext3" => Ok(extensions::ext3(ctx)),
        "ext4" => Ok(extensions::ext4(ctx)),
        "ext5" => Ok(extensions::ext5(ctx)),
        "online" => Ok(online::online(ctx)),
        other => Err(format!(
            "unknown experiment '{other}'; available: {}",
            ALL.join(", ")
        )),
    }
}
