//! Rebalance-vs-single equivalence: a *skewed* replay — a hot-community
//! burst followed by a tail of brand-new users — with live migrations
//! enabled (rebalancer plus explicit mid-batch migration requests) must
//! reach recall within ε of the unsharded [`OnlineKnn`] replay, for shard
//! counts 2, 4 and 8 and for both the hash and the community-aware
//! partitioner. Migration moves ownership, never edges, so it must be
//! invisible to what the repair computes (mirroring
//! `sharded_equivalence.rs`, which pins the migration-free engine).

use std::sync::Arc;

use proptest::prelude::*;

use kiff::dataset::generators::planted::{generate_planted, PlantedConfig};
use kiff::dataset::{Dataset, DatasetBuilder};
use kiff::graph::{exact_knn, recall};
use kiff::online::{
    CommunityPartitioner, HashPartitioner, OnlineConfig, OnlineKnn, Partitioner, RebalanceConfig,
    ShardConfig, ShardedOnlineKnn, Update,
};
use kiff::similarity::WeightedCosine;

/// Same tolerance as `sharded_equivalence.rs`: shards carry independent
/// propagation budgets, so recalls agree up to ε, not bit for bit.
const EPSILON: f64 = 0.05;

/// New users streamed into the hot community after the burst.
const NEW_USERS: u32 = 24;

fn planted(seed: u64) -> Dataset {
    generate_planted(&PlantedConfig {
        num_users: 300,
        num_items: 240,
        communities: 4,
        ratings_per_user: 12,
        affinity: 0.85,
        ..PlantedConfig::tiny("rebalance-equiv", seed)
    })
    .0
}

/// Splits `full` into a base dataset and a *skewed* update stream: the
/// held-out ratings of community 0 (users `u % 4 == 0`) arrive first as a
/// hot burst, the rest follow, and a tail of brand-new users joins the
/// hot community's item block (the power-law-growth shape that unbalances
/// fixed-at-admission sharding).
fn split_skewed(full: &Dataset, holdout_every: usize) -> (Dataset, Vec<Update>) {
    let mut builder = DatasetBuilder::new("base", full.num_users(), full.num_items());
    let mut hot = Vec::new();
    let mut cold = Vec::new();
    for (pos, (user, item, rating)) in full.iter_ratings().enumerate() {
        if pos % holdout_every == 0 {
            let update = Update::AddRating { user, item, rating };
            if user % 4 == 0 {
                hot.push(update);
            } else {
                cold.push(update);
            }
        } else {
            builder.add_rating(user, item, rating);
        }
    }
    let n = full.num_users() as u32;
    for i in 0..NEW_USERS {
        for j in 0..3u32 {
            hot.push(Update::AddRating {
                user: n + i,
                // Community 0's item block is [0, num_items / 4).
                item: (i * 7 + j * 13) % (full.num_items() as u32 / 4),
                rating: 1.0,
            });
        }
    }
    hot.extend(cold);
    (builder.build(), hot)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Skewed batched replay with migrations enabled stays within ε of
    /// the single-engine replay, for 2/4/8 shards × both partitioners,
    /// and ends with consistent cross-shard state and real migrations.
    #[test]
    fn skewed_replay_with_migrations_matches_single_engine(
        seed in 0u64..1000,
        batch in 32usize..96,
    ) {
        let full = planted(seed);
        let k = 5;
        let (base, stream) = split_skewed(&full, 10);
        prop_assert!(stream.len() > NEW_USERS as usize * 3);

        // Single-engine yardstick on the same skewed stream.
        let mut single = OnlineKnn::new(&base, OnlineConfig::new(k));
        for chunk in stream.chunks(batch) {
            single.apply_batch(chunk.iter().copied());
        }
        let final_dataset = single.data().to_dataset();
        let sim = WeightedCosine::fit(&final_dataset);
        let exact = exact_knn(&final_dataset, &sim, k, Some(2));
        let single_recall = recall(&exact, &single.graph());

        let partitioners: Vec<(&str, Arc<dyn Partitioner>)> = vec![
            ("hash", Arc::new(HashPartitioner)),
            (
                "community",
                Arc::new(CommunityPartitioner::from_dataset(&base, 4)),
            ),
        ];
        for shards in [2usize, 4, 8] {
            for (name, partitioner) in &partitioners {
                let mut engine = ShardedOnlineKnn::new(
                    &base,
                    OnlineConfig::new(k),
                    ShardConfig::new(shards)
                        .with_threads(2)
                        .with_partitioner(Arc::clone(partitioner))
                        .with_rebalance(RebalanceConfig::new(1.5).with_max_moves(16)),
                );
                for (round, chunk) in stream.chunks(batch).enumerate() {
                    // Churn ownership on purpose: request a mid-batch
                    // migration of a streamed user every few chunks.
                    if round % 3 == 0 {
                        if let Some(Update::AddRating { user, .. }) = chunk.first() {
                            if (*user as usize) < engine.num_users() {
                                let away = (engine.shard_of(*user) + 1) % shards;
                                engine.request_migration(*user, away);
                            }
                        }
                    }
                    engine.apply_batch(chunk.iter().copied());
                }
                engine.validate_invariants();
                prop_assert!(
                    engine.migrations_total() > 0,
                    "{shards} shards / {name}: no migrations exercised"
                );
                prop_assert_eq!(
                    engine.data().num_ratings(),
                    single.data().num_ratings(),
                    "{} shards / {}: ratings lost", shards, name
                );
                let sharded_recall = recall(&exact, &engine.graph());
                prop_assert!(
                    sharded_recall >= single_recall - EPSILON,
                    "{shards} shards / {name}: recall {sharded_recall:.4} not within ε \
                     of single-engine {single_recall:.4}"
                );
            }
        }
    }
}
