//! Shard-vs-single equivalence: replaying the same update stream through
//! the sharded engine must reach recall within ε of the single-engine
//! replay, for shard counts 1, 2 and 4 — sharding distributes the repair
//! work, it must not change what the repair computes.

use proptest::prelude::*;

use kiff::dataset::generators::planted::{generate_planted, PlantedConfig};
use kiff::dataset::{Dataset, DatasetBuilder};
use kiff::graph::{exact_knn, recall};
use kiff::online::{OnlineConfig, OnlineKnn, ShardConfig, ShardedOnlineKnn, Update};
use kiff::similarity::WeightedCosine;

/// Sharded replays may spend slightly different propagation budgets than
/// the single engine (each shard carries its own cap), so their recalls
/// are equal up to a small tolerance, not bit-identical.
const EPSILON: f64 = 0.05;

fn planted(seed: u64) -> Dataset {
    generate_planted(&PlantedConfig {
        num_users: 300,
        num_items: 240,
        communities: 4,
        ratings_per_user: 12,
        affinity: 0.85,
        ..PlantedConfig::tiny("shard-equiv", seed)
    })
    .0
}

/// Splits `full` into a base dataset and a held-out update stream.
fn split(full: &Dataset, holdout_every: usize) -> (Dataset, Vec<Update>) {
    let mut builder = DatasetBuilder::new("base", full.num_users(), full.num_items());
    let mut held = Vec::new();
    for (pos, (user, item, rating)) in full.iter_ratings().enumerate() {
        if pos % holdout_every == 0 {
            held.push(Update::AddRating { user, item, rating });
        } else {
            builder.add_rating(user, item, rating);
        }
    }
    (builder.build(), held)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// A sharded batched replay reaches recall within ε of the
    /// single-engine batched replay on the same stream, for 1, 2 and 4
    /// shards, and ends with consistent cross-shard state.
    #[test]
    fn sharded_replay_matches_single_engine(seed in 0u64..1000, batch in 32usize..128) {
        let full = planted(seed);
        let k = 5;
        let (base, held) = split(&full, 10);
        prop_assert!(!held.is_empty());

        // Single-engine yardstick.
        let mut single = OnlineKnn::new(&base, OnlineConfig::new(k));
        for chunk in held.chunks(batch) {
            single.apply_batch(chunk.iter().copied());
        }
        let final_dataset = single.data().to_dataset();
        let sim = WeightedCosine::fit(&final_dataset);
        let exact = exact_knn(&final_dataset, &sim, k, Some(1));
        let single_recall = recall(&exact, &single.graph());

        for shards in [1usize, 2, 4] {
            let mut engine = ShardedOnlineKnn::new(
                &base,
                OnlineConfig::new(k),
                ShardConfig::new(shards).with_threads(2),
            );
            for chunk in held.chunks(batch) {
                engine.apply_batch(chunk.iter().copied());
            }
            engine.validate_invariants();
            prop_assert_eq!(
                engine.data().num_ratings(),
                full.num_ratings(),
                "{} shards lost ratings", shards
            );
            let sharded_recall = recall(&exact, &engine.graph());
            prop_assert!(
                sharded_recall >= single_recall - EPSILON,
                "{shards} shards: recall {sharded_recall:.4} not within ε of \
                 single-engine {single_recall:.4}"
            );
        }
    }

    /// One shard is not merely ε-close: batched replay must produce the
    /// single engine's exact neighbourhoods (the message queue degenerates
    /// to the local path). Exactness requires each user's accumulated
    /// targeted candidates to stay within the repair width for the batch
    /// — guaranteed here (items have ~15 co-raters, width 8k = 32) —
    /// because above the width the two engines cap with differently-aged
    /// counter snapshots and select different (equally ranked) subsets.
    #[test]
    fn one_shard_replay_is_exact(seed in 0u64..1000) {
        let full = planted(seed);
        let k = 4;
        let (base, held) = split(&full, 12);
        let mut single = OnlineKnn::new(&base, OnlineConfig::new(k));
        let mut sharded = ShardedOnlineKnn::new(
            &base,
            OnlineConfig::new(k),
            ShardConfig::new(1),
        );
        for chunk in held.chunks(64) {
            single.apply_batch(chunk.iter().copied());
            sharded.apply_batch(chunk.iter().copied());
        }
        for u in 0..single.num_users() as u32 {
            prop_assert_eq!(
                single.neighbors(u),
                sharded.neighbors(u),
                "user {} diverged", u
            );
        }
        prop_assert_eq!(
            single.lifetime_stats().sim_evals,
            sharded.lifetime_stats().sim_evals
        );
    }
}
