//! Quickstart: build a KNN graph over the paper's Figure 2 toy dataset.
//!
//! Run with: `cargo run --release --example quickstart`

use kiff::prelude::*;

fn main() {
    // Users rate items: Alice likes books and coffee, Bob coffee and
    // cheese, Carl and Dave like shopping (Figure 2 of the paper).
    let users = ["Alice", "Bob", "Carl", "Dave"];
    let items = ["book", "coffee", "cheese", "shopping"];
    let ratings: &[(u32, u32)] = &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 3), (3, 3)];

    let mut builder = DatasetBuilder::new("figure2", users.len(), items.len());
    for &(u, i) in ratings {
        builder.add_rating(u, i, 1.0);
    }
    let dataset = builder.build();

    // Construct the 2-NN graph with KIFF under cosine similarity.
    let graph = KnnGraphBuilder::new(2).build(&dataset);

    println!("KNN graph of the Figure 2 toy dataset (k = 2, cosine):\n");
    for (u, name) in users.iter().enumerate() {
        let neighbors: Vec<String> = graph
            .neighbors(u as u32)
            .iter()
            .map(|n| format!("{} (sim {:.2})", users[n.id as usize], n.sim))
            .collect();
        println!("  {name:<6} -> {}", neighbors.join(", "));
    }

    // Only users sharing at least one item can be neighbours: Alice's
    // single neighbour is Bob (coffee), Carl and Dave pair up via shopping.
    assert_eq!(graph.neighbors(0)[0].id, 1);
    assert_eq!(graph.neighbors(2)[0].id, 3);
    println!("\nDone: KIFF found every sharing pair without a single wasted comparison.");
}
