#![warn(missing_docs)]

//! Evaluation toolkit for the KIFF reproduction.
//!
//! Everything the paper's evaluation section measures but that is not an
//! algorithm: complementary cumulative distribution functions (Figs 4
//! and 6), Spearman rank correlation (Fig. 7), ASCII table rendering in the
//! paper's row format, and serde-serialisable experiment records written by
//! the `experiments` binary and summarised in EXPERIMENTS.md.

pub mod ccdf;
pub mod records;
pub mod spearman;
pub mod summary;
pub mod table;

pub use ccdf::Ccdf;
pub use records::{AlgoRunRecord, ExperimentRecord};
pub use spearman::spearman;
pub use summary::{geometric_mean, mean, percentile};
pub use table::Table;
