//! Dataset provisioning for experiments and benches.

use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
use kiff_dataset::generators::RatingModel;
use kiff_dataset::{Dataset, PaperDataset};

/// Scale control for the paper suite: a multiplier applied on top of each
/// dataset's default scale (1.0 reproduces the defaults documented in
/// DESIGN.md §3; smaller values give quick smoke runs).
#[derive(Debug, Clone, Copy)]
pub struct SuiteScale {
    /// Multiplier on the per-dataset default scale.
    pub multiplier: f64,
}

impl SuiteScale {
    /// The documented default sizes.
    pub fn full() -> Self {
        Self { multiplier: 1.0 }
    }

    /// A fast smoke-test scale.
    pub fn quick() -> Self {
        Self { multiplier: 0.25 }
    }

    /// Effective generation scale for `dataset`.
    pub fn scale_for(&self, dataset: PaperDataset) -> f64 {
        (dataset.default_scale() * self.multiplier).min(2.0)
    }
}

/// Generates the four calibrated paper datasets at `scale`.
pub fn paper_suite(scale: SuiteScale, seed: u64) -> Vec<(PaperDataset, Dataset)> {
    PaperDataset::ALL
        .iter()
        .map(|&d| (d, d.generate(scale.scale_for(d), seed)))
        .collect()
}

/// A small Wikipedia-like dataset for Criterion micro benches (a few
/// hundred users so each bench iteration stays in the tens of
/// milliseconds).
pub fn bench_dataset(seed: u64) -> Dataset {
    generate_bipartite(&BipartiteConfig {
        name: "bench-wiki".to_string(),
        num_users: 1_200,
        num_items: 500,
        target_ratings: 20_000,
        user_degree_min: 1,
        user_degree_max: 300,
        item_exponent: 0.7,
        rating_model: RatingModel::Binary,
        seed,
    })
}

/// An even smaller dataset for the per-table bench targets that must run
/// three full algorithms per sample.
pub fn small_bench_dataset(seed: u64) -> Dataset {
    generate_bipartite(&BipartiteConfig {
        name: "bench-small".to_string(),
        num_users: 400,
        num_items: 250,
        target_ratings: 6_000,
        user_degree_min: 1,
        user_degree_max: 120,
        item_exponent: 0.7,
        rating_model: RatingModel::Binary,
        seed,
    })
}

/// A count-valued (Gowalla-style) small dataset for the rating-threshold
/// extension benches, where the §VII heuristic has something to prune.
pub fn counts_bench_dataset(seed: u64) -> Dataset {
    generate_bipartite(&BipartiteConfig {
        name: "bench-counts".to_string(),
        num_users: 400,
        num_items: 250,
        target_ratings: 6_000,
        user_degree_min: 1,
        user_degree_max: 120,
        item_exponent: 0.7,
        rating_model: RatingModel::Counts { mean: 3.0 },
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_scales_apply_defaults() {
        let s = SuiteScale::full();
        assert_eq!(s.scale_for(PaperDataset::Wikipedia), 1.0);
        assert!((s.scale_for(PaperDataset::Dblp) - 1.0 / 16.0).abs() < 1e-12);
        let q = SuiteScale::quick();
        assert_eq!(q.scale_for(PaperDataset::Wikipedia), 0.25);
    }

    #[test]
    fn quick_suite_generates_all_four() {
        let suite = paper_suite(SuiteScale { multiplier: 0.05 }, 1);
        assert_eq!(suite.len(), 4);
        for (id, ds) in &suite {
            assert!(ds.num_users() > 0, "{}", id.name());
            assert!(ds.num_ratings() > 0, "{}", id.name());
        }
    }

    #[test]
    fn bench_datasets_are_small() {
        assert!(bench_dataset(1).num_users() <= 2000);
        assert!(small_bench_dataset(1).num_users() <= 500);
    }
}
