//! Sparse multiplicity counters for the KIFF counting phase.
//!
//! Building a ranked candidate set means computing, for one user `u`, the
//! multiset union of the item profiles of her items (Algorithm 1, line 4) —
//! i.e. counting how many items `u` shares with every co-rater. Two
//! strategies are provided and benchmarked against each other (see the
//! `ablations` bench target):
//!
//! * [`SparseCounter`] — hash-map based; good when candidate batches are tiny.
//! * [`count_sorted_runs`] — sort + run-length-encode; wins on the skewed,
//!   bursty batches real datasets produce and is the default in `kiff-core`.

use crate::hash::FxHashMap;
use crate::radix::radix_sort_u32;

/// Hash-based sparse counter over `u32` keys.
///
/// A thin wrapper around an Fx-hashed map that keeps the per-batch workflow
/// (`add*`, `drain_sorted_by_count`, implicit reset) explicit at call sites.
#[derive(Debug, Default, Clone)]
pub struct SparseCounter {
    counts: FxHashMap<u32, u32>,
}

impl SparseCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty counter with space for `cap` distinct keys.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            counts: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
        }
    }

    /// Increments the multiplicity of `key`.
    #[inline]
    pub fn add(&mut self, key: u32) {
        *self.counts.entry(key).or_insert(0) += 1;
    }

    /// Increments every key in `keys`.
    pub fn add_all(&mut self, keys: &[u32]) {
        for &k in keys {
            self.add(k);
        }
    }

    /// Adds `n` to the multiplicity of `key` in one step (bulk seeding
    /// from a precomputed ranked candidate set).
    pub fn add_n(&mut self, key: u32, n: u32) {
        if n > 0 {
            *self.counts.entry(key).or_insert(0) += n;
        }
    }

    /// Number of distinct keys seen.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no key has been counted.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Multiplicity of `key` (0 when unseen).
    pub fn get(&self, key: u32) -> u32 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Decrements the multiplicity of `key`, removing it at zero. Used by
    /// the online engine to retract a shared item when a rating is deleted.
    ///
    /// # Panics
    /// Panics if `key` is not currently counted — a decrement without a
    /// matching increment is an accounting bug upstream.
    pub fn sub(&mut self, key: u32) {
        let count = self
            .counts
            .get_mut(&key)
            .unwrap_or_else(|| panic!("sub on uncounted key {key}"));
        *count -= 1;
        if *count == 0 {
            self.counts.remove(&key);
        }
    }

    /// Iterates `(key, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.counts.iter().map(|(&k, &c)| (k, c))
    }

    /// The `limit` keys with the highest counts, ordered by descending
    /// count (ties: ascending key) — the ranked-candidate-set prefix,
    /// without draining. A partial select keeps this `O(n + limit log
    /// limit)` rather than sorting the whole counter.
    pub fn top_by_count(&self, limit: usize) -> Vec<(u32, u32)> {
        let mut pairs: Vec<(u32, u32)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        let order = |a: &(u32, u32), b: &(u32, u32)| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0));
        if pairs.len() > limit {
            pairs.select_nth_unstable_by(limit, order);
            pairs.truncate(limit);
        }
        pairs.sort_unstable_by(order);
        pairs
    }

    /// Drains the counter into `(key, count)` pairs ordered by descending
    /// count, ties broken by ascending key — the ranked-candidate-set order.
    pub fn drain_sorted_by_count(&mut self) -> Vec<(u32, u32)> {
        let mut pairs: Vec<(u32, u32)> = self.counts.drain().collect();
        pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        pairs
    }
}

/// Sort-based counting: sorts `keys` in place, then returns `(key, count)`
/// pairs ordered by descending count (ties: ascending key).
///
/// Equivalent to feeding `keys` through [`SparseCounter`] — property-tested
/// below — but with better cache behaviour on large batches.
pub fn count_sorted_runs(keys: &mut [u32]) -> Vec<(u32, u32)> {
    if keys.is_empty() {
        return Vec::new();
    }
    radix_sort_u32(keys);
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    let mut run_key = keys[0];
    let mut run_len = 0u32;
    for &k in keys.iter() {
        if k == run_key {
            run_len += 1;
        } else {
            pairs.push((run_key, run_len));
            run_key = k;
            run_len = 1;
        }
    }
    pairs.push((run_key, run_len));
    pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_multiplicities() {
        let mut c = SparseCounter::new();
        c.add_all(&[3, 1, 3, 3, 2, 1]);
        assert_eq!(c.get(3), 3);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.get(2), 1);
        assert_eq!(c.get(99), 0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn drain_orders_by_count_then_key() {
        let mut c = SparseCounter::new();
        c.add_all(&[5, 5, 9, 9, 1, 2]);
        assert_eq!(
            c.drain_sorted_by_count(),
            vec![(5, 2), (9, 2), (1, 1), (2, 1)]
        );
        assert!(c.is_empty());
    }

    #[test]
    fn sub_retracts_and_removes_at_zero() {
        let mut c = SparseCounter::new();
        c.add_all(&[4, 4, 8]);
        c.sub(4);
        assert_eq!(c.get(4), 1);
        c.sub(4);
        assert_eq!(c.get(4), 0);
        assert_eq!(c.len(), 1, "zeroed key is dropped");
        c.sub(8);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "sub on uncounted key")]
    fn sub_on_missing_key_panics() {
        SparseCounter::new().sub(3);
    }

    #[test]
    fn top_by_count_is_the_ranked_prefix() {
        let mut c = SparseCounter::new();
        c.add_all(&[5, 5, 5, 9, 9, 1, 2, 2]);
        assert_eq!(c.top_by_count(2), vec![(5, 3), (2, 2)]);
        assert_eq!(c.top_by_count(3), vec![(5, 3), (2, 2), (9, 2)]);
        // Beyond the population: everything, still ranked.
        assert_eq!(c.top_by_count(100), vec![(5, 3), (2, 2), (9, 2), (1, 1)]);
        // Non-destructive.
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn sorted_runs_empty_input() {
        let mut keys = vec![];
        assert!(count_sorted_runs(&mut keys).is_empty());
    }

    #[test]
    fn sorted_runs_single_run() {
        let mut keys = vec![7, 7, 7];
        assert_eq!(count_sorted_runs(&mut keys), vec![(7, 3)]);
    }

    #[test]
    fn sorted_runs_matches_hand_example() {
        // RCS_Alice from the paper (§II-C): counts decide the rank.
        let mut keys = vec![
            1, 1, 1, 1, 1, 1, 1, 1, 1, 1, // Bob shares 10
            2, 2, 2, 2, 2, 2, 2, 2, 2, // Carl shares 9
            3, 3, 3, 3, 3, 3, 3, 3, // Dave 8
            4, 4, 4, 4, 4, 4, // Xavier 6
            5, 5, 5, // Yann 3
        ];
        assert_eq!(
            count_sorted_runs(&mut keys),
            vec![(1, 10), (2, 9), (3, 8), (4, 6), (5, 3)]
        );
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Hash-based and sort-based counting agree exactly.
            #[test]
            fn strategies_agree(keys in proptest::collection::vec(0u32..300, 0..600)) {
                let mut hash = SparseCounter::new();
                hash.add_all(&keys);
                let mut keys_mut = keys.clone();
                prop_assert_eq!(hash.drain_sorted_by_count(), count_sorted_runs(&mut keys_mut));
            }

            /// Total multiplicity equals input length.
            #[test]
            fn counts_sum_to_len(keys in proptest::collection::vec(any::<u32>(), 0..400)) {
                let mut keys_mut = keys.clone();
                let total: u64 = count_sorted_runs(&mut keys_mut)
                    .iter()
                    .map(|&(_, c)| u64::from(c))
                    .sum();
                prop_assert_eq!(total, keys.len() as u64);
            }
        }
    }
}
