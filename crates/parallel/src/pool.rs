//! Scoped, dynamically-scheduled parallel iteration.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a requested thread count: `None` or `Some(0)` means "all
/// available parallelism", anything else is taken literally.
pub fn effective_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) if n > 0 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Runs `body` over every sub-range of `0..n`, splitting into `grain`-sized
/// chunks handed to `threads` workers through a shared cursor.
///
/// With `threads == 1` the body runs inline on the calling thread in a
/// single deterministic sweep — the mode used by tests that compare against
/// sequential references.
pub fn parallel_for<F>(threads: usize, n: usize, grain: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    assert!(grain > 0, "grain must be positive");
    if n == 0 {
        return;
    }
    if threads <= 1 {
        body(0..n);
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n.div_ceil(grain)) {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(grain, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + grain).min(n);
                body(start..end);
            });
        }
    });
}

/// Parallel fold: each worker owns an accumulator created by `init`, feeds it
/// chunks via `fold`, and the per-worker results are combined with `merge`.
///
/// The merge order is unspecified; `merge` must be associative and
/// commutative for deterministic results.
pub fn parallel_fold<A, I, F, M>(
    threads: usize,
    n: usize,
    grain: usize,
    init: I,
    fold: F,
    merge: M,
) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, Range<usize>) + Sync,
    M: Fn(A, A) -> A,
{
    assert!(grain > 0, "grain must be positive");
    if n == 0 {
        return init();
    }
    if threads <= 1 {
        let mut acc = init();
        fold(&mut acc, 0..n);
        return acc;
    }
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(n.div_ceil(grain));
    let accs: Vec<A> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut acc = init();
                    loop {
                        let start = cursor.fetch_add(grain, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + grain).min(n);
                        fold(&mut acc, start..end);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut iter = accs.into_iter();
    let first = iter.next().expect("at least one worker");
    iter.fold(first, merge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(effective_threads(Some(3)), 3);
        assert!(effective_threads(None) >= 1);
        assert!(effective_threads(Some(0)) >= 1);
    }

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 10_007; // prime, not a multiple of the grain
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(4, n, 64, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn single_thread_is_one_sweep() {
        let calls = AtomicUsize::new(0);
        parallel_for(1, 1000, 10, |range| {
            assert_eq!(range, 0..1000);
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn empty_range_is_noop() {
        parallel_for(4, 0, 16, |_| panic!("must not be called"));
    }

    #[test]
    fn grain_larger_than_n() {
        let sum = AtomicU64::new(0);
        parallel_for(8, 5, 1000, |range| {
            sum.fetch_add(range.map(|i| i as u64).sum::<u64>(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10); // 0+1+2+3+4
    }

    #[test]
    fn fold_sums_match_sequential() {
        let n = 100_000usize;
        for threads in [1, 2, 8] {
            let total = parallel_fold(
                threads,
                n,
                128,
                || 0u64,
                |acc, range| {
                    for i in range {
                        *acc += i as u64;
                    }
                },
                |a, b| a + b,
            );
            assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
        }
    }

    #[test]
    fn fold_collects_disjoint_chunks() {
        let parts = parallel_fold(
            4,
            1000,
            37,
            Vec::new,
            |acc: &mut Vec<usize>, range| acc.extend(range),
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        let mut sorted = parts;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
    }
}
