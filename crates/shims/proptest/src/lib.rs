//! Workspace-local stand-in for `proptest`.
//!
//! The offline build environment cannot fetch crates.io, so the subset of
//! proptest this workspace uses is re-implemented: the [`Strategy`] trait
//! with `prop_map`, range / tuple / `any` / collection strategies, the
//! `proptest!` macro (with `#![proptest_config]` and `pat in strategy`
//! arguments), and the `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics differ from upstream in one way that matters: failing cases
//! are **not shrunk** — the panic reports the raw failing case number and
//! the assertion message. Generation is seeded deterministically from the
//! test name, so failures reproduce across runs.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration. Only `cases` is modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// The generation source handed to strategies.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic generator derived from a label (the test name).
    pub fn deterministic(label: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(StdRng::seed_from_u64(h))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A value generator. Unlike upstream there is no shrinking: `generate`
/// produces one value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values; regenerates until `f` accepts (bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

/// Strategy producing a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i16, i32, i64, isize, f32, f64);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite floats only: the workspace's properties feed these into
        // arithmetic where NaN would only test NaN propagation.
        let raw = rng.rng().gen::<f64>();
        (raw - 0.5) * 2e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        vec_strategy(element, size)
    }

    fn vec_strategy<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s with entry counts drawn from `size`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// `btree_map(key, value, len_range)`. Duplicate keys collapse, so
    /// the final size may undershoot, matching upstream.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        assert!(!size.is_empty(), "empty length range");
        BTreeMapStrategy { key, value, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.rng().gen_range(self.size.clone());
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    /// Strategy for `BTreeSet`s with element counts drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `btree_set(element, len_range)`. Duplicate elements collapse, so
    /// the final size may undershoot, matching upstream.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        assert!(!size.is_empty(), "empty length range");
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.rng().gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports property-test modules glob in.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Defines property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u32..100, v in proptest::collection::vec(any::<u32>(), 0..50)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed on case {case}: {msg}",
                                   stringify!($name));
                        }
                    }
                }
            }
        )*
    };
}

/// Why a property case ended early.
#[doc(hidden)]
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case does not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Asserts inside a property, reporting the failing case on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{a:?} != {b:?}");
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{a:?} != {b:?}: {}", format!($($fmt)*));
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{a:?} == {b:?}");
    }};
}

/// Rejects the current case (it is skipped, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_respects_length(v in crate::collection::vec(0u32..10, 2..30)) {
            prop_assert!(v.len() >= 2 && v.len() < 30);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_and_map(pair in (0u32..5, 10u32..20).prop_map(|(a, b)| a + b)) {
            prop_assert!((10..25).contains(&pair));
        }

        #[test]
        fn assume_skips(mut x in 0u32..10) {
            prop_assume!(x != 3);
            x += 1;
            prop_assert_ne!(x, 4);
        }

        #[test]
        fn btree_map_strategy(m in crate::collection::btree_map(0u32..50, 0u32..5, 0..20)) {
            prop_assert!(m.len() < 20);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("label");
        let mut b = TestRng::deterministic("label");
        let s = crate::collection::vec(0u32..1000, 5..6);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
