//! The [`ShardedOnlineKnn`] engine: the online KNN graph partitioned
//! across user shards, repaired in parallel.
//!
//! KIFF's per-user decomposition means [`OnlineKnn`]'s state splits
//! naturally along user boundaries: shared-item counters, neighbour heaps
//! and repair queues are all per-user. This module exploits that split to
//! scale `apply_batch` throughput with cores:
//!
//! * **Partitioning** — every user belongs to exactly one shard, decided
//!   by a pluggable [`Partitioner`] (hash by default). A shard privately
//!   owns its users' counters, heaps and in-neighbour sets.
//! * **Serial mutate, parallel repair** — dataset mutations are applied
//!   serially, and every counter adjustment is *pre-bucketed* to its
//!   owning shard while the mutation's point-in-time rater list is in
//!   hand; the expensive phases — counter maintenance (each shard applies
//!   exactly its own bucket, no scan of the batch's full event list) and
//!   similarity re-scoring — run on all shards concurrently through
//!   [`kiff_parallel::parallel_for_each_mut`], with every worker reading
//!   the shared dataset through a read-only [`DeltaView`].
//! * **Asynchronous cross-shard repair** — a repair of user `u` may
//!   evaluate a pair `(u, v)` whose other endpoint lives on another
//!   shard, and `v`'s heap (plus the reverse-edge set of any user `u`'s
//!   heap edits touch) belongs to that shard alone. Instead of locking,
//!   the owning shard is sent a `ShardMsg` through per-shard message
//!   queues; messages are drained at the start of the next repair round,
//!   so a shard never blocks on another shard's heaps. Rounds repeat
//!   until every queue and inbox is empty (quiescence), which a batch
//!   always reaches: repairs are budget-bounded and bookkeeping messages
//!   generate no further work.
//!
//! The result preserves the single-engine consistency model — counters
//! stay exact, the graph is eventually consistent with a bounded repair
//! radius — while distributing the repair work. A property test
//! (`tests/sharded_equivalence.rs`) holds the sharded replay to within ε
//! of the single-engine replay's recall on the same stream.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use kiff_collections::{FxHashMap, FxHashSet, SparseCounter};
use kiff_core::{build_rcs, CountingConfig};
use kiff_dataset::{Dataset, DeltaDataset, DeltaView, UserId};
use kiff_graph::{HeapChange, KnnGraph, KnnHeap, Neighbor, ShardReverse};
use kiff_parallel::{effective_threads, parallel_for_each_mut};
use kiff_similarity::ScorerWorkspace;

use crate::config::OnlineConfig;
use crate::engine::{batch_graph, OnlineKnn};
use crate::update::{Update, UpdateStats};

/// Assigns every user to a shard. Implementations must be deterministic —
/// routing consults the partitioner exactly once per user (at admission)
/// and caches the result, but audits and tools recompute it.
pub trait Partitioner: fmt::Debug + Send + Sync {
    /// The shard (in `0..num_shards`) owning `user`.
    fn shard_of(&self, user: UserId, num_shards: usize) -> usize;
}

/// Default partitioner: a Fibonacci multiplicative hash of the user id.
/// Spreads dense id ranges (the common case: ids are admission order)
/// evenly across shards with no state.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn shard_of(&self, user: UserId, num_shards: usize) -> usize {
        (user.wrapping_mul(0x9E37_79B9) >> 16) as usize % num_shards
    }
}

/// Round-robin partitioner: `user % num_shards`. Deterministic and easy
/// to reason about in tests and when replaying incidents; clusters less
/// evenly than [`HashPartitioner`] when user ids carry structure.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModuloPartitioner;

impl Partitioner for ModuloPartitioner {
    fn shard_of(&self, user: UserId, num_shards: usize) -> usize {
        user as usize % num_shards
    }
}

/// Sharding knobs of the [`ShardedOnlineKnn`] engine.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards users are partitioned across.
    pub num_shards: usize,
    /// Worker threads driving the shards (`None` = all available). More
    /// threads than shards is never useful; the engine caps internally.
    pub threads: Option<usize>,
    /// User-to-shard assignment policy.
    pub partitioner: Arc<dyn Partitioner>,
}

impl ShardConfig {
    /// `num_shards` shards, hash partitioning, all available threads.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards > 0, "num_shards must be positive");
        Self {
            num_shards,
            threads: None,
            partitioner: Arc::new(HashPartitioner),
        }
    }

    /// Sets the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the user-to-shard assignment policy.
    pub fn with_partitioner(mut self, partitioner: Arc<dyn Partitioner>) -> Self {
        self.partitioner = partitioner;
        self
    }
}

/// Where a user lives: its shard and its dense slot within that shard.
#[derive(Debug, Clone, Copy)]
struct Slot {
    shard: u32,
    idx: u32,
}

/// One cross-shard message. Every variant is applied by the shard owning
/// the user it names, at the start of the next repair round.
#[derive(Debug, Clone, Copy)]
enum ShardMsg {
    /// A similarity freshly evaluated by another shard's repair; `owner`
    /// is ours, and the value must land on its heap exactly as a local
    /// evaluation would.
    Scored {
        owner: UserId,
        other: UserId,
        sim: f64,
    },
    /// The KNN edge `source → target` appeared on `source`'s shard;
    /// `target` is ours and its in-neighbour set must record it.
    ReverseAdd { target: UserId, source: UserId },
    /// The KNN edge `source → target` was retracted on `source`'s shard.
    ReverseRemove { target: UserId, source: UserId },
}

/// One counter adjustment owned by a specific shard, bucketed serially at
/// mutation time — rater sets are point-in-time — so the parallel counter
/// phase applies exactly its own bucket instead of every shard scanning
/// the batch's full event list (the ROADMAP's high-shard-count
/// follow-up).
///
/// Each shard holds ONE list, pushed in event order and applied in that
/// order: counts may dip through zero transiently within a batch (an add
/// from one update funding a sub from a later one), so per-counter
/// operation order must match the mutation order — a phase split (all
/// bulks, then all scatters) would panic `SparseCounter::sub` on exactly
/// those interleavings.
///
/// The two sides of each `(user, rater)` pair have different shapes: the
/// mutated user's own counter absorbs the *whole* rater list (one
/// [`CounterAdj::Bulk`] sharing the mutation's `Arc`'d snapshot — no
/// per-pair memory, even for hot items), while each rater's counter lives
/// on its own shard and gets one [`CounterAdj::Scatter`] entry.
#[derive(Debug)]
enum CounterAdj {
    /// The mutated user's counter gains (or loses) one shared item with
    /// every user in `raters`.
    Bulk {
        /// Local slot of the mutated user's counter.
        slot: u32,
        /// Point-in-time co-rater snapshot (shared with the repair
        /// extras).
        raters: Arc<Vec<UserId>>,
        /// Increment (a rating appeared) or decrement (one was removed).
        added: bool,
    },
    /// One rater-side adjustment: the counter at local slot `slot` gains
    /// (or loses) one shared item with `other`.
    Scatter {
        /// Local slot of the owned counter.
        slot: u32,
        /// The co-rater whose shared count moves.
        other: UserId,
        /// Increment (a rating appeared) or decrement (one was removed).
        added: bool,
    },
}

/// A shard: the private online-engine state of the users it owns.
#[derive(Debug, Default)]
struct Shard {
    /// Global ids of owned users, by local slot.
    users: Vec<UserId>,
    /// Live shared-item counters of owned users (keys are global ids).
    counters: Vec<SparseCounter>,
    /// Neighbour heaps of owned users.
    heaps: Vec<KnnHeap>,
    /// In-neighbour sets of owned users (sources are global ids).
    incoming: ShardReverse,
    /// Owned users awaiting repair this batch.
    queue: VecDeque<UserId>,
    /// Targeted repair candidates for queued users, as shared
    /// point-in-time rater snapshots (one chunk per mutation).
    extras: FxHashMap<UserId, Vec<Arc<Vec<UserId>>>>,
    /// Owned users already repaired this batch.
    visited: FxHashSet<UserId>,
    /// Repairs performed this batch, against `budget`.
    repaired: u64,
    /// Repair budget for this batch (dirty users + propagation cap).
    budget: u64,
    /// Work accounting for this batch, merged into the engine's stats.
    stats: UpdateStats,
    /// Messages awaiting application by this shard.
    inbox: Vec<ShardMsg>,
    /// Messages produced this round, by destination shard.
    outbox: Vec<Vec<ShardMsg>>,
    /// Prepared-scorer arena for this shard's repairs.
    scorer_ws: ScorerWorkspace,
    /// Reusable repair staging buffer of `(candidate, similarity)`.
    scored: Vec<(UserId, f64)>,
}

impl Shard {
    fn new(num_shards: usize) -> Self {
        Self {
            outbox: vec![Vec::new(); num_shards],
            ..Self::default()
        }
    }

    /// Admits a user, returning its local slot.
    fn push_user(&mut self, k: usize, user: UserId) -> u32 {
        let idx = self.users.len() as u32;
        self.users.push(user);
        self.counters.push(SparseCounter::new());
        self.heaps.push(KnnHeap::new(k));
        self.incoming.push_slot();
        idx
    }

    /// Whether this shard still has work queued this round.
    fn has_work(&self) -> bool {
        !self.inbox.is_empty() || !self.queue.is_empty()
    }

    /// Applies this shard's pre-bucketed counter adjustments — exactly the
    /// ones it owns, in mutation order (see [`CounterAdj`] on why the
    /// order matters).
    fn apply_counter_adjustments(&mut self, bucket: &[CounterAdj]) {
        for adj in bucket {
            match adj {
                CounterAdj::Bulk {
                    slot,
                    raters,
                    added,
                } => {
                    let counter = &mut self.counters[*slot as usize];
                    for &v in raters.iter() {
                        if *added {
                            counter.add(v);
                        } else {
                            counter.sub(v);
                        }
                    }
                    self.stats.counter_adjustments += raters.len() as u64;
                }
                CounterAdj::Scatter { slot, other, added } => {
                    let counter = &mut self.counters[*slot as usize];
                    if *added {
                        counter.add(*other);
                    } else {
                        counter.sub(*other);
                    }
                    self.stats.counter_adjustments += 1;
                }
            }
        }
    }

    /// One repair round: drain the inbox, then repair queued users within
    /// the batch budget, emitting cross-shard messages into the outbox.
    fn step(&mut self, my: u32, view: DeltaView<'_>, assign: &[Slot], config: &OnlineConfig) {
        for msg in std::mem::take(&mut self.inbox) {
            match msg {
                ShardMsg::Scored { owner, other, sim } => {
                    self.land(my, owner, other, sim, assign);
                }
                ShardMsg::ReverseAdd { target, source } => {
                    self.incoming
                        .add(assign[target as usize].idx as usize, source);
                }
                ShardMsg::ReverseRemove { target, source } => {
                    self.incoming
                        .remove(assign[target as usize].idx as usize, source);
                }
            }
        }
        while self.repaired < self.budget {
            let Some(u) = self.queue.pop_front() else {
                break;
            };
            if !self.visited.insert(u) {
                continue;
            }
            self.repaired += 1;
            let targeted = self.extras.remove(&u).unwrap_or_default();
            self.repair(my, u, targeted, view, assign, config);
        }
        if self.repaired >= self.budget {
            // Budget exhausted: drop the remaining cascade, exactly as the
            // single engine's propagation loop does.
            self.queue.clear();
            self.extras.clear();
        }
    }

    /// Re-scores `u` (owned) against its targeted candidates, refreshed
    /// counter prefix, current neighbours and in-neighbours — the same
    /// candidate set as [`OnlineKnn`]'s repair.
    fn repair(
        &mut self,
        my: u32,
        u: UserId,
        targeted: Vec<Arc<Vec<UserId>>>,
        view: DeltaView<'_>,
        assign: &[Slot],
        config: &OnlineConfig,
    ) {
        let slot = assign[u as usize].idx as usize;
        let mut candidates: Vec<UserId> =
            Vec::with_capacity(targeted.iter().map(|c| c.len()).sum());
        for chunk in &targeted {
            candidates.extend_from_slice(chunk);
        }
        if candidates.len() > config.repair_width {
            // Deferred from the serial mutate phase: by now the counter
            // phase has run, so live counts rank the touched co-raters.
            // The single engine instead caps each mutation's chunk with
            // mid-batch counts; when this cap triggers the two engines
            // select (equally well-ranked but) different candidate
            // subsets — the reason 1-shard equivalence is exact only
            // while accumulated candidates stay below the width, and
            // ε-close above it.
            let counter = &self.counters[slot];
            candidates.select_nth_unstable_by_key(config.repair_width, |&v| {
                std::cmp::Reverse(counter.get(v))
            });
            candidates.truncate(config.repair_width);
        }
        candidates.extend(self.heaps[slot].ids());
        candidates.extend(self.incoming.in_neighbors(slot));
        candidates.extend(
            self.counters[slot]
                .top_by_count(config.repair_width)
                .into_iter()
                .map(|(v, _)| v),
        );
        candidates.sort_unstable();
        candidates.dedup();
        // Prepared scoring: `u`'s profile is preprocessed once, each
        // candidate scores in O(|UP_v|) — identical values to
        // `config.metric.eval` (the audits hold both to 1e-12).
        let mut scored = std::mem::take(&mut self.scored);
        scored.clear();
        {
            let scorer = self
                .scorer_ws
                .prepare(config.metric.kind(), view.profile(u));
            for v in candidates {
                if v == u {
                    continue;
                }
                scored.push((v, scorer.score(view.profile(v))));
            }
        }
        self.stats.sim_evals += scored.len() as u64;
        for &(v, s) in &scored {
            self.land(my, u, v, s, assign);
            let vslot = assign[v as usize];
            if vslot.shard == my {
                self.land(my, v, u, s, assign);
            } else {
                self.outbox[vslot.shard as usize].push(ShardMsg::Scored {
                    owner: v,
                    other: u,
                    sim: s,
                });
            }
        }
        self.scored = scored;
    }

    /// Lands an evaluated similarity on `owner`'s heap (`owner` is always
    /// ours), routing reverse-edge edits to the shard owning the other
    /// endpoint and enqueueing `owner` again when its neighbourhood
    /// degraded.
    fn land(&mut self, my: u32, owner: UserId, other: UserId, s: f64, assign: &[Slot]) {
        let slot = assign[owner as usize].idx as usize;
        if s <= 0.0 {
            if self.heaps[slot].remove(other) {
                self.retract_reverse(my, owner, other, assign);
                self.stats.edits.removals += 1;
                if !self.visited.contains(&owner) {
                    self.queue.push_back(owner);
                }
            }
        } else if let Some(old) = self.heaps[slot].reprioritize(other, s) {
            if old != s {
                self.stats.edits.reprioritized += 1;
                if s < old && !self.visited.contains(&owner) {
                    self.queue.push_back(owner);
                }
            }
        } else if let HeapChange::Inserted { evicted } = self.heaps[slot].offer(s, other) {
            self.stats.edits.inserts += 1;
            self.record_reverse(my, owner, other, assign);
            if let Some(e) = evicted {
                self.retract_reverse(my, owner, e, assign);
                self.stats.edits.evictions += 1;
            }
        }
    }

    /// Records `source → target` in the in-neighbour set of `target`,
    /// locally or by message.
    fn record_reverse(&mut self, my: u32, source: UserId, target: UserId, assign: &[Slot]) {
        let tslot = assign[target as usize];
        if tslot.shard == my {
            self.incoming.add(tslot.idx as usize, source);
        } else {
            self.outbox[tslot.shard as usize].push(ShardMsg::ReverseAdd { target, source });
        }
    }

    /// Retracts `source → target` from the in-neighbour set of `target`,
    /// locally or by message.
    fn retract_reverse(&mut self, my: u32, source: UserId, target: UserId, assign: &[Slot]) {
        let tslot = assign[target as usize];
        if tslot.shard == my {
            self.incoming.remove(tslot.idx as usize, source);
        } else {
            self.outbox[tslot.shard as usize].push(ShardMsg::ReverseRemove { target, source });
        }
    }
}

/// A KNN graph maintained incrementally by a pool of user shards.
///
/// Same public contract as [`OnlineKnn`] — apply updates, read
/// neighbourhoods, snapshot the graph — but `apply_batch` distributes
/// repair across shards and threads. Construct via
/// [`ShardedOnlineKnn::new`], [`ShardedOnlineKnn::from_graph`], or the
/// facade's `KnnGraphBuilder::into_sharded`.
#[derive(Debug)]
pub struct ShardedOnlineKnn {
    config: OnlineConfig,
    shard_config: ShardConfig,
    data: DeltaDataset,
    /// Shard/slot of every user, fixed at admission.
    assign: Vec<Slot>,
    shards: Vec<Shard>,
    lifetime: UpdateStats,
    snapshot: Mutex<Option<Arc<KnnGraph>>>,
}

impl ShardedOnlineKnn {
    /// Builds the initial graph with batch KIFF, then shards it for
    /// streaming.
    pub fn new(dataset: &Dataset, config: OnlineConfig, shards: ShardConfig) -> Self {
        let graph = batch_graph(dataset, config.k, config.metric);
        Self::from_graph(dataset, &graph, config, shards)
    }

    /// Shards an already-built graph (any construction algorithm) for
    /// streaming. Counters are seeded from one unpivoted batch counting
    /// pass, exactly like [`OnlineKnn::from_graph`].
    pub fn from_graph(
        dataset: &Dataset,
        graph: &KnnGraph,
        config: OnlineConfig,
        shard_config: ShardConfig,
    ) -> Self {
        assert_eq!(
            graph.num_users(),
            dataset.num_users(),
            "graph and dataset disagree on the user count"
        );
        let n = dataset.num_users();
        let num_shards = shard_config.num_shards;
        let rcs = build_rcs(
            dataset,
            &CountingConfig {
                pivot: false,
                keep_counts: true,
                ..Default::default()
            },
        );
        let mut shards: Vec<Shard> = (0..num_shards).map(|_| Shard::new(num_shards)).collect();
        let mut assign = Vec::with_capacity(n);
        for u in 0..n as UserId {
            let s = shard_config.partitioner.shard_of(u, num_shards);
            let shard = &mut shards[s];
            let idx = shard.push_user(config.k, u);
            assign.push(Slot {
                shard: s as u32,
                idx,
            });
            let slot = idx as usize;
            let ids = rcs.rcs(u);
            let counts = rcs.counts(u).expect("keep_counts set");
            let counter = &mut shard.counters[slot];
            for (&v, &c) in ids.iter().zip(counts) {
                counter.add_n(v, c);
            }
            for nb in graph.neighbors(u) {
                shard.heaps[slot].update(nb.sim, nb.id);
            }
        }
        // Mirror the heaps into the owning shards' in-neighbour sets.
        let mut engine = Self {
            config,
            shard_config,
            data: DeltaDataset::new(dataset.clone()),
            assign,
            shards,
            lifetime: UpdateStats::default(),
            snapshot: Mutex::new(None),
        };
        for u in 0..n as UserId {
            let slot = engine.assign[u as usize];
            for id in engine.shards[slot.shard as usize].heaps[slot.idx as usize].ids() {
                let t = engine.assign[id as usize];
                engine.shards[t.shard as usize]
                    .incoming
                    .add(t.idx as usize, u);
            }
        }
        engine
    }

    /// The engine's online configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// The engine's sharding configuration.
    pub fn shard_config(&self) -> &ShardConfig {
        &self.shard_config
    }

    /// Neighbourhood size `k`.
    pub fn k(&self) -> usize {
        self.config.k
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Current number of users.
    pub fn num_users(&self) -> usize {
        self.data.num_users()
    }

    /// The live dataset view.
    pub fn data(&self) -> &DeltaDataset {
        &self.data
    }

    /// Work accumulated over the engine's lifetime.
    pub fn lifetime_stats(&self) -> &UpdateStats {
        &self.lifetime
    }

    /// The shard owning `u`.
    pub fn shard_of(&self, u: UserId) -> usize {
        self.assign[u as usize].shard as usize
    }

    /// Users owned per shard — the balance signal a rebalancer would act
    /// on.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.users.len()).collect()
    }

    /// `u`'s current neighbours, best first.
    pub fn neighbors(&self, u: UserId) -> Vec<Neighbor> {
        let slot = self.assign[u as usize];
        self.shards[slot.shard as usize].heaps[slot.idx as usize].sorted_neighbors()
    }

    /// The live shared-item count `|UP_u ∩ UP_v|` (0 when disjoint), read
    /// from the shard owning `u`.
    pub fn shared_count(&self, u: UserId, v: UserId) -> u32 {
        let slot = self.assign[u as usize];
        self.shards[slot.shard as usize].counters[slot.idx as usize].get(v)
    }

    /// Snapshots the live graph. Cached between mutations like
    /// [`OnlineKnn::graph`].
    pub fn graph(&self) -> Arc<KnnGraph> {
        let mut cache = self.snapshot.lock().expect("snapshot lock poisoned");
        if let Some(g) = cache.as_ref() {
            return Arc::clone(g);
        }
        let neighbors = (0..self.num_users() as UserId)
            .map(|u| {
                let slot = self.assign[u as usize];
                self.shards[slot.shard as usize].heaps[slot.idx as usize].sorted_neighbors()
            })
            .collect();
        let g = Arc::new(KnnGraph::from_neighbors(self.config.k, neighbors));
        *cache = Some(Arc::clone(&g));
        g
    }

    /// Appends a user with an empty profile, returning its id.
    pub fn add_user(&mut self) -> UserId {
        let id = self.data.add_user();
        let s = self
            .shard_config
            .partitioner
            .shard_of(id, self.shards.len());
        let idx = self.shards[s].push_user(self.config.k, id);
        self.assign.push(Slot {
            shard: s as u32,
            idx,
        });
        *self.snapshot.get_mut().expect("snapshot lock poisoned") = None;
        id
    }

    /// Applies one mutation. Prefer [`ShardedOnlineKnn::apply_batch`]:
    /// single updates rarely have enough repair work to amortise the
    /// cross-shard coordination.
    pub fn apply(&mut self, update: Update) -> UpdateStats {
        self.apply_batch(std::iter::once(update))
    }

    /// Applies a batch of mutations: serial dataset mutation, then
    /// parallel counter maintenance and repair across shards, with
    /// cross-shard work exchanged through message queues between rounds.
    pub fn apply_batch(&mut self, updates: impl IntoIterator<Item = Update>) -> UpdateStats {
        let mut stats = UpdateStats::default();
        let mut adjustments: Vec<Vec<CounterAdj>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();

        // Phase 1 (serial): mutate the dataset view, bucket every counter
        // adjustment by its owning shard while the point-in-time rater set
        // is in hand, and route each dirty user to its owning shard.
        for update in updates {
            stats.updates += 1;
            if let Some((user, targeted)) = self.mutate(update, &mut adjustments) {
                let shard = &mut self.shards[self.assign[user as usize].shard as usize];
                match shard.extras.entry(user) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        e.get_mut().extend(targeted);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(targeted.into_iter().collect());
                        shard.queue.push_back(user);
                    }
                }
            }
        }

        let threads = effective_threads(self.shard_config.threads).min(self.shards.len());
        let view = self.data.view();
        let assign = &self.assign;
        let config = &self.config;

        for shard in &mut self.shards {
            shard.budget = shard.queue.len() as u64 + config.max_propagation as u64;
        }

        // Phase 2 (parallel): every shard applies exactly its own
        // pre-bucketed counter adjustments.
        parallel_for_each_mut(threads, &mut self.shards, |my, shard| {
            shard.apply_counter_adjustments(&adjustments[my]);
        });

        // Phase 3 (parallel rounds): repair until quiescence. Each round
        // drains inboxes and queues shard-locally; produced messages are
        // routed between rounds.
        while self.shards.iter().any(Shard::has_work) {
            parallel_for_each_mut(threads, &mut self.shards, |my, shard| {
                shard.step(my as u32, view, assign, config);
            });
            for s in 0..self.shards.len() {
                for d in 0..self.shards.len() {
                    let msgs = std::mem::take(&mut self.shards[s].outbox[d]);
                    self.shards[d].inbox.extend(msgs);
                }
            }
        }

        // Phase 4 (serial): merge accounting, reset per-batch state,
        // re-compact storage if the overlay grew past the threshold.
        for shard in &mut self.shards {
            stats.merge(&std::mem::take(&mut shard.stats));
            stats.repaired_users += shard.repaired;
            shard.repaired = 0;
            shard.visited.clear();
        }
        let n = self.data.num_users().max(1);
        if (self.data.overlay_users() as f64) >= self.config.compaction_threshold * n as f64 {
            self.data.compact();
            stats.compacted = true;
        }
        if stats.edits.total() > 0 {
            *self.snapshot.get_mut().expect("snapshot lock poisoned") = None;
        }
        self.lifetime.merge(&stats);
        stats
    }

    /// Applies one mutation to the dataset view, bucketing its counter
    /// adjustments by owning shard, and returns the dirty user with its
    /// targeted candidate chunk (uncapped: the owning shard caps against
    /// live counts after the counter phase). Mirrors [`OnlineKnn`]'s
    /// mutate step.
    fn mutate(
        &mut self,
        update: Update,
        adjustments: &mut [Vec<CounterAdj>],
    ) -> Option<(UserId, Option<Arc<Vec<UserId>>>)> {
        match update {
            Update::AddRating { user, item, rating } => {
                while (user as usize) >= self.data.num_users() {
                    self.add_user();
                }
                let mut raters = self.data.item_raters(item);
                raters.retain(|&v| v != user);
                let raters = Arc::new(raters);
                if self.data.add_rating(user, item, rating) {
                    Self::bucket_adjustments(&self.assign, adjustments, user, &raters, true);
                }
                Some((user, Some(raters)))
            }
            Update::AddUser => {
                self.add_user();
                None
            }
            Update::RemoveRating { user, item } => {
                if (user as usize) >= self.data.num_users() || !self.data.remove_rating(user, item)
                {
                    return None;
                }
                let mut raters = self.data.item_raters(item);
                raters.retain(|&v| v != user);
                let raters = Arc::new(raters);
                Self::bucket_adjustments(&self.assign, adjustments, user, &raters, false);
                Some((user, None))
            }
        }
    }

    /// Routes both directions of every `(user, rater)` counter adjustment
    /// to the shard owning each endpoint's counter: the user side as one
    /// `Arc`-shared bulk entry, the rater side as per-pair scatters. All
    /// entries land in event order (the caller is the serial mutate loop),
    /// preserving per-counter operation order across the batch.
    fn bucket_adjustments(
        assign: &[Slot],
        adjustments: &mut [Vec<CounterAdj>],
        user: UserId,
        raters: &Arc<Vec<UserId>>,
        added: bool,
    ) {
        let own = assign[user as usize];
        adjustments[own.shard as usize].push(CounterAdj::Bulk {
            slot: own.idx,
            raters: Arc::clone(raters),
            added,
        });
        for &v in raters.iter() {
            let vslot = assign[v as usize];
            adjustments[vslot.shard as usize].push(CounterAdj::Scatter {
                slot: vslot.idx,
                other: user,
                added,
            });
        }
    }

    /// Exhaustively checks the cross-shard invariants (`O(n·k)`; tests
    /// and tools only): every heap edge `u → v` is mirrored in the
    /// in-neighbour set held by `v`'s shard, every recorded in-neighbour
    /// points back, and every user's cached slot matches the partitioner.
    ///
    /// # Panics
    /// Panics on the first violated invariant.
    pub fn validate_invariants(&self) {
        for u in 0..self.num_users() as UserId {
            let slot = self.assign[u as usize];
            assert_eq!(
                slot.shard as usize,
                self.shard_config.partitioner.shard_of(u, self.shards.len()),
                "user {u} cached on the wrong shard"
            );
            let shard = &self.shards[slot.shard as usize];
            assert_eq!(shard.users[slot.idx as usize], u, "slot map corrupt at {u}");
            for id in shard.heaps[slot.idx as usize].ids() {
                let t = self.assign[id as usize];
                assert!(
                    self.shards[t.shard as usize]
                        .incoming
                        .contains(t.idx as usize, u),
                    "edge {u} -> {id} missing from shard {} incoming",
                    t.shard
                );
            }
            for w in shard.incoming.in_neighbors(slot.idx as usize) {
                let ws = self.assign[w as usize];
                assert!(
                    self.shards[ws.shard as usize].heaps[ws.idx as usize].contains(u),
                    "reverse ghost {w} -> {u}"
                );
            }
        }
    }
}

/// Conversion that preserves the live graph: wraps a single engine's
/// state into shards (used by the builder facade's `into_sharded`).
impl ShardedOnlineKnn {
    /// Shards the state of a single-threaded engine. The dataset view is
    /// re-based on the engine's current state; the graph transfers
    /// edge-for-edge.
    pub fn from_online(engine: &OnlineKnn, shard_config: ShardConfig) -> Self {
        let dataset = engine.data().to_dataset();
        let graph = engine.graph();
        Self::from_graph(&dataset, &graph, engine.config().clone(), shard_config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::dataset::figure2_toy;
    use kiff_similarity::intersect_count;

    fn toy(shards: usize) -> ShardedOnlineKnn {
        ShardedOnlineKnn::new(
            &figure2_toy(),
            OnlineConfig::new(2),
            ShardConfig::new(shards).with_threads(2),
        )
    }

    /// Counter + stored-similarity audit against brute force, plus the
    /// cross-shard invariants.
    fn audit(engine: &ShardedOnlineKnn) {
        engine.validate_invariants();
        let n = engine.num_users() as UserId;
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let shared = intersect_count(
                    engine.data().profile(u).items,
                    engine.data().profile(v).items,
                );
                assert_eq!(
                    engine.shared_count(u, v) as usize,
                    shared,
                    "counter ({u}, {v})"
                );
            }
            for nb in engine.neighbors(u) {
                let fresh = engine
                    .config()
                    .metric
                    .eval(engine.data().profile(u), engine.data().profile(nb.id));
                assert!(
                    (nb.sim - fresh).abs() < 1e-12,
                    "stale sim on edge {u} -> {}: stored {} fresh {fresh}",
                    nb.id,
                    nb.sim
                );
            }
        }
    }

    #[test]
    fn seeded_state_matches_batch_for_any_shard_count() {
        for shards in [1, 2, 3, 8] {
            let engine = toy(shards);
            assert_eq!(engine.num_shards(), shards);
            assert_eq!(engine.shard_sizes().iter().sum::<usize>(), 4);
            audit(&engine);
            assert_eq!(engine.neighbors(0)[0].id, 1, "{shards} shards");
            assert_eq!(engine.neighbors(2)[0].id, 3, "{shards} shards");
        }
    }

    #[test]
    fn add_rating_connects_cross_shard_pairs() {
        // Modulo partitioning on the toy puts Carl(2) and Alice(0)/Bob(1)
        // on different shards, so the new edges must flow through the
        // message queue.
        let mut engine = ShardedOnlineKnn::new(
            &figure2_toy(),
            OnlineConfig::new(2),
            ShardConfig::new(2)
                .with_threads(2)
                .with_partitioner(Arc::new(ModuloPartitioner)),
        );
        assert_ne!(engine.shard_of(2), engine.shard_of(1));
        let stats = engine.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        assert_eq!(stats.updates, 1);
        assert!(stats.sim_evals > 0);
        assert!(stats.counter_adjustments >= 4, "two new sharing pairs");
        audit(&engine);
        let ids: Vec<UserId> = engine.neighbors(2).iter().map(|nb| nb.id).collect();
        assert!(
            ids.contains(&0) || ids.contains(&1),
            "coffee drinkers found"
        );
    }

    #[test]
    fn remove_rating_severs_cross_shard_pairs() {
        let mut engine = toy(3);
        let stats = engine.apply(Update::RemoveRating { user: 1, item: 1 });
        assert!(stats.edits.removals > 0);
        audit(&engine);
        assert!(!engine.neighbors(0).iter().any(|nb| nb.id == 1));
        assert!(!engine.neighbors(1).iter().any(|nb| nb.id == 0));
        // Removing it again is a no-op.
        let stats = engine.apply(Update::RemoveRating { user: 1, item: 1 });
        assert_eq!(stats.sim_evals, 0);
        assert_eq!(stats.counter_adjustments, 0);
    }

    #[test]
    fn new_users_land_on_their_shard() {
        let mut engine = toy(2);
        let u = engine.add_user();
        assert_eq!(u, 4);
        assert_eq!(
            engine.shard_of(u),
            HashPartitioner.shard_of(u, 2),
            "partitioner decides placement"
        );
        engine.apply(Update::AddRating {
            user: u,
            item: 3,
            rating: 1.0,
        });
        audit(&engine);
        let ids: Vec<UserId> = engine.neighbors(u).iter().map(|nb| nb.id).collect();
        assert_eq!(ids, vec![2, 3]);
        assert!(engine.neighbors(2).iter().any(|nb| nb.id == u));
    }

    #[test]
    fn implicit_user_growth_on_add_rating() {
        let mut engine = toy(2);
        engine.apply(Update::AddRating {
            user: 6,
            item: 0,
            rating: 1.0,
        });
        assert_eq!(engine.num_users(), 7, "users 4..=6 created");
        audit(&engine);
        assert!(
            engine.neighbors(6).iter().any(|nb| nb.id == 0),
            "shares book"
        );
    }

    #[test]
    fn one_shard_matches_single_engine_exactly() {
        let updates = vec![
            Update::AddRating {
                user: 2,
                item: 1,
                rating: 1.0,
            },
            Update::AddRating {
                user: 0,
                item: 2,
                rating: 2.0,
            },
            Update::RemoveRating { user: 3, item: 3 },
        ];
        let mut single = OnlineKnn::new(&figure2_toy(), OnlineConfig::new(2));
        let mut sharded = toy(1);
        let single_stats = single.apply_batch(updates.clone());
        let sharded_stats = sharded.apply_batch(updates);
        for u in 0..single.num_users() as UserId {
            assert_eq!(
                single.neighbors(u),
                sharded.neighbors(u),
                "user {u} diverged"
            );
        }
        assert_eq!(single_stats.sim_evals, sharded_stats.sim_evals);
        assert_eq!(
            single_stats.counter_adjustments,
            sharded_stats.counter_adjustments
        );
        audit(&sharded);
    }

    #[test]
    fn batched_add_then_remove_interleaves_counter_ops_safely() {
        // Regression: Alice(0) and Carl(2) share nothing initially. In one
        // batch Alice picks up shopping(3) (scattered add on Carl's
        // counter) and Carl then drops shopping (bulk sub on Carl's
        // counter, whose rater snapshot now includes Alice). Applying all
        // bulks before all scatters would sub Carl->Alice at count 0 and
        // panic; event-ordered application must handle it.
        for shards in [1, 2, 4] {
            let mut engine = toy(shards);
            let stats = engine.apply_batch(vec![
                Update::AddRating {
                    user: 0,
                    item: 3,
                    rating: 1.0,
                },
                Update::RemoveRating { user: 2, item: 3 },
            ]);
            assert_eq!(stats.updates, 2, "{shards} shards");
            audit(&engine);
            assert_eq!(engine.shared_count(2, 0), 0, "{shards} shards");
        }
    }

    #[test]
    fn batch_equals_sequential_on_final_neighborhoods() {
        let updates = vec![
            Update::AddRating {
                user: 2,
                item: 1,
                rating: 1.0,
            },
            Update::AddRating {
                user: 0,
                item: 2,
                rating: 2.0,
            },
            Update::RemoveRating { user: 3, item: 3 },
        ];
        let mut sequential = toy(2);
        for u in updates.clone() {
            sequential.apply(u);
        }
        let mut batched = toy(2);
        let stats = batched.apply_batch(updates);
        assert_eq!(stats.updates, 3);
        audit(&sequential);
        audit(&batched);
        for u in 0..sequential.num_users() as UserId {
            assert_eq!(
                sequential.neighbors(u),
                batched.neighbors(u),
                "user {u} diverged"
            );
        }
    }

    #[test]
    fn graph_snapshot_cached_and_invalidated() {
        let mut engine = toy(2);
        let first = engine.graph();
        assert!(Arc::ptr_eq(&first, &engine.graph()));
        engine.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        let second = engine.graph();
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(second.num_users(), 4);
    }

    #[test]
    fn from_online_preserves_the_live_graph() {
        let mut single = OnlineKnn::new(&figure2_toy(), OnlineConfig::new(2));
        single.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        let sharded = ShardedOnlineKnn::from_online(&single, ShardConfig::new(2));
        for u in 0..single.num_users() as UserId {
            assert_eq!(single.neighbors(u), sharded.neighbors(u), "user {u}");
        }
        audit(&sharded);
    }

    #[test]
    fn compaction_triggers_and_preserves_state() {
        let mut engine = ShardedOnlineKnn::new(
            &figure2_toy(),
            OnlineConfig::new(2).with_compaction_threshold(0.2),
            ShardConfig::new(2),
        );
        let stats = engine.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        assert!(stats.compacted, "20% threshold trips on the first overlay");
        assert_eq!(engine.data().overlay_users(), 0);
        audit(&engine);
    }

    #[test]
    #[should_panic(expected = "num_shards must be positive")]
    fn zero_shards_rejected() {
        let _ = ShardConfig::new(0);
    }
}
