//! Dataset descriptors (Table I) and profile-size distributions (Fig. 4).

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// The per-dataset descriptor row of Table I: sizes, density, and average
/// profile sizes on both sides of the bipartite graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// `|U|`.
    pub num_users: usize,
    /// `|I|`.
    pub num_items: usize,
    /// `|E|`.
    pub num_ratings: usize,
    /// `|E| / (|U|·|I|)` as a fraction (Table I prints it as a percentage).
    pub density: f64,
    /// Average user profile size `|E| / |U|`.
    pub avg_user_profile: f64,
    /// Average item profile size `|E| / |I|`.
    pub avg_item_profile: f64,
    /// Largest user profile.
    pub max_user_profile: usize,
    /// Largest item profile.
    pub max_item_profile: usize,
}

impl DatasetStats {
    /// Computes the descriptor for `dataset`.
    pub fn compute(dataset: &Dataset) -> Self {
        let num_users = dataset.num_users();
        let num_items = dataset.num_items();
        let num_ratings = dataset.num_ratings();
        let max_user_profile = (0..num_users as u32)
            .map(|u| dataset.user_degree(u))
            .max()
            .unwrap_or(0);
        let items = dataset.item_profiles();
        let max_item_profile = (0..num_items as u32)
            .map(|i| items.degree(i))
            .max()
            .unwrap_or(0);
        Self {
            name: dataset.name().to_string(),
            num_users,
            num_items,
            num_ratings,
            density: dataset.density(),
            avg_user_profile: if num_users == 0 {
                0.0
            } else {
                num_ratings as f64 / num_users as f64
            },
            avg_item_profile: if num_items == 0 {
                0.0
            } else {
                num_ratings as f64 / num_items as f64
            },
            max_user_profile,
            max_item_profile,
        }
    }

    /// Density as the percentage Table I prints.
    pub fn density_percent(&self) -> f64 {
        self.density * 100.0
    }
}

/// Sizes of every user profile, `|UP_u|` for all `u` (Fig. 4a input).
pub fn user_profile_sizes(dataset: &Dataset) -> Vec<usize> {
    (0..dataset.num_users() as u32)
        .map(|u| dataset.user_degree(u))
        .collect()
}

/// Sizes of every item profile, `|IP_i|` for all `i` (Fig. 4b input).
pub fn item_profile_sizes(dataset: &Dataset) -> Vec<usize> {
    let items = dataset.item_profiles();
    (0..dataset.num_items() as u32)
        .map(|i| items.degree(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::figure2_toy;

    #[test]
    fn toy_stats() {
        let stats = DatasetStats::compute(&figure2_toy());
        assert_eq!(stats.num_users, 4);
        assert_eq!(stats.num_items, 4);
        assert_eq!(stats.num_ratings, 6);
        assert!((stats.density - 0.375).abs() < 1e-12);
        assert!((stats.density_percent() - 37.5).abs() < 1e-9);
        assert!((stats.avg_user_profile - 1.5).abs() < 1e-12);
        assert!((stats.avg_item_profile - 1.5).abs() < 1e-12);
        assert_eq!(stats.max_user_profile, 2);
        assert_eq!(stats.max_item_profile, 2);
    }

    #[test]
    fn profile_size_vectors() {
        let ds = figure2_toy();
        assert_eq!(user_profile_sizes(&ds), vec![2, 2, 1, 1]);
        assert_eq!(item_profile_sizes(&ds), vec![1, 2, 1, 2]);
    }

    #[test]
    fn stats_serde_round_trip() {
        let stats = DatasetStats::compute(&figure2_toy());
        let json = serde_json::to_string(&stats).unwrap();
        let back: DatasetStats = serde_json::from_str(&json).unwrap();
        assert_eq!(stats, back);
    }
}
