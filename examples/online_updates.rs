//! Streaming maintenance vs. rebuilding from scratch.
//!
//! Holds out the last 10% of a MovieLens-like dataset's ratings, builds a
//! KIFF graph on the remaining 90%, then streams the held-out ratings
//! through the `kiff-online` engine one by one — printing what each
//! update cost and, at the end, how close the incrementally maintained
//! graph gets to a full batch rebuild of the final dataset at a tiny
//! fraction of its similarity evaluations.
//!
//! Run with: `cargo run --release --example online_updates`

use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use kiff::core::{Kiff, KiffConfig};
use kiff::dataset::generators::movielens::movielens_like;
use kiff::dataset::subsample_ratings;
use kiff::dataset::DatasetBuilder;
use kiff::graph::{exact_knn, recall};
use kiff::online::{OnlineConfig, OnlineKnn, Update};
use kiff::similarity::WeightedCosine;

fn main() {
    let k = 10;
    let seed = 42;
    // ML-4 of the paper's density family (Table IX): the MovieLens preset
    // subsampled to ~2.9% density — the sparse regime KIFF targets.
    let ml1 = movielens_like(0.2, seed);
    let full = subsample_ratings(&ml1, ml1.num_ratings() * 13 / 100, seed).with_name("ML-4-like");
    println!(
        "dataset : {} — {} users, {} items, {} ratings",
        full.name(),
        full.num_users(),
        full.num_items(),
        full.num_ratings()
    );

    // Hold out a random 10% of the ratings as "the future".
    let mut triples: Vec<(u32, u32, f32)> = full.iter_ratings().collect();
    triples.shuffle(&mut StdRng::seed_from_u64(seed));
    let split = triples.len() * 9 / 10;
    let (past, future) = triples.split_at(split);
    let mut builder = DatasetBuilder::new("ml-past", full.num_users(), full.num_items());
    builder.reserve(past.len());
    for &(u, i, r) in past {
        builder.add_rating(u, i, r);
    }
    let base = builder.build();
    println!(
        "holdout : {} ratings stream in after the initial build\n",
        future.len()
    );

    // Build the batch graph on the past, wrap it for streaming.
    let build_start = Instant::now();
    let mut engine = OnlineKnn::new(&base, OnlineConfig::new(k));
    println!("initial KIFF build + seeding: {:?}", build_start.elapsed());

    // Stream the future.
    let stream_start = Instant::now();
    let mut streamed = 0u64;
    for &(u, i, r) in future {
        let stats = engine.apply(Update::AddRating {
            user: u,
            item: i,
            rating: r,
        });
        streamed += 1;
        if streamed.is_multiple_of(250) {
            println!(
                "update {streamed:>5}: {} sim evals, {} heap edits, {} users repaired",
                stats.sim_evals,
                stats.edits.total(),
                stats.repaired_users
            );
        }
    }
    let stream_time = stream_start.elapsed();
    let life = engine.lifetime_stats();
    println!(
        "\nstreamed {} updates in {:?} ({:.0} updates/s)",
        life.updates,
        stream_time,
        life.updates as f64 / stream_time.as_secs_f64()
    );
    println!(
        "per update: {:.1} sim evals, {:.2} repaired edges",
        life.sim_evals_per_update(),
        life.edits_per_update()
    );

    // What would a full rebuild of the final dataset have cost?
    let final_dataset = engine.data().to_dataset();
    let rebuild_start = Instant::now();
    let sim = WeightedCosine::fit(&final_dataset);
    let rebuild = Kiff::new(KiffConfig::new(k)).run(&final_dataset, &sim);
    let rebuild_time = rebuild_start.elapsed();

    let exact = exact_knn(&final_dataset, &sim, k, None);
    let online_recall = recall(&exact, &engine.graph());
    let rebuild_recall = recall(&exact, &rebuild.graph);
    println!(
        "\nfull rebuild: {} sim evals in {:?} (recall {:.4})",
        rebuild.stats.sim_evals, rebuild_time, rebuild_recall
    );
    println!("online graph: recall {online_recall:.4}");
    println!(
        "work per update is {:.0}x below one rebuild ({:.1} vs {} evals)",
        rebuild.stats.sim_evals as f64 / life.sim_evals_per_update(),
        life.sim_evals_per_update(),
        rebuild.stats.sim_evals
    );
}
