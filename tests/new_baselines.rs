//! Cross-crate behaviour of the §VI related-work baselines (L2Knng, LSH)
//! against KIFF and the exact constructions.

use proptest::prelude::*;

use kiff::prelude::*;
use kiff_baselines::{L2Knng, L2KnngConfig, Lsh, LshConfig, LshFamily};
use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
use kiff_dataset::generators::RatingModel;
use kiff_graph::exact_knn_brute;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (
        2usize..35,
        2usize..25,
        proptest::collection::vec((0u32..35, 0u32..25, 1u32..5), 1..250),
    )
        .prop_map(|(nu, ni, triples)| {
            let mut b = DatasetBuilder::new("prop-base", nu, ni);
            for (u, i, r) in triples {
                b.add_rating(u % nu as u32, i % ni as u32, r as f32);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// L2Knng is exact under cosine on any random dataset and any k —
    /// its pruning may never discard a true neighbour.
    #[test]
    fn l2knng_exact_on_random_data(ds in arb_dataset(), k in 1usize..8) {
        let sim = WeightedCosine::fit(&ds);
        let (graph, _) = L2Knng::new(L2KnngConfig::new(k)).run(&ds);
        let brute = exact_knn_brute(&ds, &sim, k, Some(1));
        let r = recall(&brute, &graph);
        prop_assert!((r - 1.0).abs() < 1e-12, "recall = {}", r);
    }

    /// L2Knng's scan rate is never above the brute-force bound of 1, and
    /// its pruned + evaluated pairs never exceed the encountered pairs.
    #[test]
    fn l2knng_accounting_consistent(ds in arb_dataset(), k in 1usize..6) {
        let (_, stats) = L2Knng::new(L2KnngConfig::new(k)).run(&ds);
        prop_assert!(stats.pruned_pairs <= stats.candidate_pairs);
        // Approximate-phase evals come on top of exact-phase ones, so
        // compare only the exact phase against its candidate count.
        prop_assert!(stats.candidate_pairs as f64
            <= ds.num_users() as f64 * (ds.num_users() as f64 - 1.0) / 2.0 + 1e-9);
    }

    /// LSH never produces self-loops or duplicate neighbours, and its
    /// scan rate stays at or below 1 (each pair scored at most once).
    #[test]
    fn lsh_graph_is_well_formed(ds in arb_dataset(), seed in 0u64..500) {
        let sim = WeightedCosine::fit(&ds);
        let config = LshConfig { seed, ..LshConfig::new(4) };
        let (graph, stats) = Lsh::new(config).run(&ds, &sim);
        prop_assert!(stats.scan_rate <= 1.0 + 1e-9, "scan rate {}", stats.scan_rate);
        for u in 0..ds.num_users() as u32 {
            let ids: Vec<u32> = graph.neighbors(u).iter().map(|n| n.id).collect();
            prop_assert!(!ids.contains(&u), "self loop at {}", u);
            let mut d = ids.clone();
            d.sort_unstable();
            d.dedup();
            prop_assert_eq!(d.len(), ids.len(), "duplicates at {}", u);
        }
    }
}

/// On a sparse dataset, every exact route (brute, inverted index, KIFF
/// γ=∞, L2Knng) agrees in similarity values.
#[test]
fn all_exact_routes_agree() {
    let ds = generate_bipartite(&BipartiteConfig::tiny("exact-routes", 211));
    let sim = WeightedCosine::fit(&ds);
    let k = 8;
    let brute = exact_knn_brute(&ds, &sim, k, Some(1));
    let inverted = exact_knn(&ds, &sim, k, Some(1));
    let (l2, _) = L2Knng::new(L2KnngConfig::new(k)).run(&ds);
    assert!((recall(&brute, &inverted) - 1.0).abs() < 1e-12);
    assert!((recall(&brute, &l2) - 1.0).abs() < 1e-12);
    // And the exact routes score each other symmetrically.
    assert!((recall(&l2, &inverted) - 1.0).abs() < 1e-12);
}

/// §VI: "these approaches [LSH] are … optimized for very dense data
/// sets. By contrast, KIFF targets sparse datasets." On our sparse
/// standard workload, KIFF must dominate LSH in recall.
#[test]
fn kiff_beats_lsh_on_sparse_data() {
    let ds = generate_bipartite(&BipartiteConfig::tiny("kiff-vs-lsh", 223));
    let sim = WeightedCosine::fit(&ds);
    let k = 10;
    let exact = exact_knn(&ds, &sim, k, Some(1));
    let kiff = Kiff::new(KiffConfig::new(k)).run(&ds, &sim).graph;
    let (lsh, _) = Lsh::new(LshConfig::new(k)).run(&ds, &sim);
    let (r_kiff, r_lsh) = (recall(&exact, &kiff), recall(&exact, &lsh));
    assert!(
        r_kiff > r_lsh,
        "KIFF {r_kiff} should beat LSH {r_lsh} on sparse data"
    );
}

/// MinHash banding under Jaccard behaves like hyperplane banding under
/// cosine: a usable graph with a sub-quadratic scan rate.
#[test]
fn minhash_pipeline_end_to_end() {
    let ds = generate_bipartite(&BipartiteConfig {
        rating_model: RatingModel::Binary,
        ..BipartiteConfig::tiny("minhash-e2e", 227)
    });
    let config = LshConfig {
        family: LshFamily::MinHash {
            hashes: 96,
            band_size: 3,
        },
        ..LshConfig::minhash(8)
    };
    let (graph, stats) = Lsh::new(config).run(&ds, &Jaccard);
    let exact = exact_knn(&ds, &Jaccard, 8, Some(1));
    let r = recall(&exact, &graph);
    assert!(r > 0.4, "recall = {r}");
    assert!(stats.scan_rate < 1.0);
    assert!(stats.buckets > 0);
}

/// The L2Knng claim of §VI — pruning "requires results from the remaining
/// n−1 objects" — shows up as pruning power that *grows* with the user id
/// processed (later users face higher thresholds). Sanity-check the
/// aggregate: pruning discards a nontrivial share of encountered pairs on
/// a workload with skewed similarities.
#[test]
fn l2knng_prunes_meaningful_fraction() {
    let ds = generate_bipartite(&BipartiteConfig {
        rating_model: RatingModel::Stars { half_steps: true },
        ..BipartiteConfig::tiny("l2-frac", 229)
    });
    let (_, stats) = L2Knng::new(L2KnngConfig::new(5)).run(&ds);
    let frac = stats.pruned_pairs as f64 / stats.candidate_pairs.max(1) as f64;
    assert!(frac > 0.05, "pruned fraction = {frac}");
}
