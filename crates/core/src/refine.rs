//! The refinement phase: greedy convergence over the Ranked Candidate Sets
//! (Algorithm 1, lines 5–16), instrumented.
//!
//! Two hot-loop policies hang off [`KiffConfig`]:
//!
//! * [`ScoringMode`] — by default every user's profile is prepared once
//!   per iteration through [`Similarity::scorer`] and each popped
//!   candidate scores in `O(|UP_v|)`; the pairwise mode re-merges raw
//!   profiles per candidate (the pre-scorer behaviour, kept as the
//!   `counting` bench baseline). Both modes produce identical graphs.
//! * [`TimingMode`] — per-activity wall-clock accumulation is sampled
//!   (1 in 64 scheduling chunks) by default so the per-user timestamp
//!   syscalls disappear from the steady state; totals are rescaled by the
//!   timed fraction and reported with their coverage in [`KiffStats`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use kiff_dataset::Dataset;
use kiff_graph::{KnnGraph, SharedKnn};
use kiff_parallel::{effective_threads, parallel_fold, Counter, ScratchPool, TimeAccumulator};
use kiff_similarity::{ScorerWorkspace, Similarity, PREPARED_MIN_BATCH};

pub use kiff_graph::observer::{IterationObserver, IterationTrace, NoObserver};

use crate::config::{KiffConfig, ScoringMode, TimingMode};
use crate::counting::RankedCandidates;

/// Scheduling grain of the refinement loop (users per work unit).
const GRAIN: usize = 32;

/// Under [`TimingMode::Sampled`], one in this many scheduling chunks is
/// timed.
const TIMING_SAMPLE: usize = 64;

/// Instrumentation of a full KIFF run, matching the metrics of §IV-C.
///
/// The same quantities (and more) are recorded into the run's
/// [`kiff_telemetry::Registry`] ([`KiffConfig::telemetry`]): the
/// `core.refine.sims` / `core.refine.heap_offers` /
/// `core.refine.iterations` counters and the `core.phase.*_ns`
/// histograms subsume this struct's timing fields with exportable,
/// cross-layer instruments — prefer the registry when aggregating over
/// several runs or layers; `KiffStats` remains the per-run return
/// value.
#[derive(Debug, Clone, Default)]
pub struct KiffStats {
    /// Iterations executed by the refinement loop.
    pub iterations: usize,
    /// Total similarity evaluations.
    pub sim_evals: u64,
    /// `sim_evals / (|U|·(|U|−1)/2)` — the scan rate.
    pub scan_rate: f64,
    /// Wall time of item-profile construction (Table IV's Δ).
    pub item_profile_time: Duration,
    /// Wall time of RCS construction (Table V).
    pub rcs_time: Duration,
    /// Aggregated worker time selecting candidates (pops + heap updates).
    /// Under [`TimingMode::Sampled`] this is an estimate: the measured
    /// total rescaled by [`KiffStats::timing_coverage`].
    pub candidate_selection_time: Duration,
    /// Aggregated worker time evaluating similarities (same sampling
    /// caveat as [`KiffStats::candidate_selection_time`]).
    pub similarity_time: Duration,
    /// Fraction of similarity evaluations whose chunk was timed: 1.0
    /// under [`TimingMode::Full`], ~1/64 under [`TimingMode::Sampled`],
    /// 0.0 under [`TimingMode::Off`].
    pub timing_coverage: f64,
    /// End-to-end wall time of the run (counting + refinement).
    pub total_time: Duration,
    /// Per-iteration traces.
    pub per_iteration: Vec<IterationTrace>,
    /// Average RCS length (Table V).
    pub avg_rcs_len: f64,
    /// Σ|RCS| — the similarity-evaluation bound.
    pub total_rcs: usize,
}

impl KiffStats {
    /// Preprocessing wall time: item profiles + RCS construction (the
    /// paper's "preprocessing" bar in Fig. 5 minus dataset loading, which
    /// is common to all approaches).
    pub fn preprocessing_time(&self) -> Duration {
        self.item_profile_time + self.rcs_time
    }

    /// Average number of graph updates per user per iteration (Fig. 8b).
    pub fn updates_per_user(&self, num_users: usize) -> Vec<f64> {
        self.per_iteration
            .iter()
            .map(|t| t.changes as f64 / num_users.max(1) as f64)
            .collect()
    }
}

/// Runs the refinement loop over pre-built RCSs, returning the graph and
/// the loop's share of the statistics (the caller owns phase timings for
/// the counting phase).
pub fn refine<S: Similarity + ?Sized>(
    dataset: &Dataset,
    sim: &S,
    rcs: &RankedCandidates,
    config: &KiffConfig,
    observer: &mut dyn IterationObserver,
) -> (KnnGraph, KiffStats) {
    let n = dataset.num_users();
    let threads = effective_threads(config.threads);
    let shared = SharedKnn::new(n, config.k);
    // Per-user cursor into the RCS; owned by whichever worker holds the
    // user's chunk in the current iteration (chunks are disjoint).
    let cursors: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();

    let sim_evals = Counter::new();
    let timed_evals = Counter::new();
    let changes = Counter::new();
    let candidate_time = TimeAccumulator::new();
    let similarity_time = TimeAccumulator::new();
    // Telemetry handles, resolved once outside the hot loop; with a
    // disabled registry each record below costs one relaxed load.
    let tele = &config.telemetry;
    let tele_sims = tele.counter("core.refine.sims");
    let tele_offers = tele.counter("core.refine.heap_offers");
    let tele_changes = tele.counter("core.refine.heap_updates");
    let tele_iterations = tele.counter("core.refine.iterations");
    let refine_span = tele.histogram("core.phase.refine_ns").span();
    // Scorer-preparation arenas: pooled *outside* the iteration loop, so
    // a workspace's dense map survives across iterations instead of being
    // rebuilt by every `parallel_fold` launch.
    let ws_registry = tele.clone();
    let workspaces: ScratchPool<ScorerWorkspace> =
        ScratchPool::with_init(move || ScorerWorkspace::with_telemetry(&ws_registry));

    let gamma = config.gamma.budget();
    let mut stats = KiffStats::default();
    let mut cumulative_evals = 0u64;

    for iteration in 1..=config.max_iterations {
        changes.take();
        let evals_before = sim_evals.get();
        let timed_before = timed_evals.get();
        let cand_before = candidate_time.total();
        let simt_before = similarity_time.total();

        parallel_fold(
            threads,
            n,
            GRAIN,
            // Per-worker state: the similarity staging buffer and the
            // checked-out scorer-preparation arena, reused across chunks
            // (and, through the pool, across iterations).
            || {
                (
                    Vec::<f64>::with_capacity(gamma.min(1024)),
                    workspaces.checkout(),
                )
            },
            |(sims, ws), range| {
                let timed = match config.timing {
                    TimingMode::Full => true,
                    TimingMode::Off => false,
                    // Chunk starts are multiples of GRAIN, so this times
                    // every TIMING_SAMPLE-th chunk (always including the
                    // first, keeping coverage non-zero on small runs).
                    TimingMode::Sampled => (range.start / GRAIN).is_multiple_of(TIMING_SAMPLE),
                };
                for u in range {
                    let uid = u as u32;
                    // top-pop(RCS_u, γ): the RCS is a sorted list, popping
                    // is advancing the cursor.
                    let select_guard = timed.then(|| candidate_time.start());
                    let list = rcs.rcs(uid);
                    let start = cursors[u].load(Ordering::Relaxed);
                    if start >= list.len() {
                        continue;
                    }
                    let end = (start.saturating_add(gamma)).min(list.len());
                    cursors[u].store(end, Ordering::Relaxed);
                    let cs = &list[start..end];
                    drop(select_guard);

                    // Similarity evaluations — one per popped candidate.
                    let sim_start = timed.then(Instant::now);
                    match config.scoring {
                        ScoringMode::Prepared if cs.len() >= PREPARED_MIN_BATCH => {
                            // One boxed scorer per user: the allocation is
                            // amortised over >= PREPARED_MIN_BATCH candidate
                            // scorings, the price of keeping `Similarity`
                            // open for external metrics (no closed enum to
                            // dispatch through).
                            let mut scorer = sim.scorer(dataset, uid, ws);
                            scorer.score_into(cs, sims);
                        }
                        ScoringMode::Prepared | ScoringMode::Pairwise => {
                            sims.clear();
                            sims.extend(cs.iter().map(|&v| sim.sim(dataset, uid, v)));
                        }
                    }
                    if let Some(t0) = sim_start {
                        similarity_time.add(t0.elapsed());
                        timed_evals.add(cs.len() as u64);
                    }
                    sim_evals.add(cs.len() as u64);
                    tele_sims.add(cs.len() as u64);
                    // Every evaluated candidate is offered to both heaps
                    // (pivot symmetry).
                    tele_offers.add(2 * cs.len() as u64);

                    // UPDATENN both ways (pivot symmetry, lines 10–12).
                    let _update_guard = timed.then(|| candidate_time.start());
                    for (&v, &s) in cs.iter().zip(sims.iter()) {
                        let c = shared.update(uid, v, s) + shared.update(v, uid, s);
                        if c > 0 {
                            changes.add(c);
                        }
                    }
                }
            },
            |a, _| a,
        );

        let iter_changes = changes.get();
        let iter_evals = sim_evals.get() - evals_before;
        cumulative_evals += iter_evals;
        tele_iterations.incr();
        tele_changes.add(iter_changes);
        // Rescale this iteration's sampled measurements by its own timed
        // fraction so traces stay commensurate with the run totals (which
        // are rescaled by the overall coverage below).
        let iter_timed = timed_evals.get() - timed_before;
        let iter_scale = |d: Duration| {
            if iter_timed > 0 && iter_evals > 0 {
                d.div_f64(iter_timed as f64 / iter_evals as f64)
            } else {
                d
            }
        };
        let trace = IterationTrace {
            iteration,
            changes: iter_changes,
            sim_evals: iter_evals,
            cumulative_sim_evals: cumulative_evals,
            candidate_time: iter_scale(candidate_time.total() - cand_before),
            similarity_time: iter_scale(similarity_time.total() - simt_before),
        };
        stats.per_iteration.push(trace);
        stats.iterations = iteration;
        observer.on_iteration(trace, &shared);

        // Termination: average changes per user strictly below β (line 13;
        // strictness makes β = 0 mean "run until every RCS is exhausted"),
        // or exhaustion itself (no further evaluation is possible).
        let exhausted = iter_evals == 0;
        if exhausted || (iter_changes as f64) / (n.max(1) as f64) < config.beta {
            break;
        }
    }

    stats.sim_evals = cumulative_evals;
    let possible_pairs = n as f64 * (n as f64 - 1.0) / 2.0;
    stats.scan_rate = if possible_pairs > 0.0 {
        cumulative_evals as f64 / possible_pairs
    } else {
        0.0
    };
    // Rescale sampled measurements to full-run estimates: both activities
    // are sampled on the same chunks, so phase *shares* are exact and only
    // the magnitudes are extrapolated.
    let coverage = if cumulative_evals > 0 {
        timed_evals.get() as f64 / cumulative_evals as f64
    } else {
        0.0
    };
    stats.timing_coverage = coverage;
    let scale = |d: Duration| {
        if coverage > 0.0 {
            d.div_f64(coverage)
        } else {
            d
        }
    };
    stats.candidate_selection_time = scale(candidate_time.total());
    stats.similarity_time = scale(similarity_time.total());
    stats.avg_rcs_len = rcs.avg_len();
    stats.total_rcs = rcs.total();
    refine_span.finish();
    (shared.snapshot(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Gamma;
    use crate::counting::{build_rcs, CountingConfig};
    use kiff_dataset::dataset::figure2_toy;
    use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
    use kiff_graph::exact_knn;
    use kiff_similarity::WeightedCosine;

    fn run(dataset: &kiff_dataset::Dataset, config: &KiffConfig) -> (KnnGraph, KiffStats) {
        let rcs = build_rcs(
            dataset,
            &CountingConfig {
                threads: config.threads,
                ..Default::default()
            },
        );
        let sim = WeightedCosine::fit(dataset);
        refine(dataset, &sim, &rcs, config, &mut NoObserver)
    }

    #[test]
    fn toy_refinement_finds_neighbors() {
        let ds = figure2_toy();
        let (graph, stats) = run(&ds, &KiffConfig::new(1).with_threads(1));
        assert_eq!(graph.neighbors(0)[0].id, 1);
        assert_eq!(graph.neighbors(1)[0].id, 0);
        assert_eq!(graph.neighbors(2)[0].id, 3);
        assert_eq!(graph.neighbors(3)[0].id, 2);
        // Only the two sharing pairs are ever evaluated.
        assert_eq!(stats.sim_evals, 2);
        assert!(stats.scan_rate > 0.0 && stats.scan_rate < 1.0);
    }

    #[test]
    fn gamma_all_equals_exact_knn() {
        // §III-D: γ=∞ (with β=0) yields the optimal KNN under the sparse
        // axioms.
        let ds = generate_bipartite(&BipartiteConfig::tiny("exact", 29));
        let sim = WeightedCosine::fit(&ds);
        let cfg = KiffConfig {
            gamma: Gamma::All,
            beta: 0.0,
            ..KiffConfig::new(5)
        };
        let (graph, stats) = run(&ds, &cfg);
        let exact = exact_knn(&ds, &sim, 5, None);
        for u in 0..ds.num_users() as u32 {
            assert_eq!(graph.neighbors(u), exact.neighbors(u), "user {u}");
        }
        // One iteration drains everything; a second confirms exhaustion.
        assert!(stats.iterations <= 2, "iterations = {}", stats.iterations);
    }

    #[test]
    fn beta_zero_runs_to_exhaustion() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("drain", 31));
        let cfg = KiffConfig::new(3).with_beta(0.0).with_threads(1);
        let (_, stats) = run(&ds, &cfg);
        // Every RCS entry is evaluated exactly once.
        assert_eq!(stats.sim_evals as usize, stats.total_rcs);
    }

    #[test]
    fn sim_evals_never_exceed_rcs_bound() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("bound", 37));
        for beta in [0.0, 0.001, 0.1] {
            let cfg = KiffConfig::new(4).with_beta(beta);
            let (_, stats) = run(&ds, &cfg);
            assert!(
                stats.sim_evals as usize <= stats.total_rcs,
                "β={beta}: {} > {}",
                stats.sim_evals,
                stats.total_rcs
            );
        }
    }

    #[test]
    fn larger_beta_stops_earlier() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("beta", 41));
        let (_, strict) = run(&ds, &KiffConfig::new(4).with_beta(0.0).with_threads(1));
        let (_, loose) = run(&ds, &KiffConfig::new(4).with_beta(0.5).with_threads(1));
        assert!(loose.sim_evals <= strict.sim_evals);
        assert!(loose.iterations <= strict.iterations);
    }

    #[test]
    fn traces_are_cumulative_and_consistent() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("trace", 43));
        let (_, stats) = run(&ds, &KiffConfig::new(4).with_threads(1));
        assert_eq!(stats.per_iteration.len(), stats.iterations);
        let mut cum = 0;
        for t in &stats.per_iteration {
            cum += t.sim_evals;
            assert_eq!(t.cumulative_sim_evals, cum);
        }
        assert_eq!(cum, stats.sim_evals);
        // First iteration makes by far the most changes (RCS ordering).
        if stats.per_iteration.len() > 1 {
            assert!(stats.per_iteration[0].changes >= stats.per_iteration.last().unwrap().changes);
        }
    }

    #[test]
    fn observer_sees_every_iteration() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("obs", 47));
        let rcs = build_rcs(&ds, &CountingConfig::default());
        let sim = WeightedCosine::fit(&ds);
        let mut seen = Vec::new();
        let mut observer = |trace: IterationTrace, state: &SharedKnn| {
            assert_eq!(state.num_users(), ds.num_users());
            seen.push(trace.iteration);
        };
        let (_, stats) = refine(&ds, &sim, &rcs, &KiffConfig::new(3), &mut observer);
        assert_eq!(seen, (1..=stats.iterations).collect::<Vec<_>>());
    }

    #[test]
    fn prepared_and_pairwise_scoring_build_identical_graphs() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("score", 59));
        let base = KiffConfig::new(5).with_beta(0.0);
        let (g_prepared, s_prepared) = run(&ds, &base.clone().with_scoring(ScoringMode::Prepared));
        let (g_pairwise, s_pairwise) = run(&ds, &base.with_scoring(ScoringMode::Pairwise));
        assert_eq!(s_prepared.sim_evals, s_pairwise.sim_evals);
        for u in 0..ds.num_users() as u32 {
            assert_eq!(g_prepared.neighbors(u), g_pairwise.neighbors(u), "user {u}");
        }
    }

    #[test]
    fn timing_modes_do_not_change_results() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("time", 61));
        let base = KiffConfig::new(4).with_beta(0.0).with_threads(1);
        let (g_full, s_full) = run(&ds, &base.clone().with_timing(TimingMode::Full));
        let (g_sampled, s_sampled) = run(&ds, &base.clone().with_timing(TimingMode::Sampled));
        let (g_off, s_off) = run(&ds, &base.with_timing(TimingMode::Off));
        for u in 0..ds.num_users() as u32 {
            assert_eq!(g_full.neighbors(u), g_sampled.neighbors(u));
            assert_eq!(g_full.neighbors(u), g_off.neighbors(u));
        }
        assert!((s_full.timing_coverage - 1.0).abs() < 1e-12);
        // Single-threaded on a small dataset every chunk may fall in the
        // sampled stride, but coverage is always in (0, 1].
        assert!(s_sampled.timing_coverage > 0.0 && s_sampled.timing_coverage <= 1.0);
        assert_eq!(s_off.timing_coverage, 0.0);
        assert_eq!(s_off.similarity_time, Duration::ZERO);
        assert_eq!(s_off.candidate_selection_time, Duration::ZERO);
    }

    #[test]
    fn parallel_exhaustive_matches_sequential() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("par", 53));
        let cfg_seq = KiffConfig::new(5).with_beta(0.0).with_threads(1);
        let cfg_par = KiffConfig::new(5).with_beta(0.0).with_threads(8);
        let (g_seq, _) = run(&ds, &cfg_seq);
        let (g_par, _) = run(&ds, &cfg_par);
        // With β=0 every pair is evaluated regardless of scheduling, and
        // heap contents are order-independent for distinct ids.
        for u in 0..ds.num_users() as u32 {
            assert_eq!(g_seq.neighbors(u), g_par.neighbors(u), "user {u}");
        }
    }
}
