//! Behavioural shape tests: the qualitative claims of the paper's
//! evaluation must hold on our synthetic sparse data.

use kiff::prelude::*;
use kiff_dataset::PaperDataset;
use kiff_graph::{IterationTrace, SharedKnn};

fn sparse_dataset() -> Dataset {
    // A small Gowalla-like dataset: very sparse, skewed.
    PaperDataset::Gowalla.generate(0.01, 99)
}

#[test]
fn kiff_needs_fewer_similarity_evaluations() {
    // The core claim (Tables II-III): on sparse data KIFF's scan rate is a
    // fraction of the greedy baselines'.
    let ds = sparse_dataset();
    let k = 10;
    let sim = WeightedCosine::fit(&ds);
    let kiff = Kiff::new(KiffConfig::new(k)).run(&ds, &sim);
    let (_, nnd) = NnDescent::new(GreedyConfig::new(k)).run(&ds, &sim);
    let (_, hyrec) = HyRec::new(GreedyConfig::new(k)).run(&ds, &sim);
    assert!(
        kiff.stats.scan_rate < nnd.scan_rate / 2.0,
        "kiff {} vs nn-descent {}",
        kiff.stats.scan_rate,
        nnd.scan_rate
    );
    assert!(
        kiff.stats.scan_rate < hyrec.scan_rate / 2.0,
        "kiff {} vs hyrec {}",
        kiff.stats.scan_rate,
        hyrec.scan_rate
    );
}

#[test]
fn kiff_recall_at_least_matches_baselines() {
    let ds = sparse_dataset();
    let k = 10;
    let sim = WeightedCosine::fit(&ds);
    let exact = exact_knn(&ds, &sim, k, None);
    let kiff = recall(&exact, &Kiff::new(KiffConfig::new(k)).run(&ds, &sim).graph);
    let nnd = recall(
        &exact,
        &NnDescent::new(GreedyConfig::new(k)).run(&ds, &sim).0,
    );
    let hyrec = recall(&exact, &HyRec::new(GreedyConfig::new(k)).run(&ds, &sim).0);
    assert!(kiff > 0.97, "kiff recall {kiff}");
    assert!(kiff + 1e-9 >= nnd, "kiff {kiff} vs nn-descent {nnd}");
    assert!(kiff + 1e-9 >= hyrec, "kiff {kiff} vs hyrec {hyrec}");
}

#[test]
fn smaller_k_degrades_baselines_more_than_kiff() {
    // Table VIII's shape: halving k costs the greedy approaches recall,
    // while KIFF stays put.
    let ds = sparse_dataset();
    let sim = WeightedCosine::fit(&ds);
    let (k_big, k_small) = (10, 5);

    let exact_big = exact_knn(&ds, &sim, k_big, None);
    let exact_small = exact_knn(&ds, &sim, k_small, None);

    let kiff_big = recall(
        &exact_big,
        &Kiff::new(KiffConfig::new(k_big)).run(&ds, &sim).graph,
    );
    let kiff_small = recall(
        &exact_small,
        &Kiff::new(KiffConfig::new(k_small)).run(&ds, &sim).graph,
    );
    let nnd_big = recall(
        &exact_big,
        &NnDescent::new(GreedyConfig::new(k_big)).run(&ds, &sim).0,
    );
    let nnd_small = recall(
        &exact_small,
        &NnDescent::new(GreedyConfig::new(k_small)).run(&ds, &sim).0,
    );

    let kiff_drop = kiff_big - kiff_small;
    let nnd_drop = nnd_big - nnd_small;
    assert!(
        kiff_drop < 0.02,
        "KIFF's recall moved by {kiff_drop} when k halved"
    );
    assert!(
        nnd_drop >= kiff_drop - 1e-9,
        "NN-Descent drop {nnd_drop} vs KIFF drop {kiff_drop}"
    );
}

#[test]
fn kiff_first_iteration_recall_dominates_random_start() {
    // Fig. 8a's shape: KIFF's first iteration already reaches a high
    // recall, while a greedy baseline's first iteration is far lower.
    let ds = sparse_dataset();
    let k = 10;
    let sim = WeightedCosine::fit(&ds);
    let exact = exact_knn(&ds, &sim, k, None);

    let first_recall = |points: &mut Vec<f64>| points.first().copied().unwrap_or(0.0);

    let mut kiff_points = Vec::new();
    {
        let mut obs = |_t: IterationTrace, s: &SharedKnn| {
            kiff_points.push(recall(&exact, &s.snapshot()));
        };
        Kiff::new(KiffConfig::new(k)).run_observed(&ds, &sim, &mut obs);
    }
    let mut nnd_points = Vec::new();
    {
        let mut obs = |_t: IterationTrace, s: &SharedKnn| {
            nnd_points.push(recall(&exact, &s.snapshot()));
        };
        NnDescent::new(GreedyConfig::new(k)).run_observed(&ds, &sim, &mut obs);
    }
    let kiff_first = first_recall(&mut kiff_points);
    let nnd_first = first_recall(&mut nnd_points);
    assert!(
        kiff_first > nnd_first,
        "KIFF first-iteration recall {kiff_first} vs NN-Descent {nnd_first}"
    );
    assert!(kiff_first > 0.5, "KIFF starts at {kiff_first}");
}

#[test]
fn baselines_recall_improves_across_iterations() {
    let ds = sparse_dataset();
    let k = 8;
    let sim = WeightedCosine::fit(&ds);
    let exact = exact_knn(&ds, &sim, k, None);
    let mut points = Vec::new();
    let mut obs = |_t: IterationTrace, s: &SharedKnn| {
        points.push(recall(&exact, &s.snapshot()));
    };
    NnDescent::new(GreedyConfig::new(k)).run_observed(&ds, &sim, &mut obs);
    assert!(points.len() >= 2, "needs at least two iterations");
    let (first, last) = (points[0], *points.last().unwrap());
    assert!(last > first, "no convergence: {first} -> {last}");
}

#[test]
fn density_crossover_shape() {
    // Fig. 10's shape in miniature: KIFF's scan rate falls sharply with
    // density while NN-Descent's barely moves, so KIFF's relative
    // advantage grows as data gets sparser. Needs k << n for the greedy
    // regime to be meaningful, hence the larger base dataset.
    let base = kiff_dataset::generators::movielens_like(0.3, 5);
    let sparse = kiff_dataset::subsample_ratings(&base, base.num_ratings() / 10, 6);
    let k = 10;
    let run = |ds: &Dataset| {
        let sim = WeightedCosine::fit(ds);
        let kiff = Kiff::new(KiffConfig::new(k)).run(ds, &sim).stats.scan_rate;
        let nnd = NnDescent::new(GreedyConfig::new(k))
            .run(ds, &sim)
            .1
            .scan_rate;
        (kiff, nnd)
    };
    let (kiff_dense, nnd_dense) = run(&base);
    let (kiff_sparse, nnd_sparse) = run(&sparse);
    // KIFF's scan rate must fall with density (Fig. 10b's dominant trend)…
    assert!(
        kiff_sparse < kiff_dense / 2.0,
        "KIFF scan did not fall: dense {kiff_dense} sparse {kiff_sparse}"
    );
    // …and its relative advantage over NN-Descent must grow.
    let dense_ratio = kiff_dense / nnd_dense.max(1e-12);
    let sparse_ratio = kiff_sparse / nnd_sparse.max(1e-12);
    assert!(
        sparse_ratio < dense_ratio,
        "sparse ratio {sparse_ratio} !< dense ratio {dense_ratio}"
    );
}
