//! Sharded-engine scaling: `BENCH_sharded.json`.
//!
//! Replays the same held-out stream as the `online` experiment (the
//! shared [`StreamScenario`]) through [`ShardedOnlineKnn`] at 1, 2, 4
//! and 8 shards (batched apply — the serving pattern the sharded engine
//! accelerates) and reports apply throughput and recall-vs-rebuild per
//! shard count. Expected shape: throughput grows with shards on
//! multi-core hardware (the 1-shard run is the coordination-overhead
//! baseline) while recall stays within a few percent of the
//! single-engine figure — partition-then-merge preserves quality (cf.
//! Cluster-and-Conquer in the related work).

use std::time::Instant;

use kiff_graph::{recall, KnnGraph};
use kiff_online::{OnlineConfig, ShardConfig, ShardedOnlineKnn, Update};

use super::{Ctx, StreamScenario, STREAM_K};

const BATCH: usize = 256;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One shard count's outcome.
struct ShardRun {
    shards: usize,
    updates: u64,
    elapsed_s: f64,
    updates_per_sec: f64,
    sim_evals_per_update: f64,
    recall_vs_exact: f64,
}

fn replay(
    sc: &StreamScenario,
    shards: usize,
    threads: Option<usize>,
    exact: &KnnGraph,
) -> ShardRun {
    let mut engine = ShardedOnlineKnn::from_graph(
        &sc.base,
        &sc.seed_graph,
        OnlineConfig::new(STREAM_K),
        ShardConfig {
            threads,
            ..ShardConfig::new(shards)
        },
    );
    let updates: Vec<Update> = sc
        .held
        .iter()
        .map(|&(user, item, rating)| Update::AddRating { user, item, rating })
        .collect();
    let start = Instant::now();
    for chunk in updates.chunks(BATCH) {
        engine.apply_batch(chunk.iter().copied());
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let life = *engine.lifetime_stats();
    ShardRun {
        shards,
        updates: life.updates,
        elapsed_s,
        updates_per_sec: life.updates as f64 / elapsed_s.max(1e-9),
        sim_evals_per_update: life.sim_evals_per_update(),
        recall_vs_exact: recall(exact, &engine.graph()),
    }
}

/// Runs the shard-scaling benchmark and writes `BENCH_sharded.json`.
pub fn sharded(ctx: &mut Ctx) -> String {
    let sc = ctx.stream_scenario();
    let rebuild_recall = sc.rebuild_recall;

    let runs: Vec<ShardRun> = SHARD_COUNTS
        .iter()
        .map(|&s| replay(&sc, s, ctx.threads, &sc.exact))
        .collect();
    let baseline_rate = runs[0].updates_per_sec.max(1e-9);

    let mut out = String::new();
    out.push_str(&format!(
        "Sharded online maintenance on {}: {} users, {} items, {} ratings \
         ({} streamed, batch {BATCH})\n\
         full rebuild recall {rebuild_recall:.4}\n\n",
        sc.full.name(),
        sc.full.num_users(),
        sc.full.num_items(),
        sc.full.num_ratings(),
        sc.held.len(),
    ));
    for r in &runs {
        let ratio = r.recall_vs_exact / rebuild_recall.max(1e-9);
        out.push_str(&format!(
            "{} shard(s): {:>7.0} updates/s ({:.2}x vs 1 shard), \
             {:.1} sim evals/update, recall {:.4} ({:.3}x rebuild)\n",
            r.shards,
            r.updates_per_sec,
            r.updates_per_sec / baseline_rate,
            r.sim_evals_per_update,
            r.recall_vs_exact,
            ratio,
        ));
        ctx.enforce_recall_floor("sharded", &format!("{}-shards", r.shards), ratio);
    }
    out.push_str(
        "\nExpected shape: apply throughput scales with shard count on \
         multi-core hardware (>=1.5x at 4 shards) while recall stays \
         within a few percent of the single-engine figure; on a 1-core \
         box the shard counts tie, modulo coordination overhead.\n",
    );

    let dataset_v = serde_json::json!({
        "name": sc.full.name(),
        "num_users": sc.full.num_users(),
        "num_items": sc.full.num_items(),
        "num_ratings": sc.full.num_ratings(),
        "streamed_updates": sc.held.len()
    });
    let rebuild_v = serde_json::json!({ "recall": rebuild_recall });
    let runs_v: Vec<serde_json::Value> = runs
        .iter()
        .map(|r| {
            serde_json::json!({
                "shards": r.shards,
                "updates": r.updates,
                "wall_time_s": r.elapsed_s,
                "updates_per_sec": r.updates_per_sec,
                "speedup_vs_1_shard": r.updates_per_sec / baseline_rate,
                "sim_evals_per_update": r.sim_evals_per_update,
                "recall": r.recall_vs_exact,
                "recall_vs_rebuild": r.recall_vs_exact / rebuild_recall.max(1e-9)
            })
        })
        .collect();
    let payload = serde_json::json!({
        "dataset": dataset_v,
        "k": STREAM_K,
        "batch": BATCH,
        "rebuild": rebuild_v,
        "runs": runs_v
    });
    // The named perf baseline future PRs diff against.
    if let Ok(text) = serde_json::to_string_pretty(&payload) {
        let path = ctx.out_dir.join("BENCH_sharded.json");
        std::fs::write(&path, text)
            .unwrap_or_else(|e| eprintln!("warning: cannot write BENCH_sharded.json: {e}"));
    }
    ctx.finish(
        "sharded",
        "Shard-count scaling of the online engine (kiff-online sharded)",
        out,
        &payload,
    )
}
