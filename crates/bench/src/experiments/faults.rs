//! Fault-tolerance benchmark: `BENCH_faults.json`.
//!
//! The robustness counterpart to the `serve` experiment: the same kind
//! of durable daemon, but driven through the [`SelfHealingClient`]
//! while seeded-deterministic failpoints (see [`kiff_core::fault`])
//! inject a ~1% fault rate into the WAL fsync path and the socket in
//! both directions. Three phases:
//!
//! 1. **Clean baseline.** The workload — update batches interleaved
//!    with `neighbors` queries — against an unfaulted daemon, for the
//!    latency yardstick.
//! 2. **Faulted run.** The identical workload with failpoints armed.
//!    Every operation goes through the self-healing retry discipline
//!    (reconnect, backoff, idempotent batch replay). Gates: success
//!    rate `>= MIN_SUCCESS_RATE` (**hard**), client-observed p99 —
//!    retries, backoff and reconnects included — `<= MAX_P99_US`
//!    (**hard**), and the recovered state must be bit-exact against a
//!    fault-free in-process replay of the acknowledged batches with
//!    the applied high-water mark at the last batch id — the
//!    exactly-once gate (**hard**).
//! 3. **Forced outage.** The WAL is held down (`wal.fsync` firing on
//!    every probe) until the daemon reports degraded, then released;
//!    the time until the background recovery task reports `healthy`
//!    again is gated `<= MAX_RECOVERY_MS` (**hard**).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use kiff_core::fault::{self, points, Trigger};
use kiff_dataset::generators::planted::{generate_planted, PlantedConfig};
use kiff_dataset::zipf::Zipf;
use kiff_dataset::Dataset;
use kiff_online::{OnlineConfig, OnlineKnn, Update};
use kiff_serve::{
    recover, Client, EngineHost, RetryPolicy, SelfHealingClient, Server, ServerConfig, StoreConfig,
};
use kiff_telemetry::Registry;

use super::{Ctx, STREAM_K};

const BATCH: usize = 8;
/// Injected fault probability on the WAL fsync path.
const WAL_FAULT_P: f64 = 0.01;
/// Injected fault probability per socket direction.
const NET_FAULT_P: f64 = 0.005;
/// Hard gate: operations that succeed within the retry budget.
const MIN_SUCCESS_RATE: f64 = 0.999;
/// Hard gate: client-observed p99 under faults, retries included.
const MAX_P99_US: f64 = 250_000.0;
/// Hard gate: degraded-to-healthy after the WAL is released.
const MAX_RECOVERY_MS: f64 = 2_000.0;

/// Smaller than the `serve` population: the subject here is the retry
/// discipline, not raw throughput, and three daemons run per pass.
fn faults_dataset(multiplier: f64, seed: u64) -> Dataset {
    let m = multiplier.clamp(0.05, 2.0);
    let users = ((6_000.0 * m) as usize).max(800);
    generate_planted(&PlantedConfig {
        name: "bench-faults".to_string(),
        num_users: users,
        num_items: (users * 4) / 5,
        communities: 8,
        ratings_per_user: 20,
        affinity: 0.8,
        ..PlantedConfig::tiny("bench-faults", seed)
    })
    .0
}

/// Zipf-skewed update batches, deterministic in the seed.
fn faults_stream(ds: &Dataset, seed: u64, batches: usize) -> Vec<Vec<Update>> {
    let user_dist = Zipf::new(ds.num_users(), 1.1);
    let item_dist = Zipf::new(ds.num_items(), 0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batches)
        .map(|_| {
            (0..BATCH)
                .map(|_| Update::AddRating {
                    user: user_dist.sample(&mut rng) as u32,
                    item: item_dist.sample(&mut rng) as u32,
                    rating: 1.0,
                })
                .collect()
        })
        .collect()
}

fn scratch(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("kiff-bench-faults-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn p99_us(latencies: &mut [f64]) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)]
}

struct DriveOutcome {
    ok: u64,
    failed: u64,
    latencies_us: Vec<f64>,
    retries: u64,
    reconnects: u64,
    /// The acknowledged batches, in acknowledgement order — the input
    /// to the fault-free reference replay.
    acked: Vec<Vec<Update>>,
}

/// Pushes the workload through a self-healing client: one update batch,
/// then two `neighbors` probes, per round.
fn drive(client: &mut SelfHealingClient, stream: &[Vec<Update>], users: u32) -> DriveOutcome {
    let mut out = DriveOutcome {
        ok: 0,
        failed: 0,
        latencies_us: Vec::new(),
        retries: 0,
        reconnects: 0,
        acked: Vec::new(),
    };
    for (i, batch) in stream.iter().enumerate() {
        let t = Instant::now();
        let applied = client.update(batch).is_ok();
        out.latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
        if applied {
            out.ok += 1;
            out.acked.push(batch.clone());
        } else {
            out.failed += 1;
        }
        for probe in 0..2u32 {
            let user = (i as u32 * 7 + probe * 13) % users;
            let t = Instant::now();
            let got = client.neighbors(user).is_ok();
            out.latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
            if got {
                out.ok += 1;
            } else {
                out.failed += 1;
            }
        }
    }
    out.retries = client.retries();
    out.reconnects = client.reconnects();
    out
}

/// One daemon lifecycle: recover in `dir`, serve, drive, wait until
/// healthy, shut down, and recover once more for the final state.
struct Daemon {
    addr: String,
    handle: std::thread::JoinHandle<Result<(), kiff_core::KiffError>>,
}

fn spawn_daemon(dir: &PathBuf, base: &Dataset, k: usize) -> Daemon {
    let cfg = StoreConfig::new(dir).with_snapshot_every(0);
    let registry = Registry::new();
    let config = OnlineConfig::new(k).with_telemetry(registry.clone());
    let rec = recover(&cfg, base, None, config, None).expect("fresh scratch directory recovers");
    let host = EngineHost::new(rec.engine, Some(rec.store), registry);
    let server_config = ServerConfig {
        recovery_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    };
    let server =
        Server::bind_with("127.0.0.1:0", host, server_config).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    Daemon { addr, handle }
}

fn shutdown_daemon(daemon: Daemon) {
    for _ in 0..50 {
        match Client::connect(&daemon.addr) {
            Ok(mut c) => {
                if c.shutdown().is_ok() {
                    break;
                }
            }
            Err(_) => break, // already down
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon
        .handle
        .join()
        .expect("daemon thread")
        .expect("clean daemon exit");
}

fn retry_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 10,
        base_delay: Duration::from_millis(3),
        max_delay: Duration::from_millis(50),
        seed,
    }
}

/// Runs the fault-tolerance benchmark and writes `BENCH_faults.json`.
pub fn faults(ctx: &mut Ctx) -> String {
    let base = faults_dataset(ctx.scale.multiplier, ctx.seed);
    let batches = ((150.0 * ctx.scale.multiplier.clamp(0.05, 2.0)) as usize).max(60);
    let stream = faults_stream(&base, ctx.seed, batches);
    let users = base.num_users() as u32;
    let config = || OnlineConfig::new(STREAM_K);

    // Phase 1: clean baseline for the latency yardstick.
    let clean_dir = scratch("clean");
    let daemon = spawn_daemon(&clean_dir, &base, STREAM_K);
    let mut client =
        SelfHealingClient::connect(&daemon.addr, retry_policy(ctx.seed)).expect("connect clean");
    let mut clean = drive(&mut client, &stream, users);
    drop(client);
    shutdown_daemon(daemon);
    std::fs::remove_dir_all(&clean_dir).ok();
    let clean_p99 = p99_us(&mut clean.latencies_us);
    assert_eq!(clean.failed, 0, "the clean run must not fail");

    // Phase 2: the same workload under a ~1% injected fault rate. The
    // failpoints are scoped to this daemon's WAL directory and socket,
    // and seeded so the fire pattern reproduces run-to-run.
    let fault_dir = scratch("faulted");
    let fault_scope = fault_dir.to_string_lossy().into_owned();
    let daemon = spawn_daemon(&fault_dir, &base, STREAM_K);
    let mut client =
        SelfHealingClient::connect(&daemon.addr, retry_policy(ctx.seed)).expect("connect faulted");
    fault::arm_scoped(
        points::WAL_FSYNC,
        Trigger::Prob {
            p: WAL_FAULT_P,
            seed: ctx.seed,
        },
        &fault_scope,
    );
    fault::arm_scoped(
        points::NET_READ,
        Trigger::Prob {
            p: NET_FAULT_P,
            seed: ctx.seed ^ 1,
        },
        &daemon.addr,
    );
    fault::arm_scoped(
        points::NET_WRITE,
        Trigger::Prob {
            p: NET_FAULT_P,
            seed: ctx.seed ^ 2,
        },
        &daemon.addr,
    );
    let mut faulted = drive(&mut client, &stream, users);
    let faulted_p99 = p99_us(&mut faulted.latencies_us);
    let total_ops = faulted.ok + faulted.failed;
    let success_rate = faulted.ok as f64 / total_ops.max(1) as f64;

    // The daemon must settle back to healthy after the stream.
    let settle = Instant::now();
    let settled = loop {
        match client.health() {
            Ok(h) if h.status == "healthy" => break true,
            _ if settle.elapsed() > Duration::from_secs(5) => break false,
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    };

    // Phase 3: forced outage. Hold the WAL down until a write fails
    // (degraded), release it, and time the flip back to healthy.
    fault::arm_scoped(points::WAL_APPEND, Trigger::Always, &fault_scope);
    let mut prober = Client::connect(&daemon.addr).expect("prober connects");
    let outage_batch = faulted.acked.len() as u64 + 1;
    let refused = prober.update_batch(&stream[0], outage_batch).is_err();
    let healing = Instant::now();
    fault::disarm(points::WAL_APPEND);
    fault::disarm(points::WAL_FSYNC); // release the probabilistic fault too
    let mut recovery_ms = f64::INFINITY;
    while healing.elapsed() < Duration::from_secs(10) {
        if let Ok(h) = prober.health() {
            if h.status == "healthy" {
                recovery_ms = healing.elapsed().as_secs_f64() * 1e3;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    drop(prober);
    drop(client);

    let fault_counters: Vec<(String, u64, u64)> = fault::counters()
        .into_iter()
        .map(|c| (c.name, c.checks, c.fires))
        .collect();
    let injected: u64 = fault_counters.iter().map(|(_, _, fires)| fires).sum();

    shutdown_daemon(daemon);
    fault::disarm_all();

    // Exactly-once: recover the faulted store and compare bit-exactly
    // against a fault-free in-process replay of the acknowledged
    // batches; the high-water mark must sit at the last batch id (the
    // refused outage batch must have left no trace).
    let cfg = StoreConfig::new(&fault_dir).with_snapshot_every(0);
    let rec = recover(&cfg, &base, None, config(), None).expect("faulted store recovers");
    let mut reference = OnlineKnn::new(&base, config());
    for batch in &faulted.acked {
        reference.apply_batch(batch.clone());
    }
    let bit_exact = rec.engine.graph().as_ref() == reference.graph().as_ref();
    let hwm_exact = rec.store.batch_hwm() == faulted.acked.len() as u64;
    std::fs::remove_dir_all(&fault_dir).ok();

    let mut out = String::new();
    out.push_str(&format!(
        "Fault-tolerance benchmark on {}: {} users, {} update batches of {BATCH} \
         + {} queries, ~{:.1}% injected fault rate\n\n\
         phase 1: clean baseline\n\
         {:>24}: {clean_p99:>10.0} us\n\n\
         phase 2: faulted run (wal.fsync p={WAL_FAULT_P}, net.read/net.write p={NET_FAULT_P})\n\
         {:>24}: {:>10} of {total_ops} ops ({success_rate:.5}, gate >= {MIN_SUCCESS_RATE})\n\
         {:>24}: {faulted_p99:>10.0} us ({:.1}x clean, gate <= {MAX_P99_US:.0} us)\n\
         {:>24}: {:>10} retries, {} reconnects, {injected} faults fired\n\
         {:>24}: {:>10}\n\n",
        base.name(),
        base.num_users(),
        stream.len(),
        2 * stream.len(),
        100.0 * WAL_FAULT_P,
        "op p99",
        "succeeded",
        faulted.ok,
        "faulted op p99",
        faulted_p99 / clean_p99.max(1e-9),
        "self-healing",
        faulted.retries,
        faulted.reconnects,
        "settled healthy",
        settled,
    ));
    out.push_str(&format!(
        "phase 3: forced WAL outage\n\
         {:>24}: {:>10}\n\
         {:>24}: {recovery_ms:>10.1} ms (gate <= {MAX_RECOVERY_MS:.0})\n\n\
         exactly-once: bit_exact={bit_exact} hwm_exact={hwm_exact} \
         (hwm {} == acked {})\n",
        "degraded on write",
        refused,
        "degraded -> healthy",
        rec.store.batch_hwm(),
        faulted.acked.len(),
    ));

    let mut fail = |msg: String| {
        eprintln!("FAULTS VIOLATION: {msg}");
        out.push_str(&format!("VIOLATION: {msg}\n"));
        ctx.violations.push(msg);
    };
    if success_rate < MIN_SUCCESS_RATE {
        fail(format!(
            "faults/success: {success_rate:.5} below {MIN_SUCCESS_RATE} \
             ({} of {total_ops} ops failed past the retry budget)",
            faulted.failed
        ));
    }
    // Absolute bound, relaxed to 10x the clean baseline at scales
    // where a single heavy batch already takes longer than the bound.
    let p99_bound = MAX_P99_US.max(10.0 * clean_p99);
    if faulted_p99 > p99_bound {
        fail(format!(
            "faults/latency: faulted p99 {faulted_p99:.0} us above {p99_bound:.0} us \
             (max({MAX_P99_US:.0}, 10x clean {clean_p99:.0}))"
        ));
    }
    if !settled || !refused || recovery_ms > MAX_RECOVERY_MS {
        fail(format!(
            "faults/recovery: settled={settled} refused={refused} \
             degraded->healthy {recovery_ms:.1} ms (gate <= {MAX_RECOVERY_MS:.0})"
        ));
    }
    if !bit_exact || !hwm_exact {
        fail(format!(
            "faults/exactly-once: bit_exact={bit_exact} hwm_exact={hwm_exact} \
             (hwm {} vs {} acked batches)",
            rec.store.batch_hwm(),
            faulted.acked.len()
        ));
    }

    let dataset_v = serde_json::json!({
        "name": base.name(),
        "num_users": base.num_users(),
        "num_items": base.num_items(),
        "update_batches": stream.len(),
        "batch": BATCH
    });
    let rates_v = serde_json::json!({ "wal_fsync_p": WAL_FAULT_P, "net_p": NET_FAULT_P });
    let clean_v = serde_json::json!({ "p99_us": clean_p99, "ops": clean.ok });
    let faulted_v = serde_json::json!({
        "ops": total_ops,
        "succeeded": faulted.ok,
        "success_rate": success_rate,
        "min_success_rate": MIN_SUCCESS_RATE,
        "p99_us": faulted_p99,
        "max_p99_us": MAX_P99_US,
        "p99_bound_us": p99_bound,
        "p99_vs_clean": faulted_p99 / clean_p99.max(1e-9),
        "retries": faulted.retries,
        "reconnects": faulted.reconnects,
        "settled_healthy": settled
    });
    let outage_v = serde_json::json!({
        "refused_while_degraded": refused,
        "recovery_ms": recovery_ms,
        "max_recovery_ms": MAX_RECOVERY_MS
    });
    let exactly_once_v = serde_json::json!({
        "bit_exact": bit_exact,
        "batch_hwm": rec.store.batch_hwm(),
        "acked_batches": faulted.acked.len()
    });
    let failpoints_v = fault_counters
        .iter()
        .map(|(name, checks, fires)| {
            serde_json::json!({ "name": name, "checks": checks, "fires": fires })
        })
        .collect::<Vec<_>>();
    let payload = serde_json::json!({
        "dataset": dataset_v,
        "fault_rate": rates_v,
        "clean": clean_v,
        "faulted": faulted_v,
        "outage": outage_v,
        "exactly_once": exactly_once_v,
        "failpoints": failpoints_v
    });
    if let Ok(text) = serde_json::to_string_pretty(&payload) {
        let path = ctx.out_dir.join("BENCH_faults.json");
        std::fs::write(&path, text)
            .unwrap_or_else(|e| eprintln!("warning: cannot write BENCH_faults.json: {e}"));
    }
    ctx.finish(
        "faults",
        "Fault tolerance: self-healing client under injected faults; degraded-mode recovery",
        out,
        &payload,
    )
}
