//! The counting phase: item profiles and Ranked Candidate Sets
//! (Algorithm 1, lines 1–4).
//!
//! [`build_rcs`] assembles the flat CSR layout in two parallel passes
//! with zero per-user allocation:
//!
//! 1. **Size** — each worker counts every user's distinct co-raters
//!    (post pivot/threshold filters, capped by `max_rcs`) with an
//!    epoch-stamped [`DenseCounter`]; lengths land in a shared array
//!    through disjoint chunk ranges.
//! 2. **Write** — a serial prefix sum turns lengths into CSR offsets,
//!    then workers rank each user's candidates with the configured
//!    [`CountStrategy`] and write ids (and counts) *directly* into their
//!    final `[offsets[u], offsets[u+1])` slots of the shared output —
//!    no per-user `Vec`, no chunk merge, no flatten copy.
//!
//! The pre-rewrite pipeline (gather → sort → per-user `Vec` → flatten)
//! survives as [`build_rcs_reference`], the bit-for-bit yardstick of the
//! agreement tests and the baseline the `counting` bench experiment
//! measures speedups against.

use std::time::Instant;

use kiff_collections::{
    count_sorted_runs, count_sorted_runs_into, Csr, DenseCounter, SparseCounter,
};
use kiff_dataset::{Dataset, UserId};
use kiff_parallel::{effective_threads, parallel_fold, SharedSlice};

use crate::config::CountStrategy;

/// Scheduling grain of both counting passes (users per work unit).
const GRAIN: usize = 32;

/// Options for RCS construction.
#[derive(Debug, Clone)]
pub struct CountingConfig {
    /// Restrict each RCS to ids greater than the owner (the pivot strategy
    /// of §II-D, halving memory and ensuring each pair is evaluated once).
    /// Disable to obtain the full per-user candidate ranking of §II-C
    /// (used by Table VII's top-k-from-RCS initialisation and Fig. 7).
    pub pivot: bool,
    /// Keep the shared-item counts next to the ids. The refinement phase
    /// only needs the order ("plain ordered lists, without multiplicity
    /// information", §III-C), so the default drops them; the statistics
    /// experiments keep them.
    pub keep_counts: bool,
    /// Worker threads (`None` = all available).
    pub threads: Option<usize>,
    /// Shared-item counting strategy.
    pub strategy: CountStrategy,
    /// The paper's future-work heuristic (§VII): only ratings at or above
    /// this threshold contribute candidates — "a naive threshold on
    /// multiple-ratings to insert, in the ranked candidate sets, only those
    /// users who have positively rated items, reduces the RCSs' size and
    /// improves the performance". `None` keeps every rating (the paper's
    /// evaluated configuration).
    pub rating_threshold: Option<f32>,
    /// The other §VII-style insertion limit: cap every RCS at its top
    /// entries by shared-item count. Bounds both memory (`Σ|RCS| ≤ cap·|U|`)
    /// and, through §III-D, the scan rate — at the cost of never
    /// considering candidates ranked below the cap. `None` keeps full RCSs
    /// (the paper's evaluated configuration).
    pub max_rcs: Option<usize>,
}

impl Default for CountingConfig {
    fn default() -> Self {
        Self {
            pivot: true,
            keep_counts: false,
            threads: None,
            strategy: CountStrategy::Auto,
            rating_threshold: None,
            max_rcs: None,
        }
    }
}

/// The Ranked Candidate Sets of all users, flattened.
///
/// `rcs(u)` lists every co-rater of `u` (ids `> u` under the pivot
/// strategy), ordered by decreasing shared-item count, ties by ascending
/// id. With `keep_counts`, `counts(u)` is parallel to `rcs(u)`.
#[derive(Debug, Clone)]
pub struct RankedCandidates {
    offsets: Vec<usize>,
    ids: Box<[u32]>,
    counts: Option<Box<[u32]>>,
    /// Wall time spent building (reported in Table V).
    pub build_time: std::time::Duration,
}

impl RankedCandidates {
    /// Number of users covered.
    pub fn num_users(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The ranked candidate list of `u`.
    #[inline]
    pub fn rcs(&self, u: UserId) -> &[u32] {
        let u = u as usize;
        &self.ids[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Shared-item counts parallel to [`RankedCandidates::rcs`], when kept.
    pub fn counts(&self, u: UserId) -> Option<&[u32]> {
        self.counts.as_ref().map(|c| {
            let u = u as usize;
            &c[self.offsets[u]..self.offsets[u + 1]]
        })
    }

    /// `|RCS_u|`.
    #[inline]
    pub fn len(&self, u: UserId) -> usize {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// True when every RCS is empty.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// `Σ_u |RCS_u|` — the hard bound on similarity evaluations (§III-D).
    pub fn total(&self) -> usize {
        *self.offsets.last().expect("offsets non-empty")
    }

    /// Average RCS length (Table V / Table IX).
    pub fn avg_len(&self) -> f64 {
        if self.num_users() == 0 {
            0.0
        } else {
            self.total() as f64 / self.num_users() as f64
        }
    }

    /// All RCS sizes (Fig. 6's CCDF input).
    pub fn sizes(&self) -> Vec<usize> {
        (0..self.num_users() as u32).map(|u| self.len(u)).collect()
    }

    /// The maximum scan rate these RCSs can induce:
    /// `2·avg|RCS| / (|U| − 1)` (Table V).
    pub fn max_scan_rate(&self) -> f64 {
        let n = self.num_users();
        if n <= 1 {
            0.0
        } else {
            2.0 * self.avg_len() / (n as f64 - 1.0)
        }
    }
}

/// Ranks a gathered candidate multiset into `(id, shared_items)` pairs
/// ordered by descending count (ties: ascending id) — the single-user core
/// of the counting phase, exposed so incremental maintainers (the
/// `kiff-online` engine) reuse exactly the batch ranking semantics.
pub fn rank_candidate_counts(gathered: &mut [u32]) -> Vec<(u32, u32)> {
    count_sorted_runs(gathered)
}

/// The full (unpivoted) ranked candidate set of one user, computed from
/// the item profiles: every co-rater of `u` with its shared-item count,
/// in RCS order. This is Algorithm 1 line 4 for a single user — the
/// reference the `kiff-online` engine's incrementally maintained
/// counters are audited against.
pub fn user_candidate_counts(dataset: &Dataset, u: UserId) -> Vec<(u32, u32)> {
    let items = dataset.item_profiles();
    let mut gathered = Vec::new();
    for &item in dataset.user_profile(u).items {
        gathered.extend(items.row(item).iter().copied().filter(|&v| v != u));
    }
    rank_candidate_counts(&mut gathered)
}

/// Visits every RCS candidate of `u` — the multiset union
/// `⊎_{i ∈ UP_u} {v ∈ IP_i}` after the pivot / rating-threshold filters —
/// exactly once per occurrence. The shared gather kernel of both counting
/// passes.
#[inline]
fn for_each_candidate(
    dataset: &Dataset,
    items: &Csr,
    u: u32,
    pivot: bool,
    threshold: Option<f32>,
    mut visit: impl FnMut(u32),
) {
    match threshold {
        None => {
            for &item in dataset.user_profile(u).items {
                let co_raters = items.row(item);
                if pivot {
                    // Rows are sorted: co-raters > u form a suffix.
                    let from = co_raters.partition_point(|&v| v <= u);
                    for &v in &co_raters[from..] {
                        visit(v);
                    }
                } else {
                    for &v in co_raters {
                        if v != u {
                            visit(v);
                        }
                    }
                }
            }
        }
        Some(t) => {
            // §VII heuristic: only positively rated edges (on both
            // endpoints) contribute candidates.
            for (item, rating) in dataset.user_profile(u).iter() {
                if rating < t {
                    continue;
                }
                let (co_raters, weights) = items.row_entries(item);
                for (&v, &w) in co_raters.iter().zip(weights) {
                    if w >= t && ((pivot && v > u) || (!pivot && v != u)) {
                        visit(v);
                    }
                }
            }
        }
    }
}

/// Resolves [`CountStrategy::Auto`] against the dataset shape: dense
/// ranking's per-candidate random accesses into O(|U|) arrays pay off
/// once batches carry multiplicity, gauged by the total candidate volume
/// `Σ_i |IP_i|·(|IP_i|−1)` (computed in O(|I|) from the item-profile
/// degrees); datasets with near-empty batches keep the sort-based
/// ranking, whose cost tracks the tiny batch instead of the universe.
fn resolve_strategy(strategy: CountStrategy, dataset: &Dataset, items: &Csr) -> CountStrategy {
    match strategy {
        CountStrategy::Auto => {
            let n = dataset.num_users().max(1) as u64;
            let volume: u64 = (0..dataset.num_items() as u32)
                .map(|i| {
                    let d = items.degree(i) as u64;
                    d * d.saturating_sub(1)
                })
                .sum();
            if volume >= 8 * n {
                CountStrategy::Dense
            } else {
                CountStrategy::SortBased
            }
        }
        other => other,
    }
}

/// Per-worker scratch of the counting passes. Buffers are reused across
/// every user the worker processes: the whole build performs zero
/// per-user allocation.
struct CountScratch {
    /// Raw gathered candidate ids (sort-based ranking).
    gather: Vec<u32>,
    /// Ranked `(id, count)` staging (sort-/hash-based ranking).
    pairs: Vec<(u32, u32)>,
    /// Hash-based multiplicity counter.
    sparse: SparseCounter,
    /// Dense multiplicity counter (sizing pass + dense ranking).
    dense: DenseCounter,
}

impl CountScratch {
    /// Scratch for one worker; the dense counter is pre-sized to the user
    /// universe when the dense strategy will use it (avoids growth
    /// re-checks in the hot loop).
    fn new(strategy: CountStrategy, num_users: usize) -> Self {
        Self {
            gather: Vec::new(),
            pairs: Vec::new(),
            sparse: SparseCounter::new(),
            dense: if strategy == CountStrategy::Dense {
                DenseCounter::with_capacity(num_users)
            } else {
                DenseCounter::new()
            },
        }
    }
}

/// Builds the Ranked Candidate Sets of `dataset`.
///
/// For each user `u`, the multiset union `⊎_{i ∈ UP_u} {v ∈ IP_i | v > u}`
/// is counted (line 4 of Algorithm 1) and ranked by multiplicity. Work is
/// parallel over users in two flat-CSR passes (see the module docs); item
/// profiles must already be available (they are built on first access and
/// their cost is accounted separately, matching Table IV vs Table V).
pub fn build_rcs(dataset: &Dataset, config: &CountingConfig) -> RankedCandidates {
    let start = Instant::now();
    let n = dataset.num_users();
    let items = dataset.item_profiles();
    let threads = effective_threads(config.threads);
    let strategy = resolve_strategy(config.strategy, dataset, items);
    let pivot = config.pivot;
    let threshold = config.rating_threshold;
    let cap = config.max_rcs.unwrap_or(usize::MAX);

    // Pass 1: size every RCS — distinct co-raters post filters, capped.
    // Lengths land in a shared array through disjoint chunk ranges.
    let mut lens = vec![0u32; n];
    {
        let lens_out = SharedSlice::new(&mut lens);
        parallel_fold(
            threads,
            n,
            GRAIN,
            // Mark-only sizing: stamps alone, 4 bytes per user per worker.
            || DenseCounter::with_stamp_capacity(n),
            |counter, range| {
                // SAFETY: the pool hands out disjoint ranges.
                let out = unsafe { lens_out.slice_mut(range.start, range.len()) };
                for (u, slot) in range.zip(out.iter_mut()) {
                    counter.begin();
                    let mut distinct = 0usize;
                    for_each_candidate(dataset, items, u as u32, pivot, threshold, |v| {
                        distinct += counter.mark(v) as usize;
                    });
                    *slot = distinct.min(cap) as u32;
                }
            },
            |a, _| a,
        );
    }

    // Serial prefix sum: lengths become CSR offsets.
    let mut offsets = Vec::with_capacity(n + 1);
    let mut running = 0usize;
    offsets.push(0);
    for &len in &lens {
        running += len as usize;
        offsets.push(running);
    }
    let total = running;

    // Pass 2: rank every user's candidates and write ids (and counts)
    // directly into their final flat slots.
    let mut ids = vec![0u32; total];
    let mut counts = config.keep_counts.then(|| vec![0u32; total]);
    {
        let ids_out = SharedSlice::new(&mut ids);
        let counts_out = counts.as_mut().map(|c| SharedSlice::new(c.as_mut_slice()));
        let offsets = &offsets;
        parallel_fold(
            threads,
            n,
            GRAIN,
            || CountScratch::new(strategy, n),
            |scratch, range| {
                for u in range {
                    let off = offsets[u];
                    let len = offsets[u + 1] - off;
                    if len == 0 {
                        continue;
                    }
                    // SAFETY: `[off, off + len)` belongs to user `u` alone.
                    let ids_slice = unsafe { ids_out.slice_mut(off, len) };
                    let counts_slice = counts_out
                        .as_ref()
                        .map(|c| unsafe { c.slice_mut(off, len) });
                    let u = u as u32;
                    match strategy {
                        CountStrategy::Dense => {
                            scratch.dense.begin();
                            for_each_candidate(dataset, items, u, pivot, threshold, |v| {
                                scratch.dense.add(v)
                            });
                            let written = scratch.dense.emit_ranked(len, ids_slice, counts_slice);
                            debug_assert_eq!(written, len, "pass-1/pass-2 size mismatch");
                        }
                        CountStrategy::SortBased => {
                            scratch.gather.clear();
                            if threshold.is_none() && pivot {
                                // Bulk suffix copies beat per-element pushes.
                                for &item in dataset.user_profile(u).items {
                                    let co_raters = items.row(item);
                                    let from = co_raters.partition_point(|&v| v <= u);
                                    scratch.gather.extend_from_slice(&co_raters[from..]);
                                }
                            } else {
                                let gather = &mut scratch.gather;
                                for_each_candidate(dataset, items, u, pivot, threshold, |v| {
                                    gather.push(v)
                                });
                            }
                            count_sorted_runs_into(&mut scratch.gather, &mut scratch.pairs);
                            copy_ranked_prefix(&scratch.pairs, ids_slice, counts_slice);
                        }
                        CountStrategy::HashBased => {
                            let sparse = &mut scratch.sparse;
                            for_each_candidate(dataset, items, u, pivot, threshold, |v| {
                                sparse.add(v)
                            });
                            sparse.drain_sorted_into(&mut scratch.pairs);
                            copy_ranked_prefix(&scratch.pairs, ids_slice, counts_slice);
                        }
                        CountStrategy::Auto => unreachable!("resolved above"),
                    }
                }
            },
            |a, _| a,
        );
    }

    RankedCandidates {
        offsets,
        ids: ids.into_boxed_slice(),
        counts: counts.map(Vec::into_boxed_slice),
        build_time: start.elapsed(),
    }
}

/// Copies the best `ids.len()` ranked pairs into the output slices (the
/// ranking is count-descending already, so the prefix is the capped RCS).
#[inline]
fn copy_ranked_prefix(pairs: &[(u32, u32)], ids: &mut [u32], counts: Option<&mut [u32]>) {
    for (dst, &(id, _)) in ids.iter_mut().zip(pairs) {
        *dst = id;
    }
    if let Some(counts) = counts {
        for (dst, &(_, count)) in counts.iter_mut().zip(pairs) {
            *dst = count;
        }
    }
}

/// The pre-flat-CSR reference pipeline: gather → rank → one `Vec` per
/// user → flatten. Produces bit-identical [`RankedCandidates`] (ids,
/// counts, offsets) to [`build_rcs`] — the agreement tests hold the two
/// together — but allocates per user and merges worker chunks. Kept as
/// the regression baseline of the `counting` bench experiment;
/// [`CountStrategy::Auto`] and [`CountStrategy::Dense`] fall back to the
/// sort-based ranking here, which predates the dense counter.
pub fn build_rcs_reference(dataset: &Dataset, config: &CountingConfig) -> RankedCandidates {
    let start = Instant::now();
    let n = dataset.num_users();
    let items = dataset.item_profiles();
    let threads = effective_threads(config.threads);
    let use_hash = config.strategy == CountStrategy::HashBased;
    let pivot = config.pivot;
    let threshold = config.rating_threshold;
    let max_rcs = config.max_rcs;

    // Each worker accumulates (user, ranked pairs) and scratch space.
    type Chunk = Vec<(u32, Vec<(u32, u32)>)>;
    let (chunks, _, _) = parallel_fold(
        threads,
        n,
        GRAIN,
        || (Chunk::new(), Vec::<u32>::new(), SparseCounter::new()),
        |(out, gather, counter), range| {
            for u in range {
                let u = u as u32;
                let mut ranked = if use_hash {
                    for_each_candidate(dataset, items, u, pivot, threshold, |v| counter.add(v));
                    counter.drain_sorted_by_count()
                } else {
                    gather.clear();
                    for_each_candidate(dataset, items, u, pivot, threshold, |v| gather.push(v));
                    rank_candidate_counts(gather)
                };
                if let Some(cap) = max_rcs {
                    // Lists are ordered by decreasing count (ties by
                    // ascending id), so truncation keeps the best.
                    ranked.truncate(cap);
                }
                out.push((u, ranked));
            }
        },
        |(mut a, g, c), (b, _, _)| {
            a.extend(b);
            (a, g, c)
        },
    );

    // Assemble the flat layout through the per-user intermediate.
    let mut per_user: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
    for (u, ranked) in chunks {
        per_user[u as usize] = ranked;
    }
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    let total: usize = per_user.iter().map(|r| r.len()).sum();
    let mut ids = Vec::with_capacity(total);
    let mut counts = config.keep_counts.then(|| Vec::with_capacity(total));
    for ranked in &per_user {
        for &(id, count) in ranked {
            ids.push(id);
            if let Some(c) = counts.as_mut() {
                c.push(count);
            }
        }
        offsets.push(ids.len());
    }

    RankedCandidates {
        offsets,
        ids: ids.into_boxed_slice(),
        counts: counts.map(Vec::into_boxed_slice),
        build_time: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::dataset::figure2_toy;
    use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
    use kiff_similarity::intersect_count;

    fn counted(pivot: bool) -> CountingConfig {
        CountingConfig {
            pivot,
            keep_counts: true,
            threads: Some(1),
            ..Default::default()
        }
    }

    #[test]
    fn toy_pivot_rcs() {
        let ds = figure2_toy();
        let rcs = build_rcs(&ds, &counted(true));
        // Alice(0) shares coffee with Bob(1); pivot keeps 1 > 0.
        assert_eq!(rcs.rcs(0), &[1]);
        assert_eq!(rcs.counts(0).unwrap(), &[1]);
        // Bob's only co-rater is Alice (0 < 1): pruned by the pivot.
        assert_eq!(rcs.rcs(1), &[] as &[u32]);
        // Carl(2) shares shopping with Dave(3).
        assert_eq!(rcs.rcs(2), &[3]);
        assert_eq!(rcs.rcs(3), &[] as &[u32]);
        assert_eq!(rcs.total(), 2);
    }

    #[test]
    fn toy_unpivoted_rcs_is_symmetric() {
        let ds = figure2_toy();
        let rcs = build_rcs(&ds, &counted(false));
        assert_eq!(rcs.rcs(0), &[1]);
        assert_eq!(rcs.rcs(1), &[0]);
        assert_eq!(rcs.rcs(2), &[3]);
        assert_eq!(rcs.rcs(3), &[2]);
    }

    #[test]
    fn counts_match_brute_force_intersections() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("rcs", 3));
        let rcs = build_rcs(&ds, &counted(true));
        for u in 0..ds.num_users() as u32 {
            let ids = rcs.rcs(u);
            let counts = rcs.counts(u).unwrap();
            for (&v, &c) in ids.iter().zip(counts) {
                assert!(v > u, "pivot violated: {v} <= {u}");
                let expected = intersect_count(ds.user_profile(u).items, ds.user_profile(v).items);
                assert_eq!(c as usize, expected, "pair ({u}, {v})");
            }
        }
    }

    #[test]
    fn rcs_covers_every_sharing_pair_exactly_once() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("cover", 5));
        let rcs = build_rcs(&ds, &counted(true));
        let n = ds.num_users() as u32;
        let mut covered = std::collections::HashSet::new();
        for u in 0..n {
            for &v in rcs.rcs(u) {
                assert!(covered.insert((u, v)), "pair ({u},{v}) appears twice");
            }
        }
        for u in 0..n {
            for v in (u + 1)..n {
                let shares =
                    intersect_count(ds.user_profile(u).items, ds.user_profile(v).items) > 0;
                assert_eq!(covered.contains(&(u, v)), shares, "pair ({u},{v})");
            }
        }
    }

    #[test]
    fn ordering_is_count_desc_then_id_asc() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("order", 7));
        let rcs = build_rcs(&ds, &counted(true));
        for u in 0..ds.num_users() as u32 {
            let ids = rcs.rcs(u);
            let counts = rcs.counts(u).unwrap();
            for w in 0..counts.len().saturating_sub(1) {
                let (c0, c1) = (counts[w], counts[w + 1]);
                assert!(
                    c0 > c1 || (c0 == c1 && ids[w] < ids[w + 1]),
                    "user {u}: ({}, {}) before ({}, {})",
                    ids[w],
                    c0,
                    ids[w + 1],
                    c1
                );
            }
        }
    }

    #[test]
    fn strategies_agree() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("strat", 11));
        let sort = build_rcs(
            &ds,
            &CountingConfig {
                strategy: CountStrategy::SortBased,
                ..counted(true)
            },
        );
        for strategy in [
            CountStrategy::HashBased,
            CountStrategy::Dense,
            CountStrategy::Auto,
        ] {
            let other = build_rcs(
                &ds,
                &CountingConfig {
                    strategy,
                    ..counted(true)
                },
            );
            for u in 0..ds.num_users() as u32 {
                assert_eq!(sort.rcs(u), other.rcs(u), "{strategy:?} user {u}");
                assert_eq!(sort.counts(u), other.counts(u), "{strategy:?} user {u}");
            }
        }
    }

    #[test]
    fn flat_assembly_matches_the_reference_pipeline() {
        for seed in [11, 19, 23] {
            let ds = generate_bipartite(&BipartiteConfig::tiny("ref", seed));
            for max_rcs in [None, Some(5)] {
                for pivot in [true, false] {
                    let config = CountingConfig {
                        max_rcs,
                        ..counted(pivot)
                    };
                    let new = build_rcs(&ds, &config);
                    let old = build_rcs_reference(&ds, &config);
                    assert_eq!(new.offsets, old.offsets, "seed {seed}");
                    assert_eq!(new.ids, old.ids, "seed {seed}");
                    assert_eq!(new.counts, old.counts, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("par", 13));
        let seq = build_rcs(&ds, &counted(true));
        let par = build_rcs(
            &ds,
            &CountingConfig {
                threads: Some(8),
                ..counted(true)
            },
        );
        for u in 0..ds.num_users() as u32 {
            assert_eq!(seq.rcs(u), par.rcs(u));
        }
    }

    #[test]
    fn statistics_are_consistent() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("stats", 17));
        let rcs = build_rcs(&ds, &counted(true));
        let sizes = rcs.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), rcs.total());
        assert!((rcs.avg_len() - rcs.total() as f64 / sizes.len() as f64).abs() < 1e-12);
        let n = rcs.num_users() as f64;
        assert!((rcs.max_scan_rate() - 2.0 * rcs.avg_len() / (n - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn stripped_rcs_drops_counts() {
        let ds = figure2_toy();
        let rcs = build_rcs(&ds, &CountingConfig::default());
        assert!(rcs.counts(0).is_none());
        assert_eq!(rcs.rcs(0), &[1]);
    }

    #[test]
    fn max_rcs_caps_every_list_at_the_best_entries() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("cap", 19));
        let full = build_rcs(&ds, &counted(true));
        let capped = build_rcs(
            &ds,
            &CountingConfig {
                max_rcs: Some(5),
                ..counted(true)
            },
        );
        assert!(full.total() > capped.total(), "cap had no effect");
        for u in 0..ds.num_users() as u32 {
            assert!(capped.len(u) <= 5, "user {u}: {}", capped.len(u));
            // The kept entries are exactly the full list's prefix (same
            // count-desc, id-asc order).
            assert_eq!(capped.rcs(u), &full.rcs(u)[..capped.len(u)]);
        }
    }

    #[test]
    fn generous_cap_is_a_no_op() {
        let ds = figure2_toy();
        let full = build_rcs(&ds, &counted(true));
        let capped = build_rcs(
            &ds,
            &CountingConfig {
                max_rcs: Some(1000),
                ..counted(true)
            },
        );
        for u in 0..ds.num_users() as u32 {
            assert_eq!(full.rcs(u), capped.rcs(u));
        }
    }

    #[test]
    fn capped_kiff_trades_recall_for_scan_rate() {
        use crate::{Kiff, KiffConfig};
        use kiff_graph::{exact_knn, recall};
        use kiff_similarity::WeightedCosine;

        let ds = generate_bipartite(&BipartiteConfig::tiny("capk", 21));
        let sim = WeightedCosine::fit(&ds);
        let exact = exact_knn(&ds, &sim, 5, Some(1));
        let full = Kiff::new(KiffConfig::new(5)).run(&ds, &sim);
        let capped = Kiff::new(KiffConfig::new(5).with_max_rcs(32)).run(&ds, &sim);
        // Cap 32 on this workload: scan rate falls ~2.4× (0.38 → 0.16).
        assert!(
            capped.stats.scan_rate < 0.5 * full.stats.scan_rate,
            "capped {} !< half of full {}",
            capped.stats.scan_rate,
            full.stats.scan_rate
        );
        // The cap keeps the *best* candidates, so recall degrades
        // gracefully (0.755 here), not catastrophically.
        let r = recall(&exact, &capped.graph);
        assert!(r > 0.7, "capped recall = {r}");
        assert!(recall(&exact, &full.graph) >= r);
    }

    #[test]
    fn rating_threshold_prunes_low_ratings() {
        // §VII heuristic: u0 and u1 share item 0, but u1 rated it below
        // the threshold, so the pair is pruned; u0 and u2 share item 1
        // with high ratings on both sides and survive.
        let mut b = kiff_dataset::DatasetBuilder::new("thr", 3, 2);
        b.add_rating(0, 0, 5.0);
        b.add_rating(0, 1, 4.0);
        b.add_rating(1, 0, 1.0); // low rating
        b.add_rating(2, 1, 5.0);
        let ds = b.build();
        let full = build_rcs(&ds, &counted(true));
        assert_eq!(full.rcs(0), &[1, 2]);
        let pruned = build_rcs(
            &ds,
            &CountingConfig {
                rating_threshold: Some(3.0),
                ..counted(true)
            },
        );
        assert_eq!(pruned.rcs(0), &[2]);
        assert!(pruned.total() < full.total());
    }

    #[test]
    fn rating_threshold_strategies_agree() {
        let cfg = BipartiteConfig {
            rating_model: kiff_dataset::generators::RatingModel::Stars { half_steps: false },
            user_degree_min: 20,
            ..BipartiteConfig::tiny("thr-strat", 19)
        };
        let ds = generate_bipartite(&cfg);
        let sort = build_rcs(
            &ds,
            &CountingConfig {
                rating_threshold: Some(3.0),
                strategy: CountStrategy::SortBased,
                ..counted(true)
            },
        );
        let hash = build_rcs(
            &ds,
            &CountingConfig {
                rating_threshold: Some(3.0),
                strategy: CountStrategy::HashBased,
                ..counted(true)
            },
        );
        for u in 0..ds.num_users() as u32 {
            assert_eq!(sort.rcs(u), hash.rcs(u), "user {u}");
            assert_eq!(sort.counts(u), hash.counts(u), "user {u}");
        }
        // The threshold must actually bite on star-rated data.
        let full = build_rcs(&ds, &counted(true));
        assert!(sort.total() < full.total());
    }

    #[test]
    fn binary_data_unaffected_by_threshold_of_one() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("thr-bin", 23));
        let plain = build_rcs(&ds, &counted(true));
        let thresholded = build_rcs(
            &ds,
            &CountingConfig {
                rating_threshold: Some(1.0),
                ..counted(true)
            },
        );
        for u in 0..ds.num_users() as u32 {
            assert_eq!(plain.rcs(u), thresholded.rcs(u));
        }
    }
}
