#![warn(missing_docs)]

//! Unified observability for the KIFF stack: atomic instruments, phase
//! timers, and machine-readable exporters — with no external
//! dependencies.
//!
//! The paper's central claims are *cost-accounting* claims (KIFF wins
//! because it evaluates fewer similarities per unit of recall), and the
//! serving-oriented layers add latency claims on top. This crate gives
//! every layer one shared vocabulary for both:
//!
//! * [`Counter`] — a monotonically increasing `u64` (relaxed atomics).
//! * [`Gauge`] — a settable `i64` level (queue depths, shard sizes).
//! * [`Histogram`] — a log-scaled fixed-bucket latency/size distribution
//!   with lock-free recording and `p50`/`p95`/`p99`/`max` readout.
//! * [`Span`] — an RAII phase timer recording wall-clock nanoseconds
//!   into a histogram on drop.
//! * [`Registry`] — a thread-safe, cloneable collection of named
//!   instruments with a [`Registry::snapshot`] readout feeding the
//!   [`export`] module (JSON / Prometheus text) and the pretty-printed
//!   [`TelemetryReport`].
//!
//! # Cost model
//!
//! Recording is wait-free: one relaxed load of the registry's enabled
//! flag, then (when enabled) one or two relaxed RMW operations. A
//! *disabled* registry costs exactly the one relaxed load per record
//! call, so instrumented hot loops can stay instrumented in release
//! builds. Instrument *lookup* ([`Registry::counter`] and friends) takes
//! a mutex: resolve handles once, outside the loop, and clone them into
//! workers (handles share their cells through `Arc`).
//!
//! ```
//! use kiff_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let sims = registry.counter("core.refine.sims");
//! let lat = registry.histogram("online.repair_ns");
//! sims.add(3);
//! lat.record(1_500);
//! {
//!     let _span = lat.span(); // records elapsed nanos on drop
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("core.refine.sims"), Some(3));
//! assert_eq!(snap.histogram("online.repair_ns").unwrap().count, 2);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod export;
mod report;

pub use export::MetricsFormat;
pub use report::TelemetryReport;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i - 1]`, up to bucket 64 for the top of
/// the `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value lands in (`0` for `0`, else `64 - leading_zeros`).
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `index` covers (its inclusive upper bound);
/// quantile readouts report this bound, so an estimate is never below
/// the exact quantile's bucket.
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A monotonically increasing counter.
///
/// Cloning shares the underlying cell; all operations are relaxed
/// atomics. A detached counter ([`Counter::default`]) is permanently
/// disabled and drops every increment.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Default for Counter {
    fn default() -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(false)),
            cell: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Counter {
    /// Adds `n` (dropped while the owning registry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A settable level (may go up or down): queue depths, shard sizes.
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicI64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(false)),
            cell: Arc::new(AtomicI64::new(0)),
        }
    }
}

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, value: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(value, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Raises the gauge by `delta` and returns a guard that lowers it
    /// back on drop — the RAII form of an `add(d)` / `add(-d)` pair, so
    /// every exit path (early returns, `?`, panics that unwind) restores
    /// the level. Use for occupancy-style gauges (`serve.queue_depth`)
    /// where a leaked increment would read as a phantom stuck request.
    #[inline]
    pub fn raise(&self, delta: i64) -> GaugeGuard {
        self.add(delta);
        GaugeGuard {
            gauge: self.clone(),
            delta,
        }
    }
}

/// Lowers the owning [`Gauge`] by the raised delta on drop; returned by
/// [`Gauge::raise`].
#[derive(Debug)]
pub struct GaugeGuard {
    gauge: Gauge,
    delta: i64,
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.gauge.add(-self.delta);
    }
}

/// Shared cells of one histogram.
#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCells {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A log-scaled fixed-bucket distribution.
///
/// Recording is lock-free (three relaxed RMWs plus a `fetch_max`); the
/// quantile readout walks the 65 buckets and reports the inclusive
/// upper bound of the bucket the requested rank falls in, so an
/// estimate is always in the *same* bucket as the exact order
/// statistic. Cloning shares the cells.
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    cells: Arc<HistogramCells>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(false)),
            cells: Arc::new(HistogramCells::new()),
        }
    }
}

impl Histogram {
    /// Records one observation (dropped while the registry is disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let cells = &*self.cells;
        cells.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(value, Ordering::Relaxed);
        cells.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Starts a [`Span`] recording elapsed nanoseconds into this
    /// histogram when dropped. While the registry is disabled the span
    /// is a no-op and never reads the clock.
    #[inline]
    pub fn span(&self) -> Span {
        Span {
            hist: self.clone(),
            start: self.enabled.load(Ordering::Relaxed).then(Instant::now),
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded observation (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.cells.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// The `q`-quantile estimate (`0.0 < q ≤ 1.0`): the upper bound of
    /// the bucket holding the `⌈q·count⌉`-th smallest observation.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (index, bucket) in self.cells.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_bound(index);
            }
        }
        self.max()
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Per-bucket counts (for tests and custom readouts).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.cells.buckets[i].load(Ordering::Relaxed))
    }
}

/// An RAII phase timer: created by [`Histogram::span`] (or
/// [`Registry::span`]), records the elapsed wall-clock nanoseconds into
/// its histogram when dropped. When the registry was disabled at
/// creation the span holds no start time and drops for free.
#[derive(Debug)]
pub struct Span {
    hist: Histogram,
    start: Option<Instant>,
}

impl Span {
    /// Stops the span early, recording now instead of at drop.
    pub fn finish(mut self) {
        self.record_elapsed();
    }

    fn record_elapsed(&mut self) {
        if let Some(start) = self.start.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.record(nanos);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record_elapsed();
    }
}

/// One named instrument held by a registry.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCells>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct RegistryInner {
    enabled: Arc<AtomicBool>,
    instruments: Mutex<BTreeMap<String, Instrument>>,
}

/// A thread-safe collection of named instruments.
///
/// Cloning is shallow (an `Arc` bump): clones see the same instruments
/// and the same enabled flag, which is how one registry is shared
/// across the build, online, and sharded layers. Instrument names are
/// dotted paths (`"shard.0.repair_ns"`); re-requesting a name returns a
/// handle onto the same cells.
///
/// [`Registry::default`] is **enabled** — recording is cheap enough to
/// leave on — and [`Registry::disabled`] starts the registry in the
/// one-relaxed-load-per-record fast path. The flag can be flipped at
/// any time with [`Registry::enable`] / [`Registry::disable`]; handles
/// observe the flip on their next operation.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let instruments = self.inner.instruments.lock().unwrap();
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .field("instruments", &instruments.len())
            .finish()
    }
}

impl Registry {
    /// An empty, enabled registry.
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// An empty registry starting in the disabled fast path: every
    /// record call on its handles costs one relaxed load and nothing
    /// else until [`Registry::enable`] is called.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> Self {
        Self {
            inner: Arc::new(RegistryInner {
                enabled: Arc::new(AtomicBool::new(enabled)),
                instruments: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Whether recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off (existing values are kept, not reset).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn counter(&self, name: &str) -> Counter {
        let cell = {
            let mut map = self.inner.instruments.lock().unwrap();
            match map
                .entry(name.to_string())
                .or_insert_with(|| Instrument::Counter(Arc::new(AtomicU64::new(0))))
            {
                Instrument::Counter(cell) => Arc::clone(cell),
                other => panic!("'{name}' is registered as a {}", other.kind()),
            }
        };
        Counter {
            enabled: self.shared_flag(),
            cell,
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let cell = {
            let mut map = self.inner.instruments.lock().unwrap();
            match map
                .entry(name.to_string())
                .or_insert_with(|| Instrument::Gauge(Arc::new(AtomicI64::new(0))))
            {
                Instrument::Gauge(cell) => Arc::clone(cell),
                other => panic!("'{name}' is registered as a {}", other.kind()),
            }
        };
        Gauge {
            enabled: self.shared_flag(),
            cell,
        }
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let cells = {
            let mut map = self.inner.instruments.lock().unwrap();
            match map
                .entry(name.to_string())
                .or_insert_with(|| Instrument::Histogram(Arc::new(HistogramCells::new())))
            {
                Instrument::Histogram(cells) => Arc::clone(cells),
                other => panic!("'{name}' is registered as a {}", other.kind()),
            }
        };
        Histogram {
            enabled: self.shared_flag(),
            cells,
        }
    }

    /// Starts a [`Span`] over the histogram named `name`. Convenience
    /// for cold paths; hot loops should cache the [`Histogram`] handle
    /// and call [`Histogram::span`] to skip the registry lock.
    pub fn span(&self, name: &str) -> Span {
        self.histogram(name).span()
    }

    /// A point-in-time copy of every instrument, sorted by name.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let map = self.inner.instruments.lock().unwrap();
        let mut snap = TelemetrySnapshot {
            enabled: self.is_enabled(),
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        };
        for (name, instrument) in map.iter() {
            match instrument {
                Instrument::Counter(cell) => snap.counters.push(CounterSnapshot {
                    name: name.clone(),
                    value: cell.load(Ordering::Relaxed),
                }),
                Instrument::Gauge(cell) => snap.gauges.push(GaugeSnapshot {
                    name: name.clone(),
                    value: cell.load(Ordering::Relaxed),
                }),
                Instrument::Histogram(cells) => {
                    let hist = Histogram {
                        enabled: self.shared_flag(),
                        cells: Arc::clone(cells),
                    };
                    snap.histograms.push(HistogramSnapshot {
                        name: name.clone(),
                        count: hist.count(),
                        sum: hist.sum(),
                        max: hist.max(),
                        mean: hist.mean(),
                        p50: hist.p50(),
                        p95: hist.p95(),
                        p99: hist.p99(),
                    });
                }
            }
        }
        snap
    }

    /// The registry's enabled flag, shared into a handle.
    fn shared_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.inner.enabled)
    }
}

/// A point-in-time readout of a [`Registry`] (see
/// [`Registry::snapshot`]); the input to the [`export`] functions and
/// [`TelemetryReport`].
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Whether the registry was enabled at snapshot time.
    pub enabled: bool,
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// One counter's value at snapshot time.
#[derive(Debug, Clone)]
pub struct CounterSnapshot {
    /// Instrument name.
    pub name: String,
    /// Total at snapshot time.
    pub value: u64,
}

/// One gauge's level at snapshot time.
#[derive(Debug, Clone)]
pub struct GaugeSnapshot {
    /// Instrument name.
    pub name: String,
    /// Level at snapshot time.
    pub value: i64,
}

/// One histogram's summary statistics at snapshot time.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Exact maximum observation.
    pub max: u64,
    /// Mean observation.
    pub mean: f64,
    /// Median estimate (bucket upper bound).
    pub p50: u64,
    /// p95 estimate (bucket upper bound).
    pub p95: u64,
    /// p99 estimate (bucket upper bound).
    pub p99: u64,
}

impl TelemetrySnapshot {
    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The level of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The summary of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Sum of every counter whose name starts with `prefix` — the
    /// cross-shard aggregation idiom (`snapshot.counter_sum("shard.")`
    /// style prefixes, or `"shard." + suffix` filters via
    /// [`TelemetrySnapshot::counter_sum_matching`]).
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name.starts_with(prefix))
            .map(|c| c.value)
            .sum()
    }

    /// Sum of every counter whose name starts with `prefix` *and* ends
    /// with `suffix` (e.g. per-shard totals:
    /// `counter_sum_matching("shard.", ".cross_messages")`).
    pub fn counter_sum_matching(&self, prefix: &str, suffix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name.starts_with(prefix) && c.name.ends_with(suffix))
            .map(|c| c.value)
            .sum()
    }

    /// Renders the snapshot as the human-readable [`TelemetryReport`].
    pub fn report(&self) -> TelemetryReport<'_> {
        TelemetryReport::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let registry = Registry::new();
        let c = registry.counter("a.count");
        c.add(5);
        c.incr();
        let g = registry.gauge("a.level");
        g.set(7);
        g.add(-3);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("a.count"), Some(6));
        assert_eq!(snap.gauge("a.level"), Some(4));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn gauge_guard_restores_level_on_every_exit_path() {
        let registry = Registry::new();
        let g = registry.gauge("q.depth");
        {
            let _guard = g.raise(1);
            assert_eq!(g.get(), 1);
            let _second = g.raise(3);
            assert_eq!(g.get(), 4);
        }
        assert_eq!(g.get(), 0, "scope exit lowers the gauge");
        // An unwinding panic still lowers it: the leak the RAII form
        // exists to prevent.
        let g2 = g.clone();
        let result = std::panic::catch_unwind(move || {
            let _guard = g2.raise(1);
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(g.get(), 0, "unwind lowers the gauge");
    }

    #[test]
    fn handles_share_cells() {
        let registry = Registry::new();
        let a = registry.counter("shared");
        let b = registry.counter("shared");
        a.incr();
        b.incr();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn disabled_registry_drops_records() {
        let registry = Registry::disabled();
        let c = registry.counter("c");
        let h = registry.histogram("h");
        c.incr();
        h.record(10);
        {
            let _span = h.span();
        }
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        registry.enable();
        c.incr();
        h.record(10);
        assert_eq!(c.get(), 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn bucket_scheme() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 100, 1 << 40, u64::MAX] {
            assert!(v <= bucket_upper_bound(bucket_of(v)), "{v}");
        }
    }

    #[test]
    fn histogram_quantiles_and_max() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        // The exact p50 is 50 (bucket 6, values 32..=63); the estimate
        // must be that bucket's upper bound.
        assert_eq!(h.p50(), 63);
        assert_eq!(h.p99(), 127);
        assert_eq!(h.quantile(1.0), 127);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let registry = Registry::new();
        let h = registry.histogram("empty");
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn span_records_elapsed_nanos() {
        let registry = Registry::new();
        let h = registry.histogram("phase_ns");
        {
            let _span = h.span();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 1_000_000, "slept 1ms, recorded {}", h.sum());
        let span = h.span();
        span.finish();
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn clones_share_the_enabled_flag() {
        let registry = Registry::new();
        let clone = registry.clone();
        let c = clone.counter("c");
        registry.disable();
        c.incr();
        assert_eq!(c.get(), 0, "clone's handle saw the disable");
        clone.enable();
        c.incr();
        assert_eq!(c.get(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as a counter")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("x");
        registry.histogram("x");
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let registry = Registry::new();
        registry.counter("b");
        registry.counter("a");
        registry.counter("c");
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn counter_sum_matching_aggregates_shards() {
        let registry = Registry::new();
        registry.counter("shard.0.cross_messages").add(3);
        registry.counter("shard.1.cross_messages").add(4);
        registry.counter("shard.0.repairs").add(9);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_sum_matching("shard.", ".cross_messages"), 7);
        assert_eq!(snap.counter_sum("shard."), 16);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let registry = Registry::new();
        let h = registry.histogram("h");
        let c = registry.counter("c");
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = h.clone();
                let c = c.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i);
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per_thread);
        assert_eq!(h.count(), threads * per_thread);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), threads * per_thread);
    }
}
