//! Bench for Fig. 7: Spearman correlation between RCS order and metric
//! order for heavy users.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kiff_bench::datasets::bench_dataset;
use kiff_core::{build_rcs, CountingConfig};
use kiff_eval::spearman;
use kiff_similarity::{Similarity, WeightedCosine};

fn bench(c: &mut Criterion) {
    let ds = bench_dataset(14);
    let _ = ds.item_profiles();
    let rcs = build_rcs(
        &ds,
        &CountingConfig {
            keep_counts: true,
            ..Default::default()
        },
    );
    let cosine = WeightedCosine::fit(&ds);
    // The user with the largest RCS is the Fig. 7 workload.
    let u = (0..ds.num_users() as u32)
        .max_by_key(|&u| rcs.len(u))
        .expect("non-empty dataset");
    let counts: Vec<f64> = rcs
        .counts(u)
        .unwrap()
        .iter()
        .map(|&c| f64::from(c))
        .collect();
    let sims: Vec<f64> = rcs.rcs(u).iter().map(|&v| cosine.sim(&ds, u, v)).collect();
    let mut group = c.benchmark_group("fig7");
    group.bench_function("spearman_rcs_vs_cosine", |b| {
        b.iter(|| black_box(spearman(black_box(&counts), black_box(&sims))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
