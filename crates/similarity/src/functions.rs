//! Allocation-free similarity functions over profile pairs.
//!
//! Each function is a pure map `(UP_u, UP_v) → [0, ∞)`; all satisfy the
//! sparse axioms of §III-D (non-negative, zero on disjoint profiles).

use kiff_dataset::ProfileRef;

use crate::kernels::{for_each_shared, intersect_count};

/// Binary cosine: `|A ∩ B| / √(|A|·|B|)` — cosine over presence vectors.
pub fn binary_cosine(a: ProfileRef<'_>, b: ProfileRef<'_>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let shared = intersect_count(a.items, b.items) as f64;
    shared / ((a.len() as f64) * (b.len() as f64)).sqrt()
}

/// Weighted cosine over rating vectors: `⟨a, b⟩ / (‖a‖·‖b‖)`.
///
/// The paper's evaluation metric ("we use the cosine similarity in the rest
/// of the paper", §III-B). Ratings are positive, so the value is in
/// `[0, 1]` and zero iff the profiles are disjoint.
pub fn weighted_cosine(a: ProfileRef<'_>, b: ProfileRef<'_>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut dot = 0.0f64;
    for_each_shared(a.items, b.items, |i, j| {
        dot += f64::from(a.ratings[i]) * f64::from(b.ratings[j]);
    });
    if dot == 0.0 {
        return 0.0;
    }
    dot / (a.norm() * b.norm())
}

/// Weighted cosine with externally precomputed norms (avoids the two norm
/// passes per call; see [`crate::metrics::WeightedCosine::fit`]).
pub fn weighted_cosine_with_norms(
    a: ProfileRef<'_>,
    b: ProfileRef<'_>,
    norm_a: f64,
    norm_b: f64,
) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut dot = 0.0f64;
    for_each_shared(a.items, b.items, |i, j| {
        dot += f64::from(a.ratings[i]) * f64::from(b.ratings[j]);
    });
    if dot == 0.0 {
        0.0
    } else {
        dot / (norm_a * norm_b)
    }
}

/// Jaccard's coefficient over item sets: `|A ∩ B| / |A ∪ B|`.
pub fn jaccard(a: ProfileRef<'_>, b: ProfileRef<'_>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let shared = intersect_count(a.items, b.items);
    let union = a.len() + b.len() - shared;
    shared as f64 / union as f64
}

/// Weighted (Ruzicka) Jaccard: `Σ min(aᵢ, bᵢ) / Σ max(aᵢ, bᵢ)`, missing
/// entries counting as zero.
pub fn weighted_jaccard(a: ProfileRef<'_>, b: ProfileRef<'_>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut min_sum = 0.0f64;
    for_each_shared(a.items, b.items, |i, j| {
        min_sum += f64::from(a.ratings[i]).min(f64::from(b.ratings[j]));
    });
    // Σ max(aᵢ, bᵢ) = Σa + Σb − Σ min over shared (unshared entries
    // contribute their full value to the max sum).
    let total_a: f64 = a.ratings.iter().map(|&r| f64::from(r)).sum();
    let total_b: f64 = b.ratings.iter().map(|&r| f64::from(r)).sum();
    let max_sum = total_a + total_b - min_sum;
    if max_sum == 0.0 {
        0.0
    } else {
        min_sum / max_sum
    }
}

/// Common-item count `|A ∩ B|` — the coarse approximation KIFF's counting
/// phase ranks candidates by.
pub fn common_items(a: ProfileRef<'_>, b: ProfileRef<'_>) -> f64 {
    intersect_count(a.items, b.items) as f64
}

/// Dice coefficient: `2·|A ∩ B| / (|A| + |B|)`.
pub fn dice(a: ProfileRef<'_>, b: ProfileRef<'_>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let shared = intersect_count(a.items, b.items);
    2.0 * shared as f64 / (a.len() + b.len()) as f64
}

/// Adamic–Adar with caller-supplied per-item weights (normally
/// `1 / ln |IP_i|`): `Σ_{i ∈ A∩B} w(i)`.
pub fn adamic_adar_with(a: ProfileRef<'_>, b: ProfileRef<'_>, item_weight: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    for_each_shared(a.items, b.items, |i, _| {
        sum += item_weight[a.items[i] as usize];
    });
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile<'a>(items: &'a [u32], ratings: &'a [f32]) -> ProfileRef<'a> {
        ProfileRef { items, ratings }
    }

    #[test]
    fn binary_cosine_known_values() {
        let a = profile(&[1, 2], &[1.0, 1.0]);
        let b = profile(&[2, 3], &[1.0, 1.0]);
        assert!((binary_cosine(a, b) - 0.5).abs() < 1e-12); // 1/√4
        assert_eq!(binary_cosine(a, a), 1.0);
    }

    #[test]
    fn weighted_cosine_identical_profiles_is_one() {
        let a = profile(&[1, 5, 9], &[2.0, 3.0, 4.0]);
        assert!((weighted_cosine(a, a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_cosine_equals_binary_on_unit_ratings() {
        let a = profile(&[1, 2, 7], &[1.0, 1.0, 1.0]);
        let b = profile(&[2, 7, 8, 9], &[1.0, 1.0, 1.0, 1.0]);
        assert!((weighted_cosine(a, b) - binary_cosine(a, b)).abs() < 1e-12);
    }

    #[test]
    fn weighted_cosine_with_norms_matches_plain() {
        let a = profile(&[1, 4], &[2.0, 5.0]);
        let b = profile(&[1, 9], &[3.0, 1.0]);
        let with = weighted_cosine_with_norms(a, b, a.norm(), b.norm());
        assert!((with - weighted_cosine(a, b)).abs() < 1e-12);
    }

    #[test]
    fn jaccard_known_values() {
        let a = profile(&[1, 2, 3], &[1.0; 3]);
        let b = profile(&[2, 3, 4, 5], &[1.0; 4]);
        assert!((jaccard(a, b) - 2.0 / 5.0).abs() < 1e-12);
        assert_eq!(jaccard(a, a), 1.0);
    }

    #[test]
    fn weighted_jaccard_known_values() {
        let a = profile(&[1, 2], &[2.0, 1.0]);
        let b = profile(&[1, 3], &[1.0, 4.0]);
        // min-sum over shared = min(2,1)=1; denom = (3 + 5) - 1 = 7.
        assert!((weighted_jaccard(a, b) - 1.0 / 7.0).abs() < 1e-12);
        assert!((weighted_jaccard(a, a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dice_known_values() {
        let a = profile(&[1, 2, 3], &[1.0; 3]);
        let b = profile(&[3, 4], &[1.0; 2]);
        assert!((dice(a, b) - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn adamic_adar_uses_item_weights() {
        let weights = vec![0.0, 0.5, 2.0, 0.25];
        let a = profile(&[1, 2], &[1.0; 2]);
        let b = profile(&[2, 3], &[1.0; 2]);
        assert_eq!(adamic_adar_with(a, b, &weights), 2.0);
        let c = profile(&[1, 2, 3], &[1.0; 3]);
        assert_eq!(adamic_adar_with(a, c, &weights), 2.5);
    }

    #[test]
    fn all_metrics_zero_on_disjoint_profiles() {
        // The sparse axiom (Eq. 5) on which KIFF's pruning rests.
        let a = profile(&[1, 2], &[2.0, 3.0]);
        let b = profile(&[3, 4], &[1.0, 4.0]);
        let weights = vec![1.0; 8];
        assert_eq!(binary_cosine(a, b), 0.0);
        assert_eq!(weighted_cosine(a, b), 0.0);
        assert_eq!(jaccard(a, b), 0.0);
        assert_eq!(weighted_jaccard(a, b), 0.0);
        assert_eq!(common_items(a, b), 0.0);
        assert_eq!(dice(a, b), 0.0);
        assert_eq!(adamic_adar_with(a, b, &weights), 0.0);
    }

    #[test]
    fn empty_profiles_never_nan() {
        let e = profile(&[], &[]);
        let a = profile(&[1], &[2.0]);
        for f in [
            binary_cosine,
            weighted_cosine,
            jaccard,
            weighted_jaccard,
            common_items,
            dice,
        ] {
            assert_eq!(f(e, e), 0.0);
            assert_eq!(f(e, a), 0.0);
            assert_eq!(f(a, e), 0.0);
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeMap;

        fn arb_profile() -> impl Strategy<Value = (Vec<u32>, Vec<f32>)> {
            proptest::collection::btree_map(0u32..100, 1u32..6, 0..40).prop_map(
                |m: BTreeMap<u32, u32>| {
                    let items: Vec<u32> = m.keys().copied().collect();
                    let ratings: Vec<f32> = m.values().map(|&r| r as f32).collect();
                    (items, ratings)
                },
            )
        }

        proptest! {
            /// Symmetry, non-negativity, boundedness, and the sparse axioms
            /// (Eq. 5–6) for every normalized metric.
            #[test]
            fn metric_axioms(a in arb_profile(), b in arb_profile()) {
                let pa = ProfileRef { items: &a.0, ratings: &a.1 };
                let pb = ProfileRef { items: &b.0, ratings: &b.1 };
                let disjoint = intersect_count(pa.items, pb.items) == 0;
                for f in [binary_cosine, weighted_cosine, jaccard, weighted_jaccard, dice] {
                    let ab = f(pa, pb);
                    let ba = f(pb, pa);
                    prop_assert!((ab - ba).abs() < 1e-12, "asymmetric");
                    prop_assert!((0.0..=1.0 + 1e-12).contains(&ab), "out of range: {ab}");
                    if disjoint {
                        prop_assert_eq!(ab, 0.0);
                    } else {
                        prop_assert!(ab > 0.0, "shared items but zero similarity");
                    }
                }
            }

            /// Self-similarity is 1 for normalized metrics on non-empty
            /// profiles.
            #[test]
            fn self_similarity_is_one(a in arb_profile()) {
                prop_assume!(!a.0.is_empty());
                let pa = ProfileRef { items: &a.0, ratings: &a.1 };
                for f in [binary_cosine, weighted_cosine, jaccard, weighted_jaccard, dice] {
                    prop_assert!((f(pa, pa) - 1.0).abs() < 1e-9);
                }
            }
        }
    }
}
