//! Workspace-local stand-in for `criterion`.
//!
//! Provides the API subset the bench targets use — `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros — with a deliberately
//! simple measurement loop: each benchmark body runs `sample_size`
//! times (default 10) and the mean wall time is printed. No statistics,
//! no HTML reports; enough for `cargo bench` to build, run, and give a
//! rough per-bench number in the offline environment.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding `value` (re-export shaped like
/// `criterion::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, 10, &mut f);
        self
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs `f` as a benchmark of this group.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs `f` with a borrowed input as a benchmark of this group.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        let samples = self.sample_size;
        for _ in 0..samples {
            f(&mut b, input);
        }
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.total += start.elapsed();
        self.iters += 1;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("bench {name}: no iterations");
        } else {
            let mean = self.total / self.iters as u32;
            println!("bench {name}: {mean:?}/iter over {} iters", self.iters);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    for _ in 0..samples {
        f(&mut b);
    }
    b.report(name);
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts() {
        let mut c = Criterion::default();
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 3);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(2);
        let mut seen = 0u32;
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u32, |b, &x| {
            b.iter(|| seen = x * x)
        });
        g.finish();
        assert_eq!(seen, 49);
    }
}
