//! Streamed mutations and per-update work accounting.

use kiff_dataset::{ItemId, Rating, UserId};
use kiff_graph::EditStats;

/// One streamed mutation of the live dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Update {
    /// `ρ(user, item) += rating` — a new rating, or reinforcement of an
    /// existing one. Rating an item id beyond the current bound grows the
    /// item space; a `user` id one past the current bound implicitly adds
    /// that user (streams commonly interleave first-ever ratings of new
    /// users).
    AddRating {
        /// Rating user.
        user: UserId,
        /// Rated item.
        item: ItemId,
        /// Positive, finite rating value.
        rating: Rating,
    },
    /// Appends a user with an empty profile (the next dense id).
    AddUser,
    /// Deletes the rating `(user, item)`; a no-op when absent.
    RemoveRating {
        /// Rating user.
        user: UserId,
        /// Rated item.
        item: ItemId,
    },
}

/// Work performed by one `apply`/`apply_batch` call — the serving-cost
/// counters a capacity model needs (scan-rate analogue of §IV-C, but per
/// update instead of per construction).
///
/// The [`kiff_telemetry::Registry`] the engine records into (see
/// `OnlineConfig::telemetry`) carries the lifetime twins of these
/// per-call figures plus latency distributions the struct cannot hold:
/// `online.sims` mirrors [`UpdateStats::sim_evals`], `online.migrations`
/// mirrors [`UpdateStats::migrations`], the per-batch
/// [`UpdateStats::cross_messages`] is *derived* from the per-shard
/// `shard.N.cross_messages` counters (their delta across the batch), and
/// `online.apply_ns` / `online.repair_ns` / `shard.N.repair_ns`
/// histograms time what these counters only count.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateStats {
    /// Mutations applied (1 for `apply`, the batch length for
    /// `apply_batch`).
    pub updates: u64,
    /// Similarity evaluations performed by repair.
    pub sim_evals: u64,
    /// Shared-item counter adjustments (two per affected co-rater pair).
    pub counter_adjustments: u64,
    /// Heap edits, broken down by kind.
    pub edits: EditStats,
    /// Users re-scored against their candidate prefix (repair + Debatty
    /// propagation through reverse neighbours).
    pub repaired_users: u64,
    /// Cross-shard messages sent (always 0 for the single engine): the
    /// coordination cost a community-aware partitioner minimises. For
    /// the sharded engine this is the per-batch delta of the
    /// `shard.N.cross_messages` telemetry counters, so it reads 0 when
    /// the engine records into a disabled registry.
    pub cross_messages: u64,
    /// Users migrated between shards (rebalancer moves plus requested
    /// migrations applied during the call; 0 for the single engine).
    pub migrations: u64,
    /// Whether this call ended with a delta-storage re-compaction.
    pub compacted: bool,
}

impl UpdateStats {
    /// Accumulates `other` into `self` (compaction is sticky).
    pub fn merge(&mut self, other: &UpdateStats) {
        self.updates += other.updates;
        self.sim_evals += other.sim_evals;
        self.counter_adjustments += other.counter_adjustments;
        self.edits.merge(&other.edits);
        self.repaired_users += other.repaired_users;
        self.cross_messages += other.cross_messages;
        self.migrations += other.migrations;
        self.compacted |= other.compacted;
    }

    /// Mean similarity evaluations per applied update.
    pub fn sim_evals_per_update(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.sim_evals as f64 / self.updates as f64
        }
    }

    /// Mean heap edits (repaired edges) per applied update.
    pub fn edits_per_update(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.edits.total() as f64 / self.updates as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_and_averages() {
        let mut a = UpdateStats {
            updates: 1,
            sim_evals: 10,
            counter_adjustments: 4,
            edits: EditStats {
                inserts: 2,
                evictions: 1,
                removals: 0,
                reprioritized: 3,
            },
            repaired_users: 2,
            cross_messages: 5,
            migrations: 1,
            compacted: false,
        };
        let b = UpdateStats {
            updates: 3,
            sim_evals: 2,
            compacted: true,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.updates, 4);
        assert_eq!(a.sim_evals, 12);
        assert_eq!(a.cross_messages, 5);
        assert_eq!(a.migrations, 1);
        assert!(a.compacted);
        assert!((a.sim_evals_per_update() - 3.0).abs() < 1e-12);
        assert!((a.edits_per_update() - 1.5).abs() < 1e-12);
    }
}
