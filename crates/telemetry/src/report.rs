//! Human-readable pretty-printer for a [`TelemetrySnapshot`].

use std::fmt;

use crate::TelemetrySnapshot;

/// Pretty-prints a snapshot as aligned text sections (one per
/// instrument kind), for terminal reports. Histogram time values are
/// left in their recorded unit (the stack records nanoseconds under
/// `*_ns` names) — the printer scales `*_ns` columns to the most
/// readable unit per row.
///
/// ```
/// use kiff_telemetry::Registry;
///
/// let registry = Registry::new();
/// registry.counter("core.refine.sims").add(12);
/// let text = registry.snapshot().report().to_string();
/// assert!(text.contains("core.refine.sims"));
/// ```
#[derive(Debug)]
pub struct TelemetryReport<'a> {
    snapshot: &'a TelemetrySnapshot,
}

impl<'a> TelemetryReport<'a> {
    /// A report over `snapshot` (see [`TelemetrySnapshot::report`]).
    pub fn new(snapshot: &'a TelemetrySnapshot) -> Self {
        Self { snapshot }
    }
}

/// Scales a nanosecond value to a human unit.
fn fmt_nanos(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders a histogram column: nanosecond instruments get scaled,
/// plain-valued ones print raw.
fn fmt_value(name: &str, v: u64) -> String {
    if name.ends_with("_ns") {
        fmt_nanos(v)
    } else {
        v.to_string()
    }
}

impl fmt::Display for TelemetryReport<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot;
        writeln!(
            f,
            "telemetry ({})",
            if snap.enabled { "enabled" } else { "disabled" }
        )?;
        let name_width = snap
            .counters
            .iter()
            .map(|c| c.name.len())
            .chain(snap.gauges.iter().map(|g| g.name.len()))
            .chain(snap.histograms.iter().map(|h| h.name.len()))
            .max()
            .unwrap_or(0)
            .max(10);
        if !snap.counters.is_empty() {
            writeln!(f, "  counters:")?;
            for c in &snap.counters {
                writeln!(f, "    {:<name_width$}  {:>12}", c.name, c.value)?;
            }
        }
        if !snap.gauges.is_empty() {
            writeln!(f, "  gauges:")?;
            for g in &snap.gauges {
                writeln!(f, "    {:<name_width$}  {:>12}", g.name, g.value)?;
            }
        }
        if !snap.histograms.is_empty() {
            writeln!(f, "  histograms:")?;
            writeln!(
                f,
                "    {:<name_width$}  {:>10} {:>10} {:>10} {:>10} {:>10}",
                "", "count", "p50", "p95", "p99", "max"
            )?;
            for h in &snap.histograms {
                writeln!(
                    f,
                    "    {:<name_width$}  {:>10} {:>10} {:>10} {:>10} {:>10}",
                    h.name,
                    h.count,
                    fmt_value(&h.name, h.p50),
                    fmt_value(&h.name, h.p95),
                    fmt_value(&h.name, h.p99),
                    fmt_value(&h.name, h.max),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn report_lists_every_section() {
        let registry = Registry::new();
        registry.counter("a.count").add(3);
        registry.gauge("b.level").set(5);
        registry.histogram("c.lat_ns").record(2_000_000);
        let text = registry.snapshot().report().to_string();
        assert!(text.contains("telemetry (enabled)"), "{text}");
        assert!(text.contains("counters:"), "{text}");
        assert!(text.contains("a.count"), "{text}");
        assert!(text.contains("gauges:"), "{text}");
        assert!(text.contains("histograms:"), "{text}");
        assert!(text.contains("ms"), "nanos scaled: {text}");
    }

    #[test]
    fn empty_report_is_one_line() {
        let text = Registry::disabled().snapshot().report().to_string();
        assert_eq!(text.trim(), "telemetry (disabled)");
    }
}
