//! Telemetry overhead gate: `BENCH_telemetry.json`.
//!
//! Replays a planted-community stream through [`ShardedOnlineKnn`] in
//! two modes — recording into an enabled [`Registry`] versus a disabled
//! one — after an untimed warmup, in back-to-back on/off round pairs.
//! The gated statistic is the *median of per-pair wall-time ratios*:
//! the two halves of a pair run within milliseconds of each other, so
//! they almost always share whatever noise regime a shared CI runner is
//! in, and the median discards the pairs that straddle a regime change.
//! Sampling is sequential — the experiment keeps adding round pairs
//! (between `MIN_ROUNDS` and `MAX_ROUNDS`) until the estimate
//! clears `MIN_RATIO`; noise can only delay a pass, while a real
//! overhead regression holds the estimate below the bar through every
//! round and fails the gate. The experiment generates its own dataset
//! (larger than the shared streaming scenario) so the timed region is
//! long enough for a percent-level gate to be meaningful at smoke
//! scale. The instrumented engine resolves every handle at
//! construction and a disabled registry reduces each record to one
//! relaxed atomic load, so telemetry-on throughput must stay within a
//! few percent of telemetry-off: the run records a violation when the
//! ratio stays below `MIN_RATIO` (a **hard gate** in bench-smoke).
//!
//! Beyond the gate, the report surfaces what only the registry can see:
//! per-shard p99 repair latency (`shard.N.repair_ns`) and the
//! registry-derived similarity evaluations per update (`online.sims`),
//! cross-checked against [`UpdateStats`].

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use kiff_dataset::generators::planted::{generate_planted, PlantedConfig};
use kiff_dataset::zipf::Zipf;
use kiff_dataset::Dataset;
use kiff_online::{OnlineConfig, ShardConfig, ShardedOnlineKnn, Update, UpdateStats};
use kiff_telemetry::{Registry, TelemetrySnapshot};

use super::{Ctx, STREAM_K};

const SHARDS: usize = 4;
const BATCH: usize = 64;
/// Round pairs always measured before the first gate check.
const MIN_ROUNDS: usize = 9;
/// Round-pair cap: a below-gate estimate keeps sampling until it
/// either recovers (noise) or exhausts this many pairs (regression).
const MAX_ROUNDS: usize = 45;
/// The gate: telemetry-on throughput must be at least this fraction of
/// telemetry-off throughput.
const MIN_RATIO: f64 = 0.97;

/// A planted-community population large enough that one replay takes
/// tens of milliseconds even at smoke scale.
fn telemetry_dataset(multiplier: f64, seed: u64) -> Dataset {
    let m = multiplier.clamp(0.05, 2.0);
    let users = ((6000.0 * m) as usize).max(600);
    generate_planted(&PlantedConfig {
        name: "bench-telemetry".to_string(),
        num_users: users,
        num_items: (users * 4) / 5,
        communities: 2 * SHARDS,
        ratings_per_user: 12,
        affinity: 0.8,
        ..PlantedConfig::tiny("bench-telemetry", seed)
    })
    .0
}

/// Zipf-skewed arrivals over the existing population — deterministic in
/// the seed, identical for both modes.
fn telemetry_stream(ds: &Dataset, seed: u64) -> Vec<Update> {
    let user_dist = Zipf::new(ds.num_users(), 1.1);
    let item_dist = Zipf::new(ds.num_items(), 0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..2 * ds.num_users())
        .map(|_| Update::AddRating {
            user: user_dist.sample(&mut rng) as u32,
            item: item_dist.sample(&mut rng) as u32,
            rating: 1.0,
        })
        .collect()
}

struct Replay {
    elapsed_s: f64,
    stats: UpdateStats,
    snapshot: TelemetrySnapshot,
}

/// One full replay of `stream` through a fresh sharded engine recording
/// into `registry`; only the replay loop is timed (construction is the
/// same work in both modes).
///
/// The replay deliberately runs single-threaded regardless of
/// `--threads`: a percent-level wall-time gate needs additive-only noise
/// (a preempted serial run is only ever *slower*, so best-of-N converges
/// on the clean time), whereas worker threads timeslicing a shared CI
/// core make the parallel section's wall time depend on scheduler
/// interleaving in either direction. All `SHARDS` shards still run —
/// sequentially — so every per-shard instrument records, and per-record
/// telemetry cost is thread-count-independent, which is exactly what the
/// gate measures.
fn replay(base: &kiff_dataset::Dataset, stream: &[Update], registry: &Registry) -> Replay {
    let config = OnlineConfig::new(STREAM_K).with_telemetry(registry.clone());
    let shard_config = ShardConfig {
        threads: Some(1),
        ..ShardConfig::new(SHARDS)
    };
    let mut engine = ShardedOnlineKnn::new(base, config, shard_config);
    let start = Instant::now();
    for chunk in stream.chunks(BATCH) {
        engine.apply_batch(chunk.iter().copied());
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    Replay {
        elapsed_s,
        stats: *engine.lifetime_stats(),
        snapshot: registry.snapshot(),
    }
}

/// Runs the telemetry-overhead benchmark and writes
/// `BENCH_telemetry.json`.
pub fn telemetry(ctx: &mut Ctx) -> String {
    let base = telemetry_dataset(ctx.scale.multiplier, ctx.seed);
    let stream = telemetry_stream(&base, ctx.seed);
    let base = &base;

    // One untimed warmup so neither measured mode pays first-touch
    // costs, then measure in back-to-back on/off pairs (fresh registries
    // per round so every run records from zero). The gated statistic is
    // the median of per-pair off/on wall-time ratios: shared-runner
    // noise comes in regimes lasting many rounds, so pooled per-mode
    // statistics have an effective sample size of "number of regime
    // blocks", while the halves of one pair nearly always share a
    // regime and their ratio stays clean. The order within a pair flips
    // every round so drift inside a pair cannot systematically favour
    // whichever mode runs second, and sampling is sequential: a
    // below-gate estimate earns more rounds (up to MAX_ROUNDS) before
    // the verdict, so a noise burst delays the pass that a genuine
    // regression can never reach.
    replay(base, &stream, &Registry::disabled());
    let mut on_rounds: Vec<Replay> = Vec::with_capacity(MIN_ROUNDS);
    let mut off_rounds: Vec<Replay> = Vec::with_capacity(MIN_ROUNDS);
    let pair_ratio_median = |on: &[Replay], off: &[Replay]| -> f64 {
        let mut ratios: Vec<f64> = on
            .iter()
            .zip(off)
            .map(|(on, off)| off.elapsed_s / on.elapsed_s.max(1e-9))
            .collect();
        ratios.sort_by(f64::total_cmp);
        ratios[ratios.len() / 2]
    };
    loop {
        if on_rounds.len().is_multiple_of(2) {
            on_rounds.push(replay(base, &stream, &Registry::new()));
            off_rounds.push(replay(base, &stream, &Registry::disabled()));
        } else {
            off_rounds.push(replay(base, &stream, &Registry::disabled()));
            on_rounds.push(replay(base, &stream, &Registry::new()));
        }
        let n = on_rounds.len();
        if n >= MIN_ROUNDS
            && (pair_ratio_median(&on_rounds, &off_rounds) >= MIN_RATIO || n >= MAX_ROUNDS)
        {
            break;
        }
    }
    let rounds_run = on_rounds.len();
    let ratio = pair_ratio_median(&on_rounds, &off_rounds);
    // Per-mode medians give the human-readable wall/throughput figures
    // (the gate itself is the paired ratio above).
    let median = |rounds: &[Replay]| -> f64 {
        let mut times: Vec<f64> = rounds.iter().map(|r| r.elapsed_s).collect();
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    };
    let on_s = median(&on_rounds);
    let off_s = median(&off_rounds);
    // The replay is deterministic, so counters/stats agree across
    // rounds; any instrumented round's snapshot serves the readouts.
    let on = on_rounds.first().expect("MIN_ROUNDS > 0");

    let updates = on.stats.updates;
    let tput_on = updates as f64 / on_s.max(1e-9);
    let tput_off = updates as f64 / off_s.max(1e-9);

    // What only the registry can report.
    let shard_p99_ns: Vec<u64> = (0..SHARDS)
        .map(|s| {
            on.snapshot
                .histogram(&format!("shard.{s}.repair_ns"))
                .map(|h| h.p99)
                .unwrap_or(0)
        })
        .collect();
    let registry_sims = on.snapshot.counter("online.sims").unwrap_or(0);
    let sims_per_update = registry_sims as f64 / updates.max(1) as f64;

    let mut out = String::new();
    out.push_str(&format!(
        "Telemetry overhead on {}: {} users, {} streamed updates \
         ({SHARDS} shards, k={STREAM_K}, batch {BATCH}, paired medians over \
         {rounds_run} alternating round pairs)\n\n\
         {:>14}  {:>9}  {:>10}\n",
        base.name(),
        base.num_users(),
        updates,
        "mode",
        "wall (s)",
        "updates/s",
    ));
    out.push_str(&format!(
        "{:>14}  {:>9.3}  {:>10.0}\n{:>14}  {:>9.3}  {:>10.0}\n\n",
        "telemetry-on", on_s, tput_on, "telemetry-off", off_s, tput_off,
    ));
    out.push_str(&format!(
        "throughput ratio (on/off): {ratio:.4} (gate >= {MIN_RATIO})\n\
         registry sims/update     : {sims_per_update:.1} \
         (UpdateStats agrees: {})\n\
         per-shard repair p99     : {:?} ns\n",
        registry_sims == on.stats.sim_evals,
        shard_p99_ns,
    ));

    // Hard gate: enabled instruments must not cost measurable
    // throughput.
    if ratio < MIN_RATIO {
        let msg = format!(
            "telemetry/overhead: telemetry-on throughput ratio {ratio:.4} below {MIN_RATIO}"
        );
        eprintln!("TELEMETRY OVERHEAD VIOLATION: {msg}");
        out.push_str(&format!("VIOLATION: {msg}\n"));
        ctx.violations.push(msg);
    }
    // Sanity gate: the registry's lifetime counter must mirror the
    // engine's own accounting exactly, else the export is lying.
    if registry_sims != on.stats.sim_evals {
        let msg = format!(
            "telemetry/accounting: online.sims {registry_sims} != UpdateStats.sim_evals {}",
            on.stats.sim_evals
        );
        eprintln!("TELEMETRY ACCOUNTING VIOLATION: {msg}");
        out.push_str(&format!("VIOLATION: {msg}\n"));
        ctx.violations.push(msg);
    }

    let dataset_v = serde_json::json!({
        "name": base.name(),
        "num_users": base.num_users(),
        "num_items": base.num_items(),
        "num_ratings": base.num_ratings(),
        "streamed_updates": updates
    });
    let on_round_s: Vec<f64> = on_rounds.iter().map(|r| r.elapsed_s).collect();
    let off_round_s: Vec<f64> = off_rounds.iter().map(|r| r.elapsed_s).collect();
    let on_v = serde_json::json!({
        "median_wall_s": on_s,
        "round_wall_s": on_round_s,
        "updates_per_sec": tput_on
    });
    let off_v = serde_json::json!({
        "median_wall_s": off_s,
        "round_wall_s": off_round_s,
        "updates_per_sec": tput_off
    });
    let cross_messages = on
        .snapshot
        .counter_sum_matching("shard.", ".cross_messages");
    let payload = serde_json::json!({
        "dataset": dataset_v,
        "k": STREAM_K,
        "shards": SHARDS,
        "batch": BATCH,
        "rounds": rounds_run,
        "min_throughput_ratio": MIN_RATIO,
        "telemetry_on": on_v,
        "telemetry_off": off_v,
        "throughput_ratio": ratio,
        "per_shard_repair_p99_ns": shard_p99_ns,
        "sims_per_update": sims_per_update,
        "cross_shard_messages": cross_messages
    });
    // The named perf baseline future PRs diff against.
    if let Ok(text) = serde_json::to_string_pretty(&payload) {
        let path = ctx.out_dir.join("BENCH_telemetry.json");
        std::fs::write(&path, text)
            .unwrap_or_else(|e| eprintln!("warning: cannot write BENCH_telemetry.json: {e}"));
    }
    ctx.finish(
        "telemetry",
        "Telemetry overhead: instrumented vs disabled-registry replay throughput",
        out,
        &payload,
    )
}
