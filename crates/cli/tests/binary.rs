//! End-to-end tests of the compiled `kiff` binary: real process, real
//! argv, real files — the contract a shell user sees.

use std::path::PathBuf;
use std::process::Command;

fn kiff(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_kiff"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("kiff-bin-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn no_arguments_fails_with_usage() {
    let (ok, _, stderr) = kiff(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}

#[test]
fn help_succeeds() {
    let (ok, stdout, _) = kiff(&["help"]);
    assert!(ok);
    assert!(stdout.contains("build"), "{stdout}");
    assert!(stdout.contains("recommend"), "{stdout}");
}

#[test]
fn generate_build_recommend_pipeline() {
    let data = tmp("pipeline.tsv");
    let graph = tmp("pipeline-graph.tsv");

    let (ok, stdout, stderr) = kiff(&[
        "generate",
        "--preset",
        "wikipedia",
        "--scale",
        "0.05",
        "--output",
        data.to_str().unwrap(),
    ]);
    assert!(ok, "generate failed: {stderr}");
    assert!(stdout.contains("generated"), "{stdout}");

    let (ok, stdout, stderr) = kiff(&[
        "build",
        "--input",
        data.to_str().unwrap(),
        "--k",
        "5",
        "--threads",
        "1",
        "--output",
        graph.to_str().unwrap(),
    ]);
    assert!(ok, "build failed: {stderr}");
    assert!(stdout.contains("built 5-NN graph"), "{stdout}");
    let edges = std::fs::read_to_string(&graph).unwrap();
    assert!(edges.lines().filter(|l| !l.starts_with('#')).count() > 0);

    let (ok, stdout, stderr) = kiff(&[
        "recommend",
        "--input",
        data.to_str().unwrap(),
        "--user",
        "0",
        "--top",
        "3",
    ]);
    assert!(ok, "recommend failed: {stderr}");
    assert!(
        stdout.contains("top") || stdout.contains("no recommendations"),
        "{stdout}"
    );

    std::fs::remove_file(data).ok();
    std::fs::remove_file(graph).ok();
}

#[test]
fn errors_exit_nonzero_with_message() {
    let (ok, _, stderr) = kiff(&["stats", "--input", "/nonexistent/nope.tsv"]);
    assert!(!ok);
    assert!(stderr.contains("kiff:"), "stderr: {stderr}");

    let (ok, _, stderr) = kiff(&["build", "--input", "x.tsv"]);
    assert!(!ok);
    assert!(stderr.contains("--k is required"), "stderr: {stderr}");
}
