//! Offline evaluation protocols for the application layer.
//!
//! Recommender quality is measured by hiding ratings, rebuilding the
//! graph on what remains, and checking whether the hidden items resurface
//! in the recommendations. This module provides the splitting protocols
//! ([`holdout_last_per_user`], [`holdout_random`]) and the ranking
//! metrics ([`precision_at`], [`mean_reciprocal_rank`]) that complement
//! [`crate::recommend::hit_rate`].

use kiff_dataset::{Dataset, DatasetBuilder, ItemId, UserId};
use kiff_graph::KnnGraph;

use crate::recommend::Recommender;

/// A train/test split: the training dataset plus the held-out
/// `(user, item)` pairs removed from it.
#[derive(Debug)]
pub struct Split {
    /// Dataset with the held-out ratings removed.
    pub train: Dataset,
    /// The removed pairs, at most one per user.
    pub held_out: Vec<(UserId, ItemId)>,
}

/// Holds out each user's highest-id item (her "most recent" rating under
/// the common id-follows-time convention). Users with fewer than
/// `min_profile` ratings are left untouched — hiding one of two ratings
/// destroys the profile the prediction needs.
pub fn holdout_last_per_user(dataset: &Dataset, min_profile: usize) -> Split {
    holdout_by(dataset, min_profile, |p_len, _| p_len - 1)
}

/// Holds out one pseudo-random rating per user, deterministically derived
/// from `seed` (no RNG state to carry around).
pub fn holdout_random(dataset: &Dataset, min_profile: usize, seed: u64) -> Split {
    holdout_by(dataset, min_profile, move |p_len, u| {
        // SplitMix-style finaliser on (seed, u) → position.
        let mut x = seed ^ (u64::from(u) << 1) ^ 0x9e37_79b9_7f4a_7c15;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (x ^ (x >> 31)) as usize % p_len
    })
}

fn holdout_by(
    dataset: &Dataset,
    min_profile: usize,
    pick: impl Fn(usize, UserId) -> usize,
) -> Split {
    let min_profile = min_profile.max(2);
    let mut held_out = Vec::new();
    let mut builder = DatasetBuilder::new(
        format!("{}-train", dataset.name()),
        dataset.num_users(),
        dataset.num_items(),
    );
    for u in 0..dataset.num_users() as u32 {
        let p = dataset.user_profile(u);
        let victim = (p.len() >= min_profile).then(|| pick(p.len(), u));
        for (pos, (i, r)) in p.iter().enumerate() {
            if Some(pos) == victim {
                held_out.push((u, i));
            } else {
                builder.add_rating(u, i, r);
            }
        }
    }
    Split {
        train: builder.build(),
        held_out,
    }
}

/// Precision@N over held-out pairs: for each pair, `1/N` if the hidden
/// item is in the user's top-`n`, averaged over pairs. With one held-out
/// item per user this equals `hit_rate / n`.
pub fn precision_at(
    dataset: &Dataset,
    graph: &KnnGraph,
    held_out: &[(UserId, ItemId)],
    n: usize,
) -> f64 {
    if held_out.is_empty() || n == 0 {
        return 0.0;
    }
    crate::recommend::hit_rate(dataset, graph, held_out, n) / n as f64
}

/// Mean reciprocal rank of the hidden items in the users' top-`n`
/// recommendation lists (0 contribution when absent).
pub fn mean_reciprocal_rank(
    dataset: &Dataset,
    graph: &KnnGraph,
    held_out: &[(UserId, ItemId)],
    n: usize,
) -> f64 {
    if held_out.is_empty() {
        return 0.0;
    }
    let recommender = Recommender::new(
        std::sync::Arc::new(dataset.clone()),
        std::sync::Arc::new(graph.clone()),
    )
    .expect("graph and dataset disagree on the user count");
    let total: f64 = held_out
        .iter()
        .map(|&(u, hidden)| {
            recommender
                .recommend(u, n)
                .iter()
                .position(|r| r.item == hidden)
                .map_or(0.0, |rank| 1.0 / (rank + 1) as f64)
        })
        .sum();
    total / held_out.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new("ev", 3, 6);
        for i in 0..4 {
            b.add_rating(0, i, 1.0); // user 0: items 0–3
        }
        b.add_rating(1, 0, 1.0);
        b.add_rating(1, 5, 1.0); // user 1: items 0, 5
        b.add_rating(2, 2, 1.0); // user 2: a single rating
        b.build()
    }

    #[test]
    fn last_holdout_picks_highest_item() {
        let split = holdout_last_per_user(&dataset(), 2);
        assert_eq!(split.held_out, vec![(0, 3), (1, 5)]);
        // User 2 was protected by min_profile.
        assert_eq!(split.train.user_degree(2), 1);
        assert_eq!(split.train.user_degree(0), 3);
        assert_eq!(
            split.train.num_ratings(),
            dataset().num_ratings() - split.held_out.len()
        );
    }

    #[test]
    fn random_holdout_is_deterministic_and_valid() {
        let ds = dataset();
        let a = holdout_random(&ds, 2, 9);
        let b = holdout_random(&ds, 2, 9);
        assert_eq!(a.held_out, b.held_out);
        // Every held-out pair was a rating of the original dataset.
        for &(u, i) in &a.held_out {
            assert!(ds.user_profile(u).rating(i).is_some());
            assert!(a.train.user_profile(u).rating(i).is_none());
        }
        // A different seed eventually picks differently (not guaranteed
        // per user, but across the dataset it must at some seed).
        let c = holdout_random(&ds, 2, 10);
        let d = holdout_random(&ds, 2, 11);
        assert!(
            a.held_out != c.held_out || a.held_out != d.held_out || c.held_out != d.held_out,
            "three seeds picked identically"
        );
    }

    #[test]
    fn min_profile_floor_is_two() {
        // Even with min_profile = 0, singleton profiles are never emptied.
        let split = holdout_last_per_user(&dataset(), 0);
        assert_eq!(split.train.user_degree(2), 1);
    }

    #[test]
    fn metrics_on_a_transparent_graph() {
        use kiff_graph::Neighbor;
        let ds = dataset();
        let split = holdout_last_per_user(&ds, 2);
        // A graph where user 0 and 1 point at each other strongly.
        let graph = KnnGraph::from_neighbors(
            1,
            vec![
                vec![Neighbor { id: 1, sim: 1.0 }],
                vec![Neighbor { id: 0, sim: 1.0 }],
                vec![],
            ],
        );
        // User 1's hidden item 5 is unknown to user 0's profile and vice
        // versa: user 0's hidden item 3 cannot be recommended (nobody else
        // rated it), user 1's hidden 5 likewise. MRR/precision are 0 —
        // but on the *train* set both users share item 0, so recommending
        // works for visible items. Sanity: metrics are defined and in
        // range.
        let p = precision_at(&split.train, &graph, &split.held_out, 3);
        let mrr = mean_reciprocal_rank(&split.train, &graph, &split.held_out, 3);
        assert!((0.0..=1.0).contains(&p));
        assert!((0.0..=1.0).contains(&mrr));
        // Empty held-out slice short-circuits.
        assert_eq!(precision_at(&split.train, &graph, &[], 3), 0.0);
        assert_eq!(mean_reciprocal_rank(&split.train, &graph, &[], 3), 0.0);
    }

    #[test]
    fn mrr_rewards_earlier_ranks() {
        use kiff_graph::Neighbor;
        // user 0 rated items 0..4 minus hidden 3; user 1 rated 3 and 4
        // heavily. Hiding item 3 from user 0: neighbour 1 recommends
        // 3 (and 5).
        let mut b = DatasetBuilder::new("mrr", 2, 6);
        b.add_rating(0, 0, 1.0);
        b.add_rating(0, 1, 1.0);
        b.add_rating(1, 3, 5.0);
        b.add_rating(1, 5, 1.0);
        let ds = b.build();
        let graph = KnnGraph::from_neighbors(1, vec![vec![Neighbor { id: 1, sim: 1.0 }], vec![]]);
        let mrr = mean_reciprocal_rank(&ds, &graph, &[(0, 3)], 5);
        // Item 3 has the higher score (5.0 > 1.0) → rank 1 → MRR 1.
        assert!((mrr - 1.0).abs() < 1e-12, "mrr = {mrr}");
        let mrr2 = mean_reciprocal_rank(&ds, &graph, &[(0, 5)], 5);
        assert!((mrr2 - 0.5).abs() < 1e-12, "mrr = {mrr2}");
    }
}
