//! Online engine configuration.

use kiff_dataset::ProfileRef;
use kiff_similarity::{functions, ScoreKind};
use kiff_telemetry::Registry;

/// Which metric the online engine evaluates during repair.
///
/// Unlike the batch builders, the online engine cannot use metrics with
/// dataset-fitted state (precomputed norms, Adamic–Adar item weights):
/// fitted state goes stale under mutation. Every variant here is computed
/// directly from the two live profiles, so it is always exact on the
/// current dataset view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnlineMetric {
    /// Cosine over rating vectors (the paper's evaluation default).
    #[default]
    Cosine,
    /// Cosine over binary presence vectors.
    BinaryCosine,
    /// Jaccard's coefficient over item sets.
    Jaccard,
    /// Ruzicka (weighted Jaccard).
    WeightedJaccard,
    /// Dice coefficient.
    Dice,
}

impl OnlineMetric {
    /// Evaluates the metric on two live profiles.
    #[inline]
    pub fn eval(self, a: ProfileRef<'_>, b: ProfileRef<'_>) -> f64 {
        match self {
            OnlineMetric::Cosine => functions::weighted_cosine(a, b),
            OnlineMetric::BinaryCosine => functions::binary_cosine(a, b),
            OnlineMetric::Jaccard => functions::jaccard(a, b),
            OnlineMetric::WeightedJaccard => functions::weighted_jaccard(a, b),
            OnlineMetric::Dice => functions::dice(a, b),
        }
    }

    /// Metric name for reports.
    pub fn name(self) -> &'static str {
        match self {
            OnlineMetric::Cosine => "cosine",
            OnlineMetric::BinaryCosine => "binary-cosine",
            OnlineMetric::Jaccard => "jaccard",
            OnlineMetric::WeightedJaccard => "weighted-jaccard",
            OnlineMetric::Dice => "dice",
        }
    }

    /// The [`ScoreKind`] driving prepared repair scoring
    /// ([`kiff_similarity::ScorerWorkspace::prepare`]); the prepared
    /// scorer reproduces [`OnlineMetric::eval`] exactly.
    pub fn kind(self) -> ScoreKind {
        match self {
            OnlineMetric::Cosine => ScoreKind::Cosine,
            OnlineMetric::BinaryCosine => ScoreKind::BinaryCosine,
            OnlineMetric::Jaccard => ScoreKind::Jaccard,
            OnlineMetric::WeightedJaccard => ScoreKind::WeightedJaccard,
            OnlineMetric::Dice => ScoreKind::Dice,
        }
    }
}

/// Knobs of the [`OnlineKnn`](crate::OnlineKnn) engine. Defaults follow
/// the batch paper parameters where an analogue exists: the repair width
/// is the online γ.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Neighbourhood size `k`.
    pub k: usize,
    /// How many top-ranked candidates (by live shared-item count) a repair
    /// re-scores — the online analogue of the paper's γ. Default `8k`:
    /// unlike the batch loop, which pops `γ = 2k` per iteration and
    /// iterates to convergence, a repair gets one shot at the candidate
    /// ranking, so it reads a deeper prefix.
    pub repair_width: usize,
    /// Cap on *additional* users repaired per `apply` beyond those a
    /// mutation touched directly — the Debatty-style propagation budget.
    pub max_propagation: usize,
    /// Similarity metric.
    pub metric: OnlineMetric,
    /// Re-compact the delta storage once this fraction of users carries an
    /// overlay profile. `1.0` effectively disables compaction.
    pub compaction_threshold: f64,
    /// Telemetry registry the engine records into (`online.*` apply and
    /// repair instruments, per-shard `shard.N.*` instruments, and the
    /// `similarity.*` scorer counters). Each config starts with its own
    /// enabled registry; share one across engines with
    /// [`OnlineConfig::with_telemetry`].
    pub telemetry: Registry,
}

impl OnlineConfig {
    /// Defaults for neighbourhood size `k`: `repair_width = 8k`,
    /// propagation budget 64, cosine, compaction at 25% overlay.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            repair_width: 8 * k,
            max_propagation: 64,
            metric: OnlineMetric::default(),
            compaction_threshold: 0.25,
            telemetry: Registry::new(),
        }
    }

    /// Sets the repair width (online γ).
    pub fn with_repair_width(mut self, width: usize) -> Self {
        assert!(width > 0, "repair width must be positive");
        self.repair_width = width;
        self
    }

    /// Sets the propagation budget.
    pub fn with_max_propagation(mut self, budget: usize) -> Self {
        self.max_propagation = budget;
        self
    }

    /// Sets the metric.
    pub fn with_metric(mut self, metric: OnlineMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the overlay fraction that triggers re-compaction.
    pub fn with_compaction_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        self.compaction_threshold = threshold;
        self
    }

    /// Records the engine into `registry` (shared, not copied). Pass the
    /// same registry to several engines — or to a batch
    /// [`KiffConfig`](kiff_core::KiffConfig) — to aggregate one snapshot
    /// across layers, or a [`Registry::disabled`] one to reduce every
    /// instrument operation to a single relaxed load. Note the sharded
    /// engine *derives* its cross-shard traffic accounting from this
    /// registry, so a disabled registry also zeroes those derived
    /// statistics (see `ShardedOnlineKnn::shard_cross_traffic`).
    pub fn with_telemetry(mut self, registry: Registry) -> Self {
        self.telemetry = registry;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_scale_with_k() {
        let cfg = OnlineConfig::new(10);
        assert_eq!(cfg.repair_width, 80);
        assert_eq!(cfg.metric, OnlineMetric::Cosine);
        assert!(cfg.max_propagation > 0);
    }

    #[test]
    fn metric_eval_matches_functions() {
        let items = [1u32, 4, 7];
        let ratings = [1.0f32, 2.0, 3.0];
        let a = ProfileRef {
            items: &items,
            ratings: &ratings,
        };
        let other_items = [4u32, 7, 9];
        let other_ratings = [2.0f32, 1.0, 5.0];
        let b = ProfileRef {
            items: &other_items,
            ratings: &other_ratings,
        };
        assert_eq!(
            OnlineMetric::Cosine.eval(a, b),
            functions::weighted_cosine(a, b)
        );
        assert_eq!(OnlineMetric::Jaccard.eval(a, b), functions::jaccard(a, b));
        assert!(OnlineMetric::Dice.eval(a, b) > 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = OnlineConfig::new(0);
    }
}
