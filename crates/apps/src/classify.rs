//! k-nearest-neighbour classification over a KNN graph.
//!
//! Classification is the third service §I motivates KNN graphs with. With
//! a label per (known) user, a user's class is predicted by a
//! similarity-weighted vote among her labelled graph neighbours — the
//! textbook weighted-kNN rule, with the expensive part (finding the
//! neighbours) already amortised into the graph.

use kiff_collections::FxHashMap;
use kiff_dataset::UserId;
use kiff_graph::KnnGraph;

/// The outcome of one weighted vote.
#[derive(Debug, Clone, PartialEq)]
pub struct Vote {
    /// Winning label.
    pub label: u32,
    /// Total similarity mass behind the winner.
    pub weight: f64,
    /// Winner's share of the total vote mass, in `(0, 1]`.
    pub confidence: f64,
}

/// A weighted-vote kNN classifier.
///
/// `labels[u]` holds user `u`'s class; [`KnnClassifier::UNLABELED`] marks
/// users whose class is unknown (e.g. the test split) — they never vote.
///
/// ```
/// use kiff_apps::KnnClassifier;
/// use kiff_graph::{KnnGraph, Neighbor};
///
/// let graph = KnnGraph::from_neighbors(1, vec![vec![Neighbor { id: 1, sim: 0.9 }], vec![]]);
/// let labels = [KnnClassifier::UNLABELED, 7];
/// let c = KnnClassifier::new(&graph, &labels);
/// assert_eq!(c.predict(0).unwrap().label, 7);
/// ```
#[derive(Debug, Clone)]
pub struct KnnClassifier<'a> {
    graph: &'a KnnGraph,
    labels: &'a [u32],
}

impl<'a> KnnClassifier<'a> {
    /// Sentinel for "no label": excluded from every vote.
    pub const UNLABELED: u32 = u32::MAX;

    /// Wraps a graph and per-user labels.
    ///
    /// # Panics
    /// If `labels.len()` differs from the graph's user count.
    pub fn new(graph: &'a KnnGraph, labels: &'a [u32]) -> Self {
        assert_eq!(
            graph.num_users(),
            labels.len(),
            "labels and graph disagree on |U|"
        );
        Self { graph, labels }
    }

    /// Predicts `u`'s class by similarity-weighted vote among its
    /// labelled neighbours. Ties break towards the smaller label;
    /// `None` when no labelled neighbour with positive similarity exists.
    pub fn predict(&self, u: UserId) -> Option<Vote> {
        let mut mass: FxHashMap<u32, f64> = FxHashMap::default();
        let mut total = 0.0;
        for n in self.graph.neighbors(u) {
            let label = self.labels[n.id as usize];
            if label == Self::UNLABELED || n.sim <= 0.0 {
                continue;
            }
            *mass.entry(label).or_insert(0.0) += n.sim;
            total += n.sim;
        }
        let (label, weight) = mass.into_iter().min_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        })?;
        Some(Vote {
            label,
            weight,
            confidence: weight / total,
        })
    }

    /// Predicts every user in `users`, yielding `(user, vote)` pairs for
    /// those with a defined prediction.
    pub fn predict_all<'s>(
        &'s self,
        users: impl IntoIterator<Item = UserId> + 's,
    ) -> impl Iterator<Item = (UserId, Vote)> + 's {
        users
            .into_iter()
            .filter_map(move |u| self.predict(u).map(|v| (u, v)))
    }
}

/// Classification accuracy of `classifier` on `(user, true label)` pairs.
/// Users without a prediction count as errors (the honest convention for
/// end-to-end comparisons). Returns 0.0 on an empty slice.
pub fn accuracy(classifier: &KnnClassifier<'_>, test: &[(UserId, u32)]) -> f64 {
    if test.is_empty() {
        return 0.0;
    }
    let correct = test
        .iter()
        .filter(|&&(u, truth)| classifier.predict(u).is_some_and(|v| v.label == truth))
        .count();
    correct as f64 / test.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_graph::Neighbor;

    fn graph() -> KnnGraph {
        // User 0's neighbours: 1 (sim .8, label A), 2 (sim .5, label B),
        // 3 (sim .4, label B). Weighted vote: B wins .9 vs .8.
        KnnGraph::from_neighbors(
            3,
            vec![
                vec![
                    Neighbor { id: 1, sim: 0.8 },
                    Neighbor { id: 2, sim: 0.5 },
                    Neighbor { id: 3, sim: 0.4 },
                ],
                vec![Neighbor { id: 0, sim: 0.8 }],
                vec![],
                vec![],
            ],
        )
    }

    #[test]
    fn weighted_vote_beats_plurality() {
        let g = graph();
        let labels = [KnnClassifier::UNLABELED, 0, 1, 1];
        let c = KnnClassifier::new(&g, &labels);
        let v = c.predict(0).unwrap();
        assert_eq!(v.label, 1);
        assert!((v.weight - 0.9).abs() < 1e-12);
        assert!((v.confidence - 0.9 / 1.7).abs() < 1e-12);
    }

    #[test]
    fn unlabeled_neighbours_do_not_vote() {
        let g = graph();
        // Only neighbour 1 is labelled.
        let labels = [
            KnnClassifier::UNLABELED,
            7,
            KnnClassifier::UNLABELED,
            KnnClassifier::UNLABELED,
        ];
        let c = KnnClassifier::new(&g, &labels);
        let v = c.predict(0).unwrap();
        assert_eq!(v.label, 7);
        assert!((v.confidence - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_labelled_neighbours_is_none() {
        let g = graph();
        let labels = [1, 1, 1, 1];
        let c = KnnClassifier::new(&g, &labels);
        assert_eq!(c.predict(2), None, "user 2 has no neighbours");
    }

    #[test]
    fn tie_breaks_to_smaller_label() {
        let g = KnnGraph::from_neighbors(
            2,
            vec![
                vec![Neighbor { id: 1, sim: 0.5 }, Neighbor { id: 2, sim: 0.5 }],
                vec![],
                vec![],
            ],
        );
        let labels = [KnnClassifier::UNLABELED, 9, 3];
        let c = KnnClassifier::new(&g, &labels);
        assert_eq!(c.predict(0).unwrap().label, 3);
    }

    #[test]
    fn accuracy_counts_missing_as_errors() {
        let g = graph();
        let labels = [KnnClassifier::UNLABELED, 0, 1, 1];
        let c = KnnClassifier::new(&g, &labels);
        // user 0 → predicted 1 (correct); user 2 → None (error).
        assert_eq!(accuracy(&c, &[(0, 1), (2, 0)]), 0.5);
        assert_eq!(accuracy(&c, &[]), 0.0);
    }

    #[test]
    fn predict_all_skips_undefined() {
        let g = graph();
        let labels = [KnnClassifier::UNLABELED, 0, 1, 1];
        let c = KnnClassifier::new(&g, &labels);
        let out: Vec<_> = c.predict_all(0..4).collect();
        // User 0 votes via labelled neighbours 1–3; user 1's only
        // neighbour (user 0) is unlabeled, and users 2–3 have none.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 0);
    }

    #[test]
    fn planted_communities_classify_well() {
        use kiff_core::{Kiff, KiffConfig};
        use kiff_dataset::generators::{generate_planted, PlantedConfig};
        use kiff_similarity::WeightedCosine;

        let (ds, truth) = generate_planted(&PlantedConfig::tiny("cls", 29));
        let sim = WeightedCosine::fit(&ds);
        let graph = Kiff::new(KiffConfig::new(10)).run(&ds, &sim).graph;

        // Hold out every fifth user.
        let mut labels = truth.clone();
        let mut test = Vec::new();
        for u in (0..ds.num_users()).step_by(5) {
            labels[u] = KnnClassifier::UNLABELED;
            test.push((u as u32, truth[u]));
        }
        let c = KnnClassifier::new(&graph, &labels);
        let acc = accuracy(&c, &test);
        assert!(acc > 0.9, "accuracy = {acc}");
    }
}
