//! Criterion benches for the beyond-paper extensions (ext1–ext3):
//! L2Knng vs the other exact constructions, LSH banding schemes, and the
//! §VII rating-threshold heuristic.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kiff_baselines::{L2Knng, L2KnngConfig, Lsh, LshConfig, LshFamily};
use kiff_bench::datasets::small_bench_dataset;
use kiff_core::{Kiff, KiffConfig};
use kiff_graph::{exact_knn, exact_knn_brute};
use kiff_similarity::WeightedCosine;

fn bench(c: &mut Criterion) {
    let ds = small_bench_dataset(19);
    let sim = WeightedCosine::fit(&ds);
    let k = 10;

    // ext1 flavour: every *exact* construction route under cosine.
    let mut group = c.benchmark_group("ext_exact_constructions");
    group.sample_size(10);
    group.bench_function("l2knng", |b| {
        b.iter(|| black_box(L2Knng::new(L2KnngConfig::new(k)).run(&ds)))
    });
    group.bench_function("inverted_index", |b| {
        b.iter(|| black_box(exact_knn(&ds, &sim, k, Some(2))))
    });
    group.bench_function("kiff_gamma_inf", |b| {
        b.iter(|| black_box(Kiff::new(KiffConfig::exact(k)).run(&ds, &sim)))
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| black_box(exact_knn_brute(&ds, &sim, k, Some(2))))
    });
    group.finish();

    // ext1 flavour: LSH banding schemes (recall/time trade-off).
    let mut group = c.benchmark_group("ext_lsh_banding");
    group.sample_size(10);
    for (name, band_bits) in [("bands_4bit", 4), ("bands_8bit", 8), ("bands_16bit", 16)] {
        let config = LshConfig {
            family: LshFamily::CosineHyperplane {
                bits: 64,
                band_bits,
            },
            ..LshConfig::new(k)
        };
        group.bench_function(name, |b| {
            let lsh = Lsh::new(config.clone());
            b.iter(|| black_box(lsh.run(&ds, &sim)))
        });
    }
    group.finish();

    // §VII insertion-limit flavour: RCS length caps.
    let mut group = c.benchmark_group("ext_max_rcs");
    group.sample_size(10);
    for (name, cap) in [
        ("uncapped", None),
        ("cap_64", Some(64)),
        ("cap_16", Some(16)),
    ] {
        group.bench_function(name, |b| {
            let mut config = KiffConfig::new(k);
            config.threads = Some(2);
            config.max_rcs = cap;
            let kiff = Kiff::new(config);
            b.iter(|| black_box(kiff.run(&ds, &sim)))
        });
    }
    group.finish();

    // ext2 flavour: §VII rating-threshold heuristic on count-valued data.
    let counted = kiff_bench::datasets::counts_bench_dataset(23);
    let csim = WeightedCosine::fit(&counted);
    let mut group = c.benchmark_group("ext_rating_threshold");
    group.sample_size(10);
    for (name, threshold) in [("off", None), ("ge2", Some(2.0f32)), ("ge3", Some(3.0))] {
        group.bench_function(name, |b| {
            let mut config = KiffConfig::new(k);
            config.threads = Some(2);
            config.rating_threshold = threshold;
            let kiff = Kiff::new(config);
            b.iter(|| black_box(kiff.run(&counted, &csim)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
