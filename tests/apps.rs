//! Cross-crate behaviour of the application layer (`kiff-apps`) on top of
//! graphs built by the real algorithms.

use proptest::prelude::*;

use kiff::prelude::*;
use kiff_apps::{accuracy, hit_rate};
use kiff_dataset::generators::{generate_planted, PlantedConfig};
use kiff_dataset::ItemId;

/// Builds a [`Recommender`] over borrowed data by cloning into the
/// `Arc` snapshots the owning constructor expects.
fn rec_over(ds: &Dataset, graph: &KnnGraph) -> Recommender {
    Recommender::new(
        std::sync::Arc::new(ds.clone()),
        std::sync::Arc::new(graph.clone()),
    )
    .expect("graph and dataset agree")
}

fn searcher_over(ds: &Dataset, graph: &KnnGraph, metric: ProfileMetric) -> GraphSearcher {
    GraphSearcher::new(
        std::sync::Arc::new(ds.clone()),
        std::sync::Arc::new(graph.clone()),
        metric,
    )
    .expect("graph and dataset agree")
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (
        3usize..30,
        3usize..25,
        proptest::collection::vec((0u32..30, 0u32..25, 1u32..6), 3..200),
    )
        .prop_map(|(nu, ni, triples)| {
            let mut b = DatasetBuilder::new("prop-apps", nu, ni);
            for (u, i, r) in triples {
                b.add_rating(u % nu as u32, i % ni as u32, r as f32);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recommendations never contain items the user already rated, are
    /// sorted by score, and contain no duplicates — for every user, on
    /// any dataset, over a real KIFF graph.
    #[test]
    fn recommendations_well_formed(ds in arb_dataset(), n in 1usize..8) {
        let sim = WeightedCosine::fit(&ds);
        let graph = Kiff::new(KiffConfig::new(3).with_threads(1)).run(&ds, &sim).graph;
        let rec = rec_over(&ds, &graph);
        for u in 0..ds.num_users() as u32 {
            let recs = rec.recommend(u, n);
            prop_assert!(recs.len() <= n);
            let own = ds.user_profile(u);
            for w in recs.windows(2) {
                prop_assert!(w[0].score >= w[1].score);
            }
            let mut items: Vec<ItemId> = recs.iter().map(|r| r.item).collect();
            items.sort_unstable();
            items.dedup();
            prop_assert_eq!(items.len(), recs.len(), "duplicates for user {}", u);
            for r in &recs {
                prop_assert!(own.rating(r.item).is_none(), "user {} already rated {}", u, r.item);
                prop_assert!(r.score > 0.0);
            }
        }
    }

    /// Predicted ratings stay within the range of the ratings present in
    /// the dataset (a weighted mean cannot extrapolate).
    #[test]
    fn predictions_within_rating_range(ds in arb_dataset()) {
        let sim = WeightedCosine::fit(&ds);
        let graph = Kiff::new(KiffConfig::new(3).with_threads(1)).run(&ds, &sim).graph;
        let rec = rec_over(&ds, &graph);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (_, _, r) in ds.iter_ratings() {
            lo = lo.min(f64::from(r));
            hi = hi.max(f64::from(r));
        }
        for u in 0..ds.num_users() as u32 {
            for i in 0..ds.num_items() as u32 {
                if let Some(p) = rec.predict_rating(u, i) {
                    prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "p = {}", p);
                }
            }
        }
    }

    /// Graph search with the query equal to an existing profile always
    /// ranks a perfect match first (there is at least one: the user
    /// herself is reachable through her own item profiles).
    #[test]
    fn search_self_query_tops_at_one(ds in arb_dataset()) {
        let sim = WeightedCosine::fit(&ds);
        let graph = Kiff::new(KiffConfig::new(3).with_threads(1)).run(&ds, &sim).graph;
        let searcher = searcher_over(&ds, &graph, ProfileMetric::Cosine);
        for u in 0..ds.num_users() as u32 {
            let p = ds.user_profile(u);
            if p.is_empty() {
                continue;
            }
            let query = QueryProfile::new(p.iter());
            let hits = searcher.search(&query, 1, 20);
            prop_assert!(!hits.is_empty(), "user {} found nothing", u);
            prop_assert!((hits[0].sim - 1.0).abs() < 1e-9, "top sim {}", hits[0].sim);
        }
    }
}

/// Leave-one-out hit rate over a KIFF graph comfortably beats random
/// recommendation on planted-community data.
#[test]
fn hit_rate_beats_random() {
    // Six communities over 50-item blocks: a user's 14 ratings cover a
    // quarter of her home block, so neighbours genuinely predict taste.
    let cfg = PlantedConfig {
        num_users: 400,
        num_items: 300,
        communities: 6,
        ratings_per_user: 14,
        affinity: 0.9,
        ..PlantedConfig::tiny("hit", 234)
    };
    let (full, labels) = generate_planted(&cfg);

    // Hold out one *home-block* rating per user — the standard protocol
    // holds out an item reflecting the user's actual taste; a noise-block
    // rating is unpredictable by construction and measures nothing.
    let block = cfg.num_items / cfg.communities;
    let mut held_out = Vec::new();
    let mut b = DatasetBuilder::new("hit-train", full.num_users(), full.num_items());
    for u in 0..full.num_users() as u32 {
        let home = labels[u as usize] as usize;
        let lo = (home * block) as u32;
        let hi = if home + 1 == cfg.communities {
            cfg.num_items as u32
        } else {
            lo + block as u32
        };
        let p = full.user_profile(u);
        let victim = p.items.iter().copied().find(|&i| i >= lo && i < hi);
        for (i, r) in p.iter() {
            if Some(i) == victim {
                held_out.push((u, i));
            } else {
                b.add_rating(u, i, r);
            }
        }
    }
    let train = b.build();
    let sim = WeightedCosine::fit(&train);
    let graph = Kiff::new(KiffConfig::new(10)).run(&train, &sim).graph;

    let n = 20;
    let hr = hit_rate(&train, &graph, &held_out, n);
    // Random top-n over ~300 unrated items would hit ≈ n/300 ≈ 6.7%.
    let random = n as f64 / full.num_items() as f64;
    assert!(
        hr > 3.0 * random,
        "hit rate {hr:.3} not clearly above random {random:.3}"
    );
}

/// Classification accuracy degrades gracefully as the planted structure
/// dissolves: perfectly separable ≥ noisy ≥ unstructured.
#[test]
fn classifier_tracks_community_strength() {
    let mut accs = Vec::new();
    for affinity in [1.0, 0.7, 1.0 / 3.0] {
        let cfg = PlantedConfig {
            affinity,
            ..PlantedConfig::tiny("strength", 239)
        };
        let (ds, truth) = generate_planted(&cfg);
        let sim = WeightedCosine::fit(&ds);
        let graph = Kiff::new(KiffConfig::new(8)).run(&ds, &sim).graph;
        let mut labels = truth.clone();
        let mut test = Vec::new();
        for u in (0..ds.num_users()).step_by(4) {
            labels[u] = KnnClassifier::UNLABELED;
            test.push((u as u32, truth[u]));
        }
        let c = KnnClassifier::new(&graph, &labels);
        accs.push(accuracy(&c, &test));
    }
    assert!(
        accs[0] >= accs[1] && accs[1] >= accs[2] - 0.05,
        "accuracies not ordered: {accs:?}"
    );
    assert!(accs[0] > 0.95, "separable case should be near-perfect");
    // Unstructured data cannot beat chance by much (3 classes → ~1/3).
    assert!(accs[2] < 0.6, "noise case suspiciously good: {}", accs[2]);
}

/// The recommendation pipeline works identically over graphs built by
/// every construction algorithm (they are interchangeable back-ends).
#[test]
fn apps_accept_any_algorithm_graph() {
    use kiff::{Algorithm, KnnGraphBuilder};
    let (ds, _) = generate_planted(&PlantedConfig::tiny("any-algo", 241));
    for algo in [
        Algorithm::Kiff,
        Algorithm::NnDescent,
        Algorithm::HyRec,
        Algorithm::L2Knng,
        Algorithm::Lsh,
        Algorithm::Exact,
    ] {
        let graph = KnnGraphBuilder::new(5)
            .algorithm(algo)
            .threads(1)
            .build(&ds);
        let rec = rec_over(&ds, &graph);
        // Every user must get well-formed output (possibly empty for LSH).
        for u in (0..ds.num_users() as u32).step_by(37) {
            let recs = rec.recommend(u, 5);
            for r in &recs {
                assert!(ds.user_profile(u).rating(r.item).is_none(), "{algo:?}");
            }
        }
    }
}
