//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the tiny slice of the
//! `rand 0.8` API this workspace actually uses is re-implemented here:
//! [`rngs::StdRng`] (a xoshiro256++ generator seeded through SplitMix64),
//! the [`Rng`] / [`SeedableRng`] traits, and [`seq::SliceRandom::shuffle`].
//! The generator is deterministic per seed, which is all the workspace
//! relies on; the exact stream differs from upstream `rand`.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from all bit patterns (a stand-in for
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the span sizes this workspace uses.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return <$t as Standard>::sample_standard(rng);
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing generator trait (a stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seeding. Deterministic per seed; not the upstream `StdRng` stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (a stand-in for `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded(rng, self.len())])
            }
        }
    }

    fn bounded<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        ((rng.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
