//! The length-prefixed JSON wire protocol.
//!
//! Frames are `u32` little-endian byte length + UTF-8 JSON. Requests
//! carry an `"op"` discriminator; responses carry `"ok": true` plus
//! op-specific fields, or `"ok": false` with an `"error"` object whose
//! `kind` is the server-side [`KiffError::kind`] tag:
//!
//! ```text
//! → {"op":"neighbors","user":3}
//! ← {"ok":true,"neighbors":[{"id":1,"sim":0.5}, …]}
//! → {"op":"neighbors","user":99}
//! ← {"ok":false,"error":{"kind":"unknown_user","message":"…"}}
//! ```
//!
//! View-served responses (`neighbors`, `recommend`, `predict`,
//! `audience`, `search`, `stats`) and update acks additionally carry a
//! `"view"` field: the monotone version of the published read view the
//! answer was computed from (or, for an ack, the version the write
//! became visible at). Clients that don't care simply ignore it —
//! parsers must tolerate unknown response fields.
//!
//! JSON (rather than a binary encoding) keeps the protocol debuggable
//! with a five-line script; the framing keeps it unambiguous over a
//! stream. Updates use a tagged representation mirroring
//! [`Update`]:
//! `{"type":"add_rating","user":u,"item":i,"rating":r}`,
//! `{"type":"add_user"}`, `{"type":"remove_rating","user":u,"item":i}`.

use std::io::{Read, Write};

use kiff_core::KiffError;
use kiff_online::Update;
use serde_json::Value;

/// Frames larger than this are rejected as a protocol error — nothing
/// the protocol legitimately carries comes close.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// `user`'s current neighbour list.
    Neighbors {
        /// Queried user.
        user: u32,
    },
    /// Top-`top` item recommendations for `user`.
    Recommend {
        /// Target user.
        user: u32,
        /// List length.
        top: usize,
    },
    /// Predicted rating of `item` by `user`.
    Predict {
        /// Target user.
        user: u32,
        /// Target item.
        item: u32,
    },
    /// The `top` users most interested in `item`.
    Audience {
        /// Target item.
        item: u32,
        /// List length.
        top: usize,
    },
    /// Profile search: users most similar to an ad-hoc profile.
    Search {
        /// `(item, rating)` pairs of the query profile.
        items: Vec<(u32, f32)>,
        /// Result length.
        top: usize,
    },
    /// Apply a batch of updates (persisted to the WAL first).
    Update {
        /// The mutations, in order.
        updates: Vec<Update>,
        /// Client-assigned batch id for idempotent retry (0 = none).
        /// Ids at or below the server's applied high-water mark are
        /// acknowledged without re-applying.
        batch: u64,
    },
    /// Engine lifetime statistics.
    Stats,
    /// Daemon health: `healthy | degraded | recovering`, current seq,
    /// applied-batch high-water mark, and WAL/snapshot ages.
    Health,
    /// Telemetry snapshot of the daemon's registry.
    Metrics,
    /// Force a snapshot now.
    Snapshot,
    /// Graceful daemon shutdown.
    Shutdown,
}

fn protocol(msg: impl Into<String>) -> KiffError {
    KiffError::Protocol(msg.into())
}

fn get_u32(v: &Value, key: &str) -> Result<u32, KiffError> {
    v.get(key)
        .and_then(Value::as_u64)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| protocol(format!("missing or invalid `{key}`")))
}

fn get_top(v: &Value, default: usize) -> Result<usize, KiffError> {
    match v.get("top") {
        None => Ok(default),
        Some(t) => t
            .as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| protocol("invalid `top`")),
    }
}

/// Converts one [`Update`] to its wire representation.
pub fn update_to_value(update: &Update) -> Value {
    match update {
        Update::AddRating { user, item, rating } => serde_json::json!({
            "type": "add_rating",
            "user": *user,
            "item": *item,
            "rating": *rating
        }),
        Update::AddUser => serde_json::json!({"type": "add_user"}),
        Update::RemoveRating { user, item } => serde_json::json!({
            "type": "remove_rating",
            "user": *user,
            "item": *item
        }),
    }
}

/// Parses one wire update object.
pub fn update_from_value(v: &Value) -> Result<Update, KiffError> {
    let kind = v
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| protocol("update missing `type`"))?;
    match kind {
        "add_rating" => {
            let rating =
                v.get("rating")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| protocol("missing or invalid `rating`"))? as f32;
            if !rating.is_finite() || rating <= 0.0 {
                return Err(protocol(format!("rating {rating} must be finite positive")));
            }
            Ok(Update::AddRating {
                user: get_u32(v, "user")?,
                item: get_u32(v, "item")?,
                rating,
            })
        }
        "add_user" => Ok(Update::AddUser),
        "remove_rating" => Ok(Update::RemoveRating {
            user: get_u32(v, "user")?,
            item: get_u32(v, "item")?,
        }),
        other => Err(protocol(format!("unknown update type `{other}`"))),
    }
}

impl Request {
    /// Parses a decoded request frame.
    pub fn from_value(v: &Value) -> Result<Self, KiffError> {
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| protocol("request missing `op`"))?;
        match op {
            "ping" => Ok(Request::Ping),
            "neighbors" => Ok(Request::Neighbors {
                user: get_u32(v, "user")?,
            }),
            "recommend" => Ok(Request::Recommend {
                user: get_u32(v, "user")?,
                top: get_top(v, 10)?,
            }),
            "predict" => Ok(Request::Predict {
                user: get_u32(v, "user")?,
                item: get_u32(v, "item")?,
            }),
            "audience" => Ok(Request::Audience {
                item: get_u32(v, "item")?,
                top: get_top(v, 10)?,
            }),
            "search" => {
                let items = v
                    .get("items")
                    .and_then(Value::as_array)
                    .ok_or_else(|| protocol("missing `items`"))?
                    .iter()
                    .map(|pair| {
                        let item = pair
                            .get("item")
                            .and_then(Value::as_u64)
                            .and_then(|n| u32::try_from(n).ok())
                            .ok_or_else(|| protocol("search item missing `item`"))?;
                        let rating =
                            pair.get("rating").and_then(Value::as_f64).unwrap_or(1.0) as f32;
                        Ok((item, rating))
                    })
                    .collect::<Result<Vec<_>, KiffError>>()?;
                Ok(Request::Search {
                    items,
                    top: get_top(v, 10)?,
                })
            }
            "update" => {
                let updates = v
                    .get("updates")
                    .and_then(Value::as_array)
                    .ok_or_else(|| protocol("missing `updates`"))?
                    .iter()
                    .map(update_from_value)
                    .collect::<Result<Vec<_>, KiffError>>()?;
                let batch = match v.get("batch") {
                    None => 0,
                    Some(b) => b.as_u64().ok_or_else(|| protocol("invalid `batch`"))?,
                };
                Ok(Request::Update { updates, batch })
            }
            "stats" => Ok(Request::Stats),
            "health" => Ok(Request::Health),
            "metrics" => Ok(Request::Metrics),
            "snapshot" => Ok(Request::Snapshot),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(protocol(format!("unknown op `{other}`"))),
        }
    }

    /// The wire representation of this request.
    pub fn to_value(&self) -> Value {
        match self {
            Request::Ping => serde_json::json!({"op": "ping"}),
            Request::Neighbors { user } => {
                serde_json::json!({"op": "neighbors", "user": *user})
            }
            Request::Recommend { user, top } => {
                serde_json::json!({"op": "recommend", "user": *user, "top": *top})
            }
            Request::Predict { user, item } => {
                serde_json::json!({"op": "predict", "user": *user, "item": *item})
            }
            Request::Audience { item, top } => {
                serde_json::json!({"op": "audience", "item": *item, "top": *top})
            }
            Request::Search { items, top } => {
                let items: Vec<Value> = items
                    .iter()
                    .map(|(i, r)| serde_json::json!({"item": *i, "rating": *r}))
                    .collect();
                serde_json::json!({"op": "search", "items": items, "top": *top})
            }
            Request::Update { updates, batch } => {
                let updates: Vec<Value> = updates.iter().map(update_to_value).collect();
                if *batch == 0 {
                    serde_json::json!({"op": "update", "updates": updates})
                } else {
                    serde_json::json!({"op": "update", "updates": updates, "batch": *batch})
                }
            }
            Request::Stats => serde_json::json!({"op": "stats"}),
            Request::Health => serde_json::json!({"op": "health"}),
            Request::Metrics => serde_json::json!({"op": "metrics"}),
            Request::Snapshot => serde_json::json!({"op": "snapshot"}),
            Request::Shutdown => serde_json::json!({"op": "shutdown"}),
        }
    }

    /// The op name, used as the telemetry histogram label.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Neighbors { .. } => "neighbors",
            Request::Recommend { .. } => "recommend",
            Request::Predict { .. } => "predict",
            Request::Audience { .. } => "audience",
            Request::Search { .. } => "search",
            Request::Update { .. } => "update",
            Request::Stats => "stats",
            Request::Health => "health",
            Request::Metrics => "metrics",
            Request::Snapshot => "snapshot",
            Request::Shutdown => "shutdown",
        }
    }
}

/// An error response frame for `err` failing op `op` (`""` when the
/// request never parsed far enough to know). Clients rebuild a
/// [`KiffError::Remote`] from all three fields, so the error class —
/// `unavailable` vs `overloaded` vs `corrupt` — survives the wire.
pub fn error_value(err: &KiffError, op: &str) -> Value {
    let mut error = serde_json::json!({
        "kind": err.kind(),
        "op": op,
        "message": err.to_string()
    });
    // A write refused by a replica carries the leader hint as a
    // structured field, so a failover-aware client re-routes without
    // parsing the message text.
    if let KiffError::NotPrimary { leader: Some(addr) } = err {
        if let Value::Object(entries) = &mut error {
            entries.push(("leader".into(), Value::String(addr.clone())));
        }
    }
    serde_json::json!({"ok": false, "error": error})
}

/// Writes one frame: `u32` LE length + JSON bytes.
pub fn write_frame<W: Write>(w: &mut W, value: &Value) -> Result<(), KiffError> {
    let text = serde_json::to_string(value).map_err(|e| protocol(e.to_string()))?;
    let bytes = text.as_bytes();
    let len = u32::try_from(bytes.len()).map_err(|_| protocol("frame too large"))?;
    if len > MAX_FRAME {
        return Err(protocol(format!(
            "frame of {len} bytes exceeds {MAX_FRAME}"
        )));
    }
    // One write per frame: a separate header write would let Nagle +
    // delayed ACK stall the payload ~40ms on sockets without nodelay.
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(bytes);
    w.write_all(&frame).map_err(KiffError::Io)?;
    w.flush().map_err(KiffError::Io)?;
    Ok(())
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Value>, KiffError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        let n = r.read(&mut header[filled..]).map_err(KiffError::Io)?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            // A transport failure, not a protocol violation: the peer
            // (or a fault) tore the connection mid-frame. `Io` keeps it
            // retryable for the self-healing client.
            return Err(KiffError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame",
            )));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME {
        return Err(protocol(format!(
            "frame of {len} bytes exceeds {MAX_FRAME}"
        )));
    }
    let mut bytes = vec![0u8; len as usize];
    r.read_exact(&mut bytes).map_err(KiffError::Io)?;
    let text = String::from_utf8(bytes).map_err(|_| protocol("frame is not UTF-8"))?;
    serde_json::from_str(&text)
        .map(Some)
        .map_err(|e| protocol(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_form() {
        let requests = vec![
            Request::Ping,
            Request::Neighbors { user: 3 },
            Request::Recommend { user: 1, top: 5 },
            Request::Predict { user: 2, item: 9 },
            Request::Audience { item: 4, top: 2 },
            Request::Search {
                items: vec![(1, 2.0), (7, 1.0)],
                top: 3,
            },
            Request::Update {
                updates: vec![
                    Update::AddRating {
                        user: 0,
                        item: 1,
                        rating: 2.5,
                    },
                    Update::AddUser,
                    Update::RemoveRating { user: 0, item: 1 },
                ],
                batch: 0,
            },
            Request::Update {
                updates: vec![Update::AddUser],
                batch: 42,
            },
            Request::Stats,
            Request::Health,
            Request::Metrics,
            Request::Snapshot,
            Request::Shutdown,
        ];
        for req in requests {
            let back = Request::from_value(&req.to_value()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        let v = Request::Neighbors { user: 7 }.to_value();
        write_frame(&mut buf, &v).unwrap();
        write_frame(&mut buf, &serde_json::json!({"ok": true})).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), v);
        assert!(read_frame(&mut r).unwrap().is_some());
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for text in [
            r#"{"user":1}"#,
            r#"{"op":"warp"}"#,
            r#"{"op":"neighbors"}"#,
            r#"{"op":"update","updates":[{"type":"add_rating","user":1,"item":2,"rating":-1}]}"#,
        ] {
            let v: Value = serde_json::from_str(text).unwrap();
            let err = Request::from_value(&v).unwrap_err();
            assert!(matches!(err, KiffError::Protocol(_)), "{text}: {err}");
            assert_eq!(err.exit_code(), 6);
        }
    }

    #[test]
    fn oversized_and_torn_frames_are_rejected() {
        let mut bytes = (MAX_FRAME + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(b"xx");
        assert!(read_frame(&mut bytes.as_slice()).is_err());

        let mut buf = Vec::new();
        write_frame(&mut buf, &serde_json::json!({"ok": true})).unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = buf.as_slice();
        assert!(read_frame(&mut r).is_err(), "mid-frame EOF is an error");
    }

    #[test]
    fn error_envelope_carries_kind_and_op() {
        let err = KiffError::Unavailable {
            op: "update".into(),
            detail: "wal degraded".into(),
        };
        let v = error_value(&err, "update");
        assert_eq!(v["ok"], serde_json::json!(false));
        assert_eq!(v["error"]["kind"], serde_json::json!("unavailable"));
        assert_eq!(v["error"]["op"], serde_json::json!("update"));
    }
}
