#![warn(missing_docs)]

//! `kiff-serve`: a query daemon with WAL + snapshot persistence.
//!
//! Everything below PR 6 answered queries in-process; this crate puts
//! the live engines behind a socket and a disk. The moving parts:
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`wire`] | length-prefixed JSON frames, [`wire::Request`], update codec |
//! | [`wal`]  | append-only log of updates, CRC-checked, segment-rotated |
//! | [`snapshot`] | atomic point-in-time dumps of dataset + graph + counters |
//! | [`store`] | the WAL + snapshot lifecycle; [`store::recover`] |
//! | [`server`] | the TCP daemon: [`server::Server`], [`server::EngineHost`], degraded mode, load shedding |
//! | [`client`] | a blocking [`client::Client`], a [`client::SelfHealingClient`], and a multi-endpoint [`client::FailoverClient`] |
//! | [`replication`] | primary/replica WAL shipping, epoch fencing, automatic failover |
//!
//! The durability contract: an acknowledged update is on disk (WAL,
//! fsynced per batch) before it is applied, and recovery — newest
//! snapshot plus WAL tail — reproduces the engine an uninterrupted run
//! would have had, *exactly*: the online engine's repair is
//! deterministic under replay, and because repair is amortised *per
//! batch*, the WAL marks each append's first record so recovery
//! re-applies the tail with the original batch boundaries. Batches are
//! atomic — each carries a commit marker on its last record, and a torn
//! tail (crash or failed fsync mid-append) drops the whole uncommitted
//! batch, never a prefix. An *un*acknowledged batch is therefore never
//! half-applied, and a retried batch (client-assigned id, deduped
//! against the applied high-water mark) is never double-applied.
//!
//! The fault-tolerance contract on top of it: a WAL failure flips the
//! daemon into read-only degraded mode — queries keep serving, writes
//! return typed `Unavailable`, a background task heals the WAL and
//! flips back — and overload sheds with typed `Overloaded` instead of
//! queueing unboundedly. `tests/serve_faults.rs` drives proptest fault
//! schedules (via [`kiff_core::fault`]) through live daemons to prove
//! recovered state stays bit-exact and no batch applies twice.
//!
//! ```no_run
//! use kiff_online::{KnnEngine, OnlineConfig, OnlineKnn};
//! use kiff_serve::server::{EngineHost, Server};
//! use kiff_serve::store::{recover, StoreConfig};
//! use kiff_telemetry::Registry;
//!
//! let seed = kiff_dataset::dataset::figure2_toy();
//! let registry = Registry::new();
//! let config = OnlineConfig::new(2).with_telemetry(registry.clone());
//! let rec = recover(&StoreConfig::new("/var/lib/kiff"), &seed, None, config, None)?;
//! let host = EngineHost::new(rec.engine, Some(rec.store), registry);
//! let server = Server::bind("127.0.0.1:7407", host)?;
//! println!("serving on {}", server.local_addr());
//! server.run()?; // blocks until a client sends `shutdown`
//! # Ok::<(), kiff_core::KiffError>(())
//! ```

pub mod client;
pub mod replication;
pub mod server;
pub mod snapshot;
pub mod store;
pub mod wal;
pub mod wire;

pub use client::{Client, FailoverClient, Health, RetryPolicy, SelfHealingClient, UpdateAck};
pub use replication::{ReplState, ReplicationConfig, Role};
pub use server::{EngineHost, ServeView, Server, ServerConfig};
pub use snapshot::{latest_snapshot, load_snapshot, save_snapshot, Snapshot};
pub use store::{recover, Appended, Recovered, Store, StoreConfig};
pub use wal::{Wal, WalReplay};
pub use wire::Request;
