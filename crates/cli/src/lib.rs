#![warn(missing_docs)]

//! Implementation of the `kiff` command-line tool.
//!
//! The binary is a thin wrapper over [`run`]; all parsing and command
//! logic lives here so it can be unit-tested. Subcommands:
//!
//! ```text
//! kiff build     --input ratings.tsv --k 20 --output graph.tsv
//! kiff stats     --input ratings.tsv
//! kiff generate  --preset wikipedia --scale 0.5 --output ratings.tsv
//! kiff recommend --input ratings.tsv --user 42 --top 10
//! kiff search    --input ratings.tsv --items 3,17,256 --top 10
//! ```
//!
//! Input formats are chosen by `--format` or inferred from the extension:
//! `.tsv`/`.txt` → SNAP edge list, `.dat` → MovieLens `::`, `.json` →
//! JSON dump. No external argument-parsing dependency: flags follow the
//! same hand-rolled `--flag value` convention as the `experiments`
//! harness binary.

pub mod args;
pub mod commands;
pub mod report;

pub use args::{parse, Command, ParseError};

/// Parses `argv` (without the program name) and executes the command,
/// writing human-readable output to `out`. Returns an error message
/// suitable for stderr on failure.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), String> {
    run_with_code(argv, out).map_err(|(message, _)| message)
}

/// Like [`run`], but on failure also returns the process exit code the
/// binary should terminate with: `1` for usage errors, and the stable
/// [`KiffError::exit_code`](kiff::core::KiffError::exit_code) classes
/// (2–7) for typed engine, persistence, and protocol failures.
pub fn run_with_code(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), (String, u8)> {
    let command = args::parse(argv).map_err(|e| (e.to_string(), 1))?;
    commands::execute(&command, out).map_err(|e| (e.to_string(), e.exit_code()))
}
