//! Property tests for the log-bucket histogram: bucket placement,
//! quantile accuracy (within one bucket of the exact order statistic),
//! and lossless concurrent recording.

use kiff_telemetry::{bucket_of, bucket_upper_bound, Registry, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every value lands in the bucket whose range contains it: at most
    /// the bucket's upper bound, and above the previous bucket's.
    #[test]
    fn values_land_in_the_right_bucket(v in any::<u64>()) {
        let b = bucket_of(v);
        prop_assert!(b < HISTOGRAM_BUCKETS);
        prop_assert!(v <= bucket_upper_bound(b), "{v} above bucket {b}");
        if b > 0 {
            prop_assert!(
                v > bucket_upper_bound(b - 1),
                "{v} also fits bucket {}", b - 1
            );
        }
    }

    /// Recording a batch distributes it across buckets exactly: each
    /// bucket's count equals the number of values mapping onto it, and
    /// count/sum/max match the inputs.
    #[test]
    fn recorded_batch_is_fully_bucketed(
        values in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let registry = Registry::new();
        let h = registry.histogram("h");
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        let buckets = h.bucket_counts();
        for (i, &count) in buckets.iter().enumerate() {
            let expected = values.iter().filter(|&&v| bucket_of(v) == i).count() as u64;
            prop_assert_eq!(count, expected, "bucket {}", i);
        }
    }

    /// Quantile estimates are within one bucket of the exact order
    /// statistic — in fact in the *same* bucket, since the estimate is
    /// the upper bound of the bucket holding the exact value's rank.
    #[test]
    fn quantiles_within_one_bucket_of_exact(
        values in proptest::collection::vec(0u64..10_000_000, 1..300),
        q in 0.01f64..1.0,
    ) {
        let registry = Registry::new();
        let h = registry.histogram("h");
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let estimate = h.quantile(q);
        let diff = bucket_of(estimate) as i64 - bucket_of(exact) as i64;
        prop_assert!(
            diff.abs() <= 1,
            "estimate {} (bucket {}) vs exact {} (bucket {}) at q={}",
            estimate, bucket_of(estimate), exact, bucket_of(exact), q
        );
        prop_assert!(estimate >= exact, "upper-bound estimate below exact");
    }

    /// Concurrent recording from N threads loses no counts: totals and
    /// per-bucket counts both equal the union of every thread's batch.
    #[test]
    fn concurrent_recording_is_lossless(
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 1..400),
            2..7,
        ),
    ) {
        let registry = Registry::new();
        let h = registry.histogram("h");
        std::thread::scope(|scope| {
            for batch in &batches {
                let h = h.clone();
                scope.spawn(move || {
                    for &v in batch {
                        h.record(v);
                    }
                });
            }
        });
        let all: Vec<u64> = batches.iter().flatten().copied().collect();
        prop_assert_eq!(h.count(), all.len() as u64);
        prop_assert_eq!(h.sum(), all.iter().sum::<u64>());
        prop_assert_eq!(h.max(), *all.iter().max().unwrap());
        let buckets = h.bucket_counts();
        for (i, &count) in buckets.iter().enumerate() {
            let expected = all.iter().filter(|&&v| bucket_of(v) == i).count() as u64;
            prop_assert_eq!(count, expected, "bucket {}", i);
        }
    }
}
