//! Discrete power-law samplers used by the synthetic dataset generators.
//!
//! The paper's four evaluation datasets all exhibit long-tailed profile-size
//! distributions ("most users have very few ratings", Fig. 4, consistent
//! with \[20\], \[21\], \[22\]). We reproduce that with two tools:
//!
//! * [`Zipf`] — rank-frequency sampling (`P(rank r) ∝ 1/r^s`) for item
//!   popularity: a few blockbusters, a long tail;
//! * [`power_law_degrees`] — bounded power-law degree sequences whose
//!   exponent is solved numerically to hit a target mean, used for user
//!   profile sizes where Table I prescribes the average.

use rand::Rng;

/// Cumulative-table Zipf sampler over ranks `0..n` with exponent `s ≥ 0`.
///
/// `s = 0` degenerates to the uniform distribution; larger `s` concentrates
/// mass on low ranks. Sampling is one uniform draw plus a binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. `O(n)` time and memory.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += (rank as f64).powf(-s);
            cdf.push(acc);
        }
        Self { cdf }
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true: `new` rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n` (0 is the most likely).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cdf.last().expect("non-empty");
        let x = rng.gen::<f64>() * total;
        // partition_point returns the first rank whose cumulative mass
        // reaches x.
        self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)
    }

    /// Probability of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        let total = *self.cdf.last().expect("non-empty");
        let lo = if r == 0 { 0.0 } else { self.cdf[r - 1] };
        (self.cdf[r] - lo) / total
    }
}

/// Mean of the bounded power law `P(d) ∝ d^(-alpha)` over `d_min..=d_max`.
fn bounded_power_law_mean(d_min: u32, d_max: u32, alpha: f64) -> f64 {
    let mut mass = 0.0;
    let mut weighted = 0.0;
    for d in d_min..=d_max {
        let p = f64::from(d).powf(-alpha);
        mass += p;
        weighted += p * f64::from(d);
    }
    weighted / mass
}

/// Samples `count` degrees from a bounded power law `P(d) ∝ d^(-alpha)` over
/// `[d_min, d_max]`, with `alpha` solved by bisection so the distribution
/// mean equals `target_mean`.
///
/// Returns the degree sequence; the realised sample mean fluctuates around
/// the target (law of large numbers), which the generators accept — Table I
/// statistics are recomputed from the generated data, not assumed.
///
/// # Panics
/// Panics if the target mean is outside `(d_min, d_max)` or the bounds are
/// inverted.
pub fn power_law_degrees<R: Rng + ?Sized>(
    count: usize,
    d_min: u32,
    d_max: u32,
    target_mean: f64,
    rng: &mut R,
) -> Vec<u32> {
    assert!(d_min >= 1 && d_min <= d_max, "need 1 <= d_min <= d_max");
    assert!(
        target_mean > f64::from(d_min) && target_mean < f64::from(d_max),
        "target mean {target_mean} outside ({d_min}, {d_max})"
    );
    // Mean is decreasing in alpha: bisection over a generous bracket.
    let (mut lo, mut hi) = (-4.0f64, 12.0f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if bounded_power_law_mean(d_min, d_max, mid) > target_mean {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let alpha = 0.5 * (lo + hi);

    // Build the CDF over d_min..=d_max once, then draw.
    let mut cdf = Vec::with_capacity((d_max - d_min + 1) as usize);
    let mut acc = 0.0;
    for d in d_min..=d_max {
        acc += f64::from(d).powf(-alpha);
        cdf.push(acc);
    }
    let total = acc;
    (0..count)
        .map(|_| {
            let x = rng.gen::<f64>() * total;
            let idx = cdf.partition_point(|&c| c < x).min(cdf.len() - 1);
            d_min + idx as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_samples_within_support() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zipf_rank0_most_frequent() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 50];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        assert!(counts[0] > counts[49] * 10);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(37, 0.8);
        let sum: f64 = (0..37).map(|r| z.pmf(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degrees_hit_target_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let degrees = power_law_degrees(50_000, 1, 1000, 17.0, &mut rng);
        let mean = degrees.iter().map(|&d| f64::from(d)).sum::<f64>() / degrees.len() as f64;
        assert!(
            (mean - 17.0).abs() < 1.0,
            "sample mean {mean} too far from 17"
        );
        assert!(degrees.iter().all(|&d| (1..=1000).contains(&d)));
    }

    #[test]
    fn degrees_are_long_tailed() {
        let mut rng = StdRng::seed_from_u64(4);
        let degrees = power_law_degrees(50_000, 1, 2000, 20.0, &mut rng);
        let max = *degrees.iter().max().unwrap();
        let median = {
            let mut d = degrees.clone();
            d.sort_unstable();
            d[d.len() / 2]
        };
        // Long tail: the max far exceeds the median.
        assert!(max > median * 10, "max={max} median={median}");
    }

    #[test]
    fn degrees_respect_min_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        let degrees = power_law_degrees(10_000, 20, 2000, 165.0, &mut rng);
        assert!(degrees.iter().all(|&d| d >= 20));
        let mean = degrees.iter().map(|&d| f64::from(d)).sum::<f64>() / degrees.len() as f64;
        assert!((mean - 165.0).abs() < 10.0, "mean={mean}");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_unreachable_mean() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = power_law_degrees(10, 5, 10, 20.0, &mut rng);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn zipf_sample_in_range(n in 1usize..200, s in 0.0f64..3.0, seed in any::<u64>()) {
                let z = Zipf::new(n, s);
                let mut rng = StdRng::seed_from_u64(seed);
                for _ in 0..100 {
                    prop_assert!(z.sample(&mut rng) < n);
                }
            }

            #[test]
            fn degrees_in_bounds(
                seed in any::<u64>(),
                d_min in 1u32..5,
                spread in 10u32..100,
            ) {
                let d_max = d_min + spread;
                let target = f64::from(d_min) + f64::from(spread) / 4.0;
                let mut rng = StdRng::seed_from_u64(seed);
                let degrees = power_law_degrees(500, d_min, d_max, target, &mut rng);
                prop_assert!(degrees.iter().all(|&d| d >= d_min && d <= d_max));
            }
        }
    }
}
