//! Structural analysis and persistence of constructed KNN graphs.
//!
//! Greedy KNN construction lives and dies by the structure of the graph
//! it is refining: NN-Descent's local joins blow up on in-degree hubs,
//! and neighbour-of-neighbour exploration cannot cross component
//! boundaries (the reason HyRec optionally injects random candidates).
//! This example builds graphs over datasets of different shapes,
//! summarises their structure, and round-trips one through the edge-list
//! persistence format.
//!
//! Run with: `cargo run --release --example graph_analysis`

use kiff::prelude::*;
use kiff_dataset::PaperDataset;
use kiff_graph::{load_edges_tsv, save_edges_tsv, summarize};

fn main() {
    let k = 10;
    println!(
        "{:<16} {:>7} {:>8} {:>8} {:>9} {:>11} {:>9}",
        "dataset", "users", "edges", "max in°", "symmetry", "components", "largest"
    );

    let mut wikipedia_graph = None;
    for preset in [PaperDataset::Wikipedia, PaperDataset::Arxiv] {
        let dataset = preset.generate(0.5, 42);
        let sim = WeightedCosine::fit(&dataset);
        let graph = Kiff::new(KiffConfig::new(k)).run(&dataset, &sim).graph;
        let s = summarize(&graph);
        println!(
            "{:<16} {:>7} {:>8} {:>8} {:>8.1}% {:>11} {:>9}",
            dataset.name(),
            s.num_users,
            s.num_edges,
            s.max_in_degree,
            s.symmetry * 100.0,
            s.components,
            s.largest_component
        );
        if preset == PaperDataset::Wikipedia {
            wikipedia_graph = Some((dataset, graph));
        }
    }

    // Persistence round-trip: save, reload, verify equality.
    let (dataset, graph) = wikipedia_graph.expect("wikipedia ran");
    let path = std::env::temp_dir().join("kiff-example-graph.tsv");
    save_edges_tsv(&graph, &path).expect("save");
    let loaded = load_edges_tsv(&path, dataset.num_users(), k).expect("load");
    assert_eq!(graph, loaded, "round-trip must be exact");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "\nround-trip: {} edges -> {} ({:.1} KiB) -> identical graph",
        graph.num_edges(),
        path.display(),
        bytes as f64 / 1024.0
    );
    std::fs::remove_file(&path).ok();

    // Hub analysis: the most referenced user and who she is similar to.
    let in_deg = kiff_graph::in_degrees(&graph);
    let (hub, &hub_deg) = in_deg
        .iter()
        .enumerate()
        .max_by_key(|(_, &d)| d)
        .expect("non-empty");
    println!(
        "hub: user {hub} appears in {hub_deg} neighbourhoods (mean in° = {:.1})",
        graph.num_edges() as f64 / dataset.num_users() as f64
    );
}
