//! Versioned binary [`Dataset`] codec for snapshot persistence.
//!
//! The TSV/JSON loaders in [`crate::io`] exist for interchange; this
//! codec exists for *recovery speed* — a serving daemon restoring from a
//! snapshot must deserialize straight into the CSR without parsing text
//! or re-deriving anything. Ratings are stored as exact `f32` bit
//! patterns so a restored engine replays bit-identically to the one
//! that wrote the snapshot.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  b"KIFD"
//! version u16        (currently 1)
//! name    u32 len + UTF-8 bytes
//! counts  u64 users, u64 items, u64 ratings
//! rows    per user: u32 degree, then degree × (u32 item, u32 f32-bits)
//! ```
//!
//! Corruption (bad magic, unsupported version, unsorted or out-of-range
//! rows, truncation) surfaces as [`std::io::ErrorKind::InvalidData`];
//! higher layers lift that into their structured error type.

use std::io::{self, Read, Write};

use crate::dataset::{Dataset, DatasetBuilder};
use crate::types::UserId;

const MAGIC: &[u8; 4] = b"KIFD";
const VERSION: u16 = 1;

fn corrupt(detail: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, detail.into())
}

pub(crate) fn write_u16<W: Write>(w: &mut W, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut buf = [0u8; 2];
    r.read_exact(&mut buf)?;
    Ok(u16::from_le_bytes(buf))
}

pub(crate) fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Converts a persisted u64 count to `usize`, rejecting absurd values.
fn checked_len(v: u64, what: &str) -> io::Result<usize> {
    usize::try_from(v).map_err(|_| corrupt(format!("{what} count {v} overflows usize")))
}

/// Serializes `dataset` into `w`.
pub fn write_dataset<W: Write>(w: &mut W, dataset: &Dataset) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u16(w, VERSION)?;
    let name = dataset.name().as_bytes();
    write_u32(
        w,
        u32::try_from(name.len()).map_err(|_| corrupt("dataset name too long"))?,
    )?;
    w.write_all(name)?;
    write_u64(w, dataset.num_users() as u64)?;
    write_u64(w, dataset.num_items() as u64)?;
    write_u64(w, dataset.num_ratings() as u64)?;
    for u in 0..dataset.num_users() as UserId {
        let profile = dataset.user_profile(u);
        write_u32(
            w,
            u32::try_from(profile.items.len()).map_err(|_| corrupt("profile too long"))?,
        )?;
        for (&item, &rating) in profile.items.iter().zip(profile.ratings) {
            write_u32(w, item)?;
            write_u32(w, rating.to_bits())?;
        }
    }
    Ok(())
}

/// Deserializes a dataset from `r`, validating structure as it goes.
pub fn read_dataset<R: Read>(r: &mut R) -> io::Result<Dataset> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(corrupt(format!("bad dataset magic {magic:?}")));
    }
    let version = read_u16(r)?;
    if version != VERSION {
        return Err(corrupt(format!(
            "unsupported dataset codec version {version} (expected {VERSION})"
        )));
    }
    let name_len = checked_len(read_u32(r)? as u64, "name byte")?;
    let mut name_buf = vec![0u8; name_len];
    r.read_exact(&mut name_buf)?;
    let name =
        String::from_utf8(name_buf).map_err(|_| corrupt("dataset name is not valid UTF-8"))?;
    let num_users = checked_len(read_u64(r)?, "user")?;
    let num_items = checked_len(read_u64(r)?, "item")?;
    let num_ratings = checked_len(read_u64(r)?, "rating")?;
    let mut builder = DatasetBuilder::new(name, num_users, num_items);
    builder.reserve(num_ratings);
    let mut total = 0usize;
    for u in 0..num_users as UserId {
        let degree = read_u32(r)? as usize;
        let mut prev: Option<u32> = None;
        for _ in 0..degree {
            let item = read_u32(r)?;
            let rating = f32::from_bits(read_u32(r)?);
            if (item as usize) >= num_items {
                return Err(corrupt(format!(
                    "user {u} rates item {item} beyond the declared {num_items}"
                )));
            }
            if prev.is_some_and(|p| p >= item) {
                return Err(corrupt(format!("user {u} row is not strictly sorted")));
            }
            if !(rating.is_finite() && rating > 0.0) {
                return Err(corrupt(format!(
                    "user {u} item {item} carries invalid rating {rating}"
                )));
            }
            prev = Some(item);
            builder.add_rating(u, item, rating);
        }
        total += degree;
    }
    if total != num_ratings {
        return Err(corrupt(format!(
            "rating count mismatch: header says {num_ratings}, rows sum to {total}"
        )));
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::figure2_toy;

    fn round_trip(ds: &Dataset) -> Dataset {
        let mut buf = Vec::new();
        write_dataset(&mut buf, ds).unwrap();
        read_dataset(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn round_trips_bit_identically() {
        let ds = figure2_toy();
        let back = round_trip(&ds);
        assert_eq!(back.name(), ds.name());
        assert_eq!(back.num_users(), ds.num_users());
        assert_eq!(back.num_items(), ds.num_items());
        assert_eq!(back.num_ratings(), ds.num_ratings());
        for u in 0..ds.num_users() as UserId {
            assert_eq!(back.user_profile(u).items, ds.user_profile(u).items);
            // Exact bits, not approximate equality: recovery must replay
            // identically to the writer.
            let a: Vec<u32> = ds
                .user_profile(u)
                .ratings
                .iter()
                .map(|r| r.to_bits())
                .collect();
            let b: Vec<u32> = back
                .user_profile(u)
                .ratings
                .iter()
                .map(|r| r.to_bits())
                .collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_users_survive() {
        let b = DatasetBuilder::new("sparse", 3, 2);
        // User 1 rates nothing at all.
        let mut b = b;
        b.add_rating(0, 0, 1.5);
        b.add_rating(2, 1, 0.25);
        let back = round_trip(&b.build());
        assert_eq!(back.num_users(), 3);
        assert_eq!(back.user_degree(1), 0);
        assert_eq!(back.user_profile(2).items, &[1]);
    }

    #[test]
    fn bad_magic_and_truncation_are_invalid_data() {
        let ds = figure2_toy();
        let mut buf = Vec::new();
        write_dataset(&mut buf, &ds).unwrap();

        let mut evil = buf.clone();
        evil[0] = b'X';
        let err = read_dataset(&mut evil.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let cut = &buf[..buf.len() - 3];
        assert!(read_dataset(&mut &cut[..]).is_err());

        let mut wrong_version = buf.clone();
        wrong_version[4] = 9;
        let err = read_dataset(&mut wrong_version.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn out_of_range_item_is_rejected() {
        let ds = figure2_toy();
        let mut buf = Vec::new();
        write_dataset(&mut buf, &ds).unwrap();
        // The first row entry sits right after magic(4) + version(2) +
        // name(4 + len) + counts(24) + degree(4). Patch its item id.
        let offset = 4 + 2 + 4 + ds.name().len() + 24 + 4;
        buf[offset..offset + 4].copy_from_slice(&999u32.to_le_bytes());
        let err = read_dataset(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("999"));
    }
}
