//! The [`OnlineKnn`] engine: a live KNN graph under streaming mutations.
//!
//! State per user: the live profile (in the [`DeltaDataset`] overlay), a
//! [`SparseCounter`] of shared items with every co-rater (the live,
//! unpivoted RCS of §II-C), and a [`KnnHeap`] of current neighbours, with
//! a [`ReverseAdjacency`] tying the heaps together.
//!
//! One update flows through three steps:
//!
//! 1. **mutate** — the dataset view changes; only the co-raters of the
//!    touched item get their shared-item counters adjusted (the
//!    incremental counting phase).
//! 2. **repair** — the updated user is re-scored against its refreshed
//!    RCS prefix (top `repair_width` by live count) plus its current and
//!    reverse neighbours, because every stored similarity involving the
//!    user is stale after a profile change.
//! 3. **propagate** — any user whose neighbourhood *degraded* (an edge
//!    removed, or a stored similarity revised downwards) is enqueued and
//!    repaired in turn, Debatty-style, until no heap changes or the
//!    propagation budget is exhausted.
//!
//! A single rating update can only change similarities incident to the
//! updated user, so this repair radius is exact for upgrades; the budget
//! bounds the (rare) degradation cascades. The result is the *eventual*
//! consistency model documented at the crate root.

use std::collections::VecDeque;
use std::sync::Arc;

use kiff_collections::{FxHashMap, FxHashSet, SparseCounter};
use kiff_core::{build_rcs, CountingConfig, Kiff, KiffConfig, KiffError};
use kiff_dataset::{Dataset, DeltaDataset, UserId};
use kiff_graph::{HeapChange, KnnGraph, KnnHeap, Neighbor, ReverseAdjacency};
use kiff_parallel::SnapshotCache;
use kiff_similarity as sim;
use kiff_similarity::ScorerWorkspace;
use kiff_telemetry::{Counter, Histogram};

use crate::config::{OnlineConfig, OnlineMetric};
use crate::update::{Update, UpdateStats};

/// A KNN graph maintained incrementally under streaming rating updates.
#[derive(Debug)]
pub struct OnlineKnn {
    config: OnlineConfig,
    data: DeltaDataset,
    /// Live shared-item counts: `counters[u]` maps every co-rater `v` to
    /// `|UP_u ∩ UP_v|` (both directions stored; the pivot trick of §II-D
    /// trades badly against per-update maintenance).
    counters: Vec<SparseCounter>,
    heaps: Vec<KnnHeap>,
    reverse: ReverseAdjacency,
    lifetime: UpdateStats,
    /// Prepared-scorer arena: a repair preprocesses the dirty user's
    /// profile once here, then scores every candidate in `O(|UP_v|)`.
    scorer_ws: ScorerWorkspace,
    /// Reusable repair staging buffer of `(candidate, similarity)`.
    scored: Vec<(UserId, f64)>,
    /// Cached [`OnlineKnn::graph`] snapshot, invalidated by any heap edit
    /// or user addition. A [`SnapshotCache`] so concurrent readers build
    /// outside the lock and publication is a single version-checked swap.
    snapshot: SnapshotCache<KnnGraph>,
    /// Cached [`OnlineKnn::dataset`] materialization, invalidated by any
    /// dataset mutation — serving layers embed this in their published
    /// read views instead of re-materializing per request.
    dataset: SnapshotCache<Dataset>,
    /// `online.apply_ns`: wall-clock of each `apply`/`apply_batch` call.
    apply_ns: Histogram,
    /// `online.repair_ns`: wall-clock of each single-user repair.
    repair_ns: Histogram,
    /// `online.sims`: repair similarity evaluations (the registry twin of
    /// [`UpdateStats::sim_evals`]).
    tele_sims: Counter,
}

impl OnlineKnn {
    /// Builds the initial graph with batch KIFF under `config.metric`,
    /// then wraps it for streaming.
    pub fn new(dataset: &Dataset, config: OnlineConfig) -> Self {
        let graph = batch_graph(dataset, config.k, config.metric);
        Self::from_graph(dataset, &graph, config)
    }

    /// Wraps an already-built graph (any construction algorithm) for
    /// streaming. The live shared-item counters are seeded from one
    /// unpivoted batch counting pass.
    pub fn from_graph(dataset: &Dataset, graph: &KnnGraph, config: OnlineConfig) -> Self {
        assert_eq!(
            graph.num_users(),
            dataset.num_users(),
            "graph and dataset disagree on the user count"
        );
        let n = dataset.num_users();
        let rcs = build_rcs(
            dataset,
            &CountingConfig {
                pivot: false,
                keep_counts: true,
                ..Default::default()
            },
        );
        let mut counters = Vec::with_capacity(n);
        for u in 0..n as UserId {
            let ids = rcs.rcs(u);
            let counts = rcs.counts(u).expect("keep_counts set");
            let mut counter = SparseCounter::with_capacity(ids.len());
            for (&v, &c) in ids.iter().zip(counts) {
                counter.add_n(v, c);
            }
            counters.push(counter);
        }
        Self::assemble(dataset, graph, counters, config)
    }

    /// Restores an engine from persisted state: the compacted dataset, the
    /// graph snapshot, and the exported shared-item counters (see
    /// [`OnlineKnn::counters_snapshot`]) — pure deserialization, no
    /// counting pass, which is what makes snapshot recovery beat a
    /// rebuild by a wide margin.
    ///
    /// Validates that the three sections agree on the user count and that
    /// counter keys stay in range; inconsistencies surface as
    /// [`KiffError::Corrupt`].
    pub fn from_snapshot(
        dataset: &Dataset,
        graph: &KnnGraph,
        counter_rows: Vec<Vec<(UserId, u32)>>,
        config: OnlineConfig,
    ) -> Result<Self, KiffError> {
        let n = dataset.num_users();
        if graph.num_users() != n || counter_rows.len() != n {
            return Err(KiffError::corrupt(
                "engine snapshot",
                format!(
                    "user counts disagree: dataset {n}, graph {}, counters {}",
                    graph.num_users(),
                    counter_rows.len()
                ),
            ));
        }
        let mut counters = Vec::with_capacity(n);
        for (u, row) in counter_rows.into_iter().enumerate() {
            let mut counter = SparseCounter::with_capacity(row.len());
            for (v, c) in row {
                if v as usize >= n || v as usize == u {
                    return Err(KiffError::corrupt(
                        "engine snapshot",
                        format!("counter row {u} references invalid co-rater {v}"),
                    ));
                }
                counter.add_n(v, c);
            }
            counters.push(counter);
        }
        Ok(Self::assemble(dataset, graph, counters, config))
    }

    /// Exports the live shared-item counters as per-user `(co_rater,
    /// count)` rows sorted by co-rater id — the deterministic form the
    /// snapshot codec persists and [`OnlineKnn::from_snapshot`] accepts.
    pub fn counters_snapshot(&self) -> Vec<Vec<(UserId, u32)>> {
        self.counters
            .iter()
            .map(|counter| {
                let mut row: Vec<(UserId, u32)> = counter.iter().collect();
                row.sort_unstable_by_key(|&(v, _)| v);
                row
            })
            .collect()
    }

    /// Shared tail of the constructors: wire counters + graph-seeded
    /// heaps + reverse adjacency into an engine.
    fn assemble(
        dataset: &Dataset,
        graph: &KnnGraph,
        counters: Vec<SparseCounter>,
        config: OnlineConfig,
    ) -> Self {
        let n = dataset.num_users();
        let mut heaps = Vec::with_capacity(n);
        for u in 0..n as UserId {
            let mut heap = KnnHeap::new(config.k);
            for nb in graph.neighbors(u) {
                heap.update(nb.sim, nb.id);
            }
            heaps.push(heap);
        }
        let tele = &config.telemetry;
        let apply_ns = tele.histogram("online.apply_ns");
        let repair_ns = tele.histogram("online.repair_ns");
        let tele_sims = tele.counter("online.sims");
        let scorer_ws = ScorerWorkspace::with_telemetry(tele);
        let mut engine = Self {
            config,
            data: DeltaDataset::new(dataset.clone()),
            counters,
            reverse: ReverseAdjacency::new(n),
            heaps,
            lifetime: UpdateStats::default(),
            scorer_ws,
            scored: Vec::new(),
            snapshot: SnapshotCache::new(),
            dataset: SnapshotCache::new(),
            apply_ns,
            repair_ns,
            tele_sims,
        };
        // Rebuild reverse adjacency from the heaps (not from `graph`: the
        // heap capacity may be smaller than the snapshot's k).
        for u in 0..n as UserId {
            for id in engine.heaps[u as usize].ids() {
                engine.reverse.add(u, id);
            }
        }
        engine
    }

    /// The engine's configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Neighbourhood size `k`.
    pub fn k(&self) -> usize {
        self.config.k
    }

    /// Current number of users.
    pub fn num_users(&self) -> usize {
        self.data.num_users()
    }

    /// The live dataset view.
    pub fn data(&self) -> &DeltaDataset {
        &self.data
    }

    /// Work accumulated over the engine's lifetime.
    pub fn lifetime_stats(&self) -> &UpdateStats {
        &self.lifetime
    }

    /// `u`'s current neighbours, best first.
    pub fn neighbors(&self, u: UserId) -> Vec<Neighbor> {
        self.heaps[u as usize].sorted_neighbors()
    }

    /// The live shared-item count `|UP_u ∩ UP_v|` (0 when disjoint) — the
    /// incremental counting phase's output, exposed for audits and tools.
    pub fn shared_count(&self, u: UserId, v: UserId) -> u32 {
        self.counters[u as usize].get(v)
    }

    /// Snapshots the live graph.
    ///
    /// The snapshot is materialised on first call (`O(|E|)`) and cached;
    /// repeated calls between mutations return the same `Arc` for free.
    /// Any heap edit or user addition invalidates the cache, so a mixed
    /// read/write workload pays the rebuild once per quiescent period —
    /// a stepping stone toward the epoch-based reader scheme the roadmap
    /// names.
    pub fn graph(&self) -> Arc<KnnGraph> {
        self.snapshot.get_or_build(|| {
            KnnGraph::from_neighbors(
                self.config.k,
                self.heaps.iter().map(KnnHeap::sorted_neighbors).collect(),
            )
        })
    }

    /// Materializes the live dataset view as a frozen [`Dataset`].
    ///
    /// Cached between mutations like [`OnlineKnn::graph`]: repeated calls
    /// in a read-only period return the same `Arc` for free, so a serving
    /// layer can embed it in a published read view without paying the
    /// `O(ratings)` copy per request.
    pub fn dataset(&self) -> Arc<Dataset> {
        self.dataset.get_or_build(|| self.data.to_dataset())
    }

    /// Drops the cached snapshot after a graph state change.
    fn invalidate_snapshot(&mut self) {
        self.snapshot.invalidate();
    }

    /// Drops the cached materialized dataset after any dataset mutation.
    fn invalidate_dataset(&mut self) {
        self.dataset.invalidate();
    }

    /// Appends a user with an empty profile, returning its id.
    pub fn add_user(&mut self) -> UserId {
        let id = self.data.add_user();
        self.counters.push(SparseCounter::new());
        self.heaps.push(KnnHeap::new(self.config.k));
        let rid = self.reverse.push_user();
        debug_assert_eq!(rid, id);
        self.invalidate_snapshot();
        self.invalidate_dataset();
        id
    }

    /// Applies one mutation and repairs the graph around it.
    pub fn apply(&mut self, update: Update) -> UpdateStats {
        let _span = self.apply_ns.span();
        let mut stats = UpdateStats {
            updates: 1,
            ..Default::default()
        };
        let dirty = self.mutate(update, &mut stats);
        self.propagate(dirty.into_iter().collect(), &mut stats);
        self.maybe_compact(&mut stats);
        if stats.edits.total() > 0 {
            self.invalidate_snapshot();
        }
        self.invalidate_dataset();
        self.lifetime.merge(&stats);
        stats
    }

    /// Applies a batch of mutations, then repairs once — the realistic
    /// serving pattern: counter maintenance happens per mutation, but a
    /// user touched by many ratings in the batch is re-scored a single
    /// time against the final state, amortising repair.
    pub fn apply_batch(&mut self, updates: impl IntoIterator<Item = Update>) -> UpdateStats {
        let _span = self.apply_ns.span();
        let mut stats = UpdateStats::default();
        let mut dirty: Vec<(UserId, Vec<UserId>)> = Vec::new();
        let mut slot: FxHashMap<UserId, usize> = FxHashMap::default();
        for update in updates {
            stats.updates += 1;
            for (u, extras) in self.mutate(update, &mut stats) {
                match slot.get(&u) {
                    Some(&idx) => dirty[idx].1.extend(extras),
                    None => {
                        slot.insert(u, dirty.len());
                        dirty.push((u, extras));
                    }
                }
            }
        }
        self.propagate(dirty, &mut stats);
        self.maybe_compact(&mut stats);
        if stats.edits.total() > 0 {
            self.invalidate_snapshot();
        }
        if stats.updates > 0 {
            self.invalidate_dataset();
        }
        self.lifetime.merge(&stats);
        stats
    }

    /// Step 1: mutate the dataset view and the shared-item counters.
    /// Returns the users whose profiles changed, each with the *targeted*
    /// candidates a repair must consider beyond the standing prefix: the
    /// co-raters of the touched item, since `sim(user, v)` rose exactly
    /// for those `v` (capped at `repair_width`, best shared counts first).
    fn mutate(&mut self, update: Update, stats: &mut UpdateStats) -> Vec<(UserId, Vec<UserId>)> {
        match update {
            Update::AddRating { user, item, rating } => {
                while (user as usize) >= self.data.num_users() {
                    self.add_user();
                }
                // Capture co-raters before insertion: exactly these pairs
                // gain a shared item (or, on reinforcement, weight).
                let mut raters = self.data.item_raters(item);
                raters.retain(|&v| v != user);
                // On reinforcement only the rating value changes (repair
                // still needed — similarities moved — but no counter does).
                if self.data.add_rating(user, item, rating) {
                    for &v in &raters {
                        self.counters[user as usize].add(v);
                        self.counters[v as usize].add(user);
                        stats.counter_adjustments += 2;
                    }
                }
                if raters.len() > self.config.repair_width {
                    // Partial select: only the best shared counts matter,
                    // and repair dedups/sorts candidates again anyway. The
                    // id tie-break makes the kept *set* independent of the
                    // rater iteration order, which differs between a live
                    // overlay and a compacted (or snapshot-restored) base
                    // — snapshot+replay must equal uninterrupted replay.
                    let counter = &self.counters[user as usize];
                    raters.select_nth_unstable_by_key(self.config.repair_width, |&v| {
                        (std::cmp::Reverse(counter.get(v)), v)
                    });
                    raters.truncate(self.config.repair_width);
                }
                vec![(user, raters)]
            }
            Update::AddUser => {
                self.add_user();
                Vec::new()
            }
            Update::RemoveRating { user, item } => {
                if (user as usize) >= self.data.num_users() || !self.data.remove_rating(user, item)
                {
                    return Vec::new();
                }
                // Post-removal raters are exactly the pairs that lost a
                // shared item. No targeted candidates: a removal only
                // lowers similarities, and every standing edge is already
                // covered by the heap and reverse sets.
                for v in self.data.item_raters(item) {
                    if v != user {
                        self.counters[user as usize].sub(v);
                        self.counters[v as usize].sub(user);
                        stats.counter_adjustments += 2;
                    }
                }
                vec![(user, Vec::new())]
            }
        }
    }

    /// Steps 2–3: repair each dirty user, then propagate through users
    /// whose neighbourhoods degraded, until quiescence or budget
    /// exhaustion.
    fn propagate(&mut self, dirty: Vec<(UserId, Vec<UserId>)>, stats: &mut UpdateStats) {
        let budget = dirty.len() as u64 + self.config.max_propagation as u64;
        let mut queue: VecDeque<UserId> = VecDeque::new();
        let mut extras: FxHashMap<UserId, Vec<UserId>> = FxHashMap::default();
        for (u, targeted) in dirty {
            queue.push_back(u);
            extras.entry(u).or_default().extend(targeted);
        }
        let mut visited: FxHashSet<UserId> = FxHashSet::default();
        let mut repaired = 0u64;
        while let Some(u) = queue.pop_front() {
            if repaired >= budget {
                break;
            }
            if !visited.insert(u) {
                continue;
            }
            repaired += 1;
            let targeted = extras.remove(&u).unwrap_or_default();
            self.repair(u, targeted, stats, &mut queue, &mut visited);
        }
        stats.repaired_users += repaired;
        // Scorers batch their per-candidate tally in the workspace; the
        // engine outlives snapshots, so publish it at batch end.
        self.scorer_ws.flush_telemetry();
    }

    /// Re-scores `u` against its refreshed RCS prefix plus every user a
    /// stale similarity could hide in: its current neighbours and its
    /// reverse neighbours. `u`'s profile is prepared once (dense stamps,
    /// hoisted norm); every candidate then scores in `O(|UP_v|)`,
    /// reproducing [`OnlineMetric::eval`](crate::OnlineMetric) exactly.
    fn repair(
        &mut self,
        u: UserId,
        targeted: Vec<UserId>,
        stats: &mut UpdateStats,
        queue: &mut VecDeque<UserId>,
        visited: &mut FxHashSet<UserId>,
    ) {
        let span = self.repair_ns.span();
        let mut candidates = targeted;
        candidates.extend(self.heaps[u as usize].ids());
        candidates.extend(self.reverse.in_neighbors(u));
        candidates.extend(
            self.counters[u as usize]
                .top_by_count(self.config.repair_width)
                .into_iter()
                .map(|(v, _)| v),
        );
        candidates.sort_unstable();
        candidates.dedup();
        // Score first (the scorer borrows the workspace and the dataset
        // view), then land the results on the heaps.
        let mut scored = std::mem::take(&mut self.scored);
        scored.clear();
        {
            let scorer = self
                .scorer_ws
                .prepare(self.config.metric.kind(), self.data.profile(u));
            for v in candidates {
                if v == u {
                    continue;
                }
                scored.push((v, scorer.score(self.data.profile(v))));
            }
        }
        stats.sim_evals += scored.len() as u64;
        self.tele_sims.add(scored.len() as u64);
        for &(v, s) in &scored {
            self.score_pair(u, v, s, stats, queue, visited);
        }
        self.scored = scored;
        span.finish();
    }

    /// Lands a freshly evaluated similarity on both endpoint heaps,
    /// keeping the reverse adjacency consistent and enqueueing owners
    /// whose neighbourhood degraded.
    fn score_pair(
        &mut self,
        u: UserId,
        v: UserId,
        s: f64,
        stats: &mut UpdateStats,
        queue: &mut VecDeque<UserId>,
        visited: &mut FxHashSet<UserId>,
    ) {
        for (owner, other) in [(u, v), (v, u)] {
            let heap = &mut self.heaps[owner as usize];
            if s <= 0.0 {
                // A non-sharing pair is not a valid KNN edge under the
                // sparse axioms; drop it and refill the owner later.
                if heap.remove(other) {
                    self.reverse.remove(owner, other);
                    stats.edits.removals += 1;
                    if !visited.contains(&owner) {
                        queue.push_back(owner);
                    }
                }
            } else if let Some(old) = heap.reprioritize(other, s) {
                if old != s {
                    stats.edits.reprioritized += 1;
                    // A downgrade can push the edge below candidates the
                    // owner is not currently holding: re-rank the owner.
                    if s < old && !visited.contains(&owner) {
                        queue.push_back(owner);
                    }
                }
            } else if let HeapChange::Inserted { evicted } = heap.offer(s, other) {
                stats.edits.inserts += 1;
                self.reverse.add(owner, other);
                if let Some(e) = evicted {
                    self.reverse.remove(owner, e);
                    stats.edits.evictions += 1;
                }
            }
        }
    }

    /// Folds the delta overlay back into a fresh CSR once it covers too
    /// large a fraction of the users.
    fn maybe_compact(&mut self, stats: &mut UpdateStats) {
        let n = self.data.num_users().max(1);
        if (self.data.overlay_users() as f64) >= self.config.compaction_threshold * n as f64 {
            self.data.compact();
            stats.compacted = true;
        }
    }
}

/// Builds the initial batch graph with KIFF under the online metric's
/// batch twin (shared with the sharded engine).
pub(crate) fn batch_graph(dataset: &Dataset, k: usize, metric: OnlineMetric) -> KnnGraph {
    let kiff = Kiff::new(KiffConfig::new(k));
    match metric {
        OnlineMetric::Cosine => kiff.run(dataset, &sim::WeightedCosine::fit(dataset)).graph,
        OnlineMetric::BinaryCosine => kiff.run(dataset, &sim::BinaryCosine).graph,
        OnlineMetric::Jaccard => kiff.run(dataset, &sim::Jaccard).graph,
        OnlineMetric::WeightedJaccard => kiff.run(dataset, &sim::WeightedJaccard).graph,
        OnlineMetric::Dice => kiff.run(dataset, &sim::Dice).graph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::dataset::figure2_toy;
    use kiff_similarity::intersect_count;

    fn toy_engine() -> OnlineKnn {
        OnlineKnn::new(&figure2_toy(), OnlineConfig::new(2))
    }

    /// Exhaustive consistency audit: counters equal brute-force shared
    /// counts, heap similarities equal fresh metric evaluations, reverse
    /// adjacency mirrors the heaps.
    fn audit(engine: &OnlineKnn) {
        let n = engine.num_users() as UserId;
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let shared = intersect_count(
                    engine.data().profile(u).items,
                    engine.data().profile(v).items,
                );
                assert_eq!(
                    engine.counters[u as usize].get(v) as usize,
                    shared,
                    "counter ({u}, {v})"
                );
            }
            for e in engine.heaps[u as usize].iter() {
                let fresh = engine
                    .config()
                    .metric
                    .eval(engine.data().profile(u), engine.data().profile(e.id));
                assert!(
                    (e.sim - fresh).abs() < 1e-12,
                    "stale sim on edge {u} -> {}: stored {} fresh {fresh}",
                    e.id,
                    e.sim
                );
                assert!(
                    engine.reverse.contains(u, e.id),
                    "reverse lacks {u} -> {}",
                    e.id
                );
            }
            for w in engine.reverse.in_neighbors(u) {
                assert!(
                    engine.heaps[w as usize].contains(u),
                    "reverse ghost {w} -> {u}"
                );
            }
        }
    }

    #[test]
    fn seeded_counters_match_single_user_counting() {
        // The live counters must agree with the batch counting phase's
        // single-user unit (`kiff_core::user_candidate_counts`) on the
        // frozen seed dataset.
        let ds = figure2_toy();
        let engine = toy_engine();
        for u in 0..ds.num_users() as UserId {
            let ranked = kiff_core::user_candidate_counts(&ds, u);
            for (v, count) in ranked {
                assert_eq!(engine.shared_count(u, v), count, "pair ({u}, {v})");
            }
        }
    }

    #[test]
    fn seeded_state_matches_batch() {
        let engine = toy_engine();
        audit(&engine);
        // Alice's nearest neighbour is Bob, as in the batch quick start.
        assert_eq!(engine.neighbors(0)[0].id, 1);
        assert_eq!(engine.neighbors(2)[0].id, 3);
    }

    #[test]
    fn add_rating_connects_new_pairs() {
        let mut engine = toy_engine();
        // Carl(2) picks up coffee(1): Carl now shares items with Alice and
        // Bob, who were unreachable before.
        let stats = engine.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        assert_eq!(stats.updates, 1);
        assert!(stats.sim_evals > 0);
        assert!(stats.counter_adjustments >= 4, "two new sharing pairs");
        audit(&engine);
        let ids: Vec<UserId> = engine.neighbors(2).iter().map(|nb| nb.id).collect();
        assert!(
            ids.contains(&0) || ids.contains(&1),
            "coffee drinkers found"
        );
    }

    #[test]
    fn remove_rating_severs_pairs() {
        let mut engine = toy_engine();
        // Bob(1) drops coffee(1): Alice and Bob now share nothing, so the
        // edge between them must disappear from both heaps.
        let stats = engine.apply(Update::RemoveRating { user: 1, item: 1 });
        assert!(stats.edits.removals > 0);
        audit(&engine);
        assert!(!engine.neighbors(0).iter().any(|nb| nb.id == 1));
        assert!(!engine.neighbors(1).iter().any(|nb| nb.id == 0));
        // Removing it again is a no-op.
        let stats = engine.apply(Update::RemoveRating { user: 1, item: 1 });
        assert_eq!(stats.sim_evals, 0);
        assert_eq!(stats.counter_adjustments, 0);
    }

    #[test]
    fn reinforcement_refreshes_similarity() {
        let mut engine = toy_engine();
        let before = engine.neighbors(0)[0].sim;
        // Alice re-rates coffee: her norm grows, every incident cosine
        // changes, but no counter moves.
        let stats = engine.apply(Update::AddRating {
            user: 0,
            item: 1,
            rating: 3.0,
        });
        assert_eq!(stats.counter_adjustments, 0);
        assert!(stats.edits.reprioritized > 0);
        audit(&engine);
        assert!((engine.neighbors(0)[0].sim - before).abs() > 1e-9);
    }

    #[test]
    fn new_user_streams_into_the_graph() {
        let mut engine = toy_engine();
        let u = engine.add_user();
        assert_eq!(u, 4);
        assert!(engine.neighbors(u).is_empty());
        engine.apply(Update::AddRating {
            user: u,
            item: 3,
            rating: 1.0,
        });
        audit(&engine);
        // The newcomer shares shopping with Carl and Dave.
        let ids: Vec<UserId> = engine.neighbors(u).iter().map(|nb| nb.id).collect();
        assert_eq!(ids, vec![2, 3]);
        // And is discoverable from their side.
        assert!(engine.neighbors(2).iter().any(|nb| nb.id == u));
    }

    #[test]
    fn implicit_user_growth_on_add_rating() {
        let mut engine = toy_engine();
        engine.apply(Update::AddRating {
            user: 6,
            item: 0,
            rating: 1.0,
        });
        assert_eq!(engine.num_users(), 7, "users 4..=6 created");
        audit(&engine);
        assert!(
            engine.neighbors(6).iter().any(|nb| nb.id == 0),
            "shares book"
        );
    }

    #[test]
    fn batch_equals_sequential_on_final_state() {
        let updates = vec![
            Update::AddRating {
                user: 2,
                item: 1,
                rating: 1.0,
            },
            Update::AddRating {
                user: 0,
                item: 2,
                rating: 2.0,
            },
            Update::RemoveRating { user: 3, item: 3 },
        ];
        let mut sequential = toy_engine();
        for u in updates.clone() {
            sequential.apply(u);
        }
        let mut batched = toy_engine();
        let stats = batched.apply_batch(updates);
        assert_eq!(stats.updates, 3);
        audit(&sequential);
        audit(&batched);
        for u in 0..sequential.num_users() as UserId {
            assert_eq!(
                sequential.neighbors(u),
                batched.neighbors(u),
                "user {u} diverged"
            );
        }
        // Batching repairs each dirty user once.
        assert!(stats.sim_evals <= sequential.lifetime_stats().sim_evals);
    }

    #[test]
    fn compaction_triggers_and_preserves_state() {
        let mut engine = OnlineKnn::new(
            &figure2_toy(),
            OnlineConfig::new(2).with_compaction_threshold(0.2),
        );
        let stats = engine.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        assert!(stats.compacted, "20% threshold trips on the first overlay");
        assert_eq!(engine.data().overlay_users(), 0);
        audit(&engine);
    }

    #[test]
    fn graph_snapshot_is_cached_until_an_edit() {
        let mut engine = toy_engine();
        let first = engine.graph();
        let second = engine.graph();
        assert!(
            Arc::ptr_eq(&first, &second),
            "read-only period must reuse the snapshot"
        );
        // An update with heap edits invalidates the cache...
        let stats = engine.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        assert!(stats.edits.total() > 0);
        let third = engine.graph();
        assert!(!Arc::ptr_eq(&first, &third), "edit must invalidate");
        assert!(third.neighbors(2).iter().any(|nb| nb.id == 0 || nb.id == 1));
        // ...and so does a bare user addition (the graph grows a row).
        engine.add_user();
        let fourth = engine.graph();
        assert!(!Arc::ptr_eq(&third, &fourth));
        assert_eq!(fourth.num_users(), engine.num_users());
    }

    #[test]
    fn dataset_materialization_is_cached_until_a_mutation() {
        let mut engine = toy_engine();
        let first = engine.dataset();
        let second = engine.dataset();
        assert!(
            Arc::ptr_eq(&first, &second),
            "read-only period must reuse the materialized dataset"
        );
        // Any rating mutation invalidates — even a reinforcement that
        // edits no graph edge still changes the dataset contents.
        engine.apply(Update::AddRating {
            user: 0,
            item: 1,
            rating: 3.0,
        });
        let third = engine.dataset();
        assert!(!Arc::ptr_eq(&first, &third), "mutation must invalidate");
        assert_eq!(
            third.user_profile(0).rating(1),
            engine.data().profile(0).rating(1),
            "rematerialization reflects the reinforced rating"
        );
        // A bare user addition grows the materialized dataset too.
        engine.add_user();
        let fourth = engine.dataset();
        assert!(!Arc::ptr_eq(&third, &fourth));
        assert_eq!(fourth.num_users(), engine.num_users());
    }

    #[test]
    fn telemetry_mirrors_update_stats() {
        let registry = kiff_telemetry::Registry::new();
        let mut engine = OnlineKnn::new(
            &figure2_toy(),
            OnlineConfig::new(2).with_telemetry(registry.clone()),
        );
        let stats = engine.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        let snap = registry.snapshot();
        assert_eq!(snap.counter("online.sims"), Some(stats.sim_evals));
        assert_eq!(snap.histogram("online.apply_ns").unwrap().count, 1);
        assert_eq!(
            snap.histogram("online.repair_ns").unwrap().count,
            stats.repaired_users
        );
        // Repair scoring flows through the instrumented workspace.
        assert!(snap.counter("similarity.scores").unwrap_or(0) >= stats.sim_evals);
        // A disabled registry records nothing but repairs identically.
        let off = kiff_telemetry::Registry::disabled();
        let mut quiet = OnlineKnn::new(
            &figure2_toy(),
            OnlineConfig::new(2).with_telemetry(off.clone()),
        );
        let stats2 = quiet.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        assert_eq!(stats2.sim_evals, stats.sim_evals);
        assert_eq!(off.snapshot().counter("online.sims"), Some(0));
    }

    #[test]
    fn lifetime_stats_accumulate() {
        let mut engine = toy_engine();
        engine.apply(Update::AddRating {
            user: 2,
            item: 1,
            rating: 1.0,
        });
        engine.apply(Update::RemoveRating { user: 2, item: 1 });
        let life = engine.lifetime_stats();
        assert_eq!(life.updates, 2);
        assert!(life.sim_evals >= 2);
    }
}
