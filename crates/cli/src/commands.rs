//! Execution of parsed [`Command`]s.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use kiff::core::KiffError;

use kiff::online::{
    CommunityPartitioner, ModuloPartitioner, OnlineConfig, OnlineKnn, RebalanceConfig, ShardConfig,
    ShardedOnlineKnn, Update,
};
use kiff::prelude::*;
use kiff::{Algorithm, Metric};
use kiff_dataset::io::{load_json, load_movielens, load_snap_tsv, load_updates_tsv, save_snap_tsv};
use kiff_dataset::stats::{item_profile_sizes, user_profile_sizes};
use kiff_dataset::{Dataset, DatasetStats};
use kiff_eval::percentile;
use kiff_graph::{exact_knn_brute_with, exact_knn_with, write_edges_tsv};

use crate::args::{
    BuildOptions, Command, CompareOptions, ExactOptions, Format, GenerateOptions, InputOptions,
    PartitionerChoice, RecommendOptions, SearchOptions, ServeOptions, UpdateOptions,
};
use crate::report::UpdateReport;

/// A command-execution failure with a user-facing message and the
/// process exit code the binary should terminate with.
///
/// Usage and argument errors keep the traditional code `1`; failures
/// that originate as a typed [`KiffError`] carry its
/// [`exit_code`](KiffError::exit_code) so scripts can branch on the
/// failure class (2 = unknown id, 3 = empty profile/query, 4 = i/o,
/// 5 = corrupt/mismatch, 6 = protocol, 7 = remote).
#[derive(Debug)]
pub struct CommandError {
    message: String,
    code: u8,
}

impl CommandError {
    /// The process exit code for this failure.
    pub fn exit_code(&self) -> u8 {
        self.code
    }
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CommandError {}

impl From<io::Error> for CommandError {
    fn from(e: io::Error) -> Self {
        CommandError {
            message: format!("i/o error: {e}"),
            code: KiffError::from(e).exit_code(),
        }
    }
}

impl From<KiffError> for CommandError {
    fn from(e: KiffError) -> Self {
        CommandError {
            code: e.exit_code(),
            message: e.to_string(),
        }
    }
}

fn err(message: impl Into<String>) -> CommandError {
    CommandError {
        message: message.into(),
        code: 1,
    }
}

/// Writes a rendered telemetry snapshot to its own file (`--metrics-out`),
/// returning the snapshot so callers can also summarise it; metrics never
/// share a stream with human-readable output.
fn write_metrics(
    path: &Path,
    registry: &Registry,
    format: MetricsFormat,
) -> Result<TelemetrySnapshot, CommandError> {
    let snapshot = registry.snapshot();
    std::fs::write(path, kiff::telemetry::export::render(&snapshot, format))
        .map_err(|e| err(format!("{}: {e}", path.display())))?;
    Ok(snapshot)
}

/// Loads a dataset according to `options` (format inferred from the
/// extension when not given).
pub fn load_dataset(options: &InputOptions) -> Result<Dataset, CommandError> {
    let format = options
        .format
        .or_else(|| Format::from_path(&options.input))
        .ok_or_else(|| {
            err(format!(
                "cannot infer format of '{}'; pass --format tsv|movielens|json",
                options.input.display()
            ))
        })?;
    let path = &options.input;
    let dataset = match format {
        Format::SnapTsv => {
            load_snap_tsv(path)
                .map_err(|e| err(format!("{}: {e}", path.display())))?
                .0
        }
        Format::MovieLens => {
            load_movielens(path)
                .map_err(|e| err(format!("{}: {e}", path.display())))?
                .0
        }
        Format::Json => load_json(path).map_err(|e| err(format!("{}: {e}", path.display())))?,
    };
    Ok(dataset)
}

/// Runs `command`, writing human-readable output to `out`.
pub fn execute(command: &Command, out: &mut dyn Write) -> Result<(), CommandError> {
    match command {
        Command::Help => {
            writeln!(out, "{}", crate::args::USAGE)?;
            Ok(())
        }
        Command::Stats(options) => stats(options, out),
        Command::Build(options) => build(options, out),
        Command::Exact(options) => exact(options, out),
        Command::Compare(options) => compare(options, out),
        Command::Generate(options) => generate(options, out),
        Command::Recommend(options) => recommend(options, out),
        Command::Search(options) => search(options, out),
        Command::Update(options) => update(options, out),
        Command::Serve(options) => serve(options, out),
    }
}

/// Loads a dataset like [`load_dataset`], also returning the external-id
/// maps so a replayed update stream can be joined against it.
fn load_dataset_with_ids(
    options: &InputOptions,
) -> Result<(Dataset, kiff_dataset::io::IdMaps), CommandError> {
    let format = options
        .format
        .or_else(|| Format::from_path(&options.input))
        .ok_or_else(|| {
            err(format!(
                "cannot infer format of '{}'; pass --format tsv|movielens|json",
                options.input.display()
            ))
        })?;
    let path = &options.input;
    match format {
        Format::SnapTsv => load_snap_tsv(path).map_err(|e| err(format!("{}: {e}", path.display()))),
        Format::MovieLens => {
            load_movielens(path).map_err(|e| err(format!("{}: {e}", path.display())))
        }
        Format::Json => Err(err(
            "kiff update needs external ids to join the stream against; \
             use the tsv or movielens format for --input",
        )),
    }
}

fn update(options: &UpdateOptions, out: &mut dyn Write) -> Result<(), CommandError> {
    use kiff::collections::FxHashMap;

    let (base, ids) = load_dataset_with_ids(&options.input)?;
    let raw = load_updates_tsv(&options.updates)
        .map_err(|e| err(format!("{}: {e}", options.updates.display())))?;
    if raw.is_empty() {
        return Err(err("the update stream is empty"));
    }

    // Join the stream's external ids against the base mapping; unseen ids
    // extend the dense spaces (new users stream into the graph).
    let mut user_map: FxHashMap<u64, u32> = ids
        .user_ids
        .iter()
        .enumerate()
        .map(|(dense, &ext)| (ext, dense as u32))
        .collect();
    let mut item_map: FxHashMap<u64, u32> = ids
        .item_ids
        .iter()
        .enumerate()
        .map(|(dense, &ext)| (ext, dense as u32))
        .collect();
    let mut new_users = 0usize;
    let mut new_items = 0usize;
    let stream: Vec<Update> = raw
        .iter()
        .map(|&(user, item, rating, _)| {
            let next_user = user_map.len() as u32;
            let user = *user_map.entry(user).or_insert_with(|| {
                new_users += 1;
                next_user
            });
            let next_item = item_map.len() as u32;
            let item = *item_map.entry(item).or_insert_with(|| {
                new_items += 1;
                next_item
            });
            Update::AddRating { user, item, rating }
        })
        .collect();

    // Everything human-readable funnels through the report and is
    // written once at the end, so stdout can never interleave with the
    // metrics file.
    let mut report = UpdateReport::new();
    report.base(base.num_users(), base.num_items(), base.num_ratings());
    report.stream(stream.len(), new_users, new_items);

    // Build the initial graph, then replay. The engine records into
    // `registry` (its own enabled registry when no export is wanted, so
    // the sharded engine's derived cross-traffic stays live).
    let registry = Registry::new();
    let mut config = OnlineConfig::new(options.k).with_telemetry(registry.clone());
    if let Some(width) = options.repair_width {
        config = config.with_repair_width(width);
    }
    // Both engines ride behind `&mut dyn KnnEngine`; the concrete
    // sharded handle stays reachable for its shard-only statistics.
    let mut single: Option<OnlineKnn> = None;
    let mut sharded: Option<ShardedOnlineKnn> = None;
    let build_start = Instant::now();
    let engine: &mut dyn KnnEngine = if options.shards > 1 {
        let mut shard_config = ShardConfig::new(options.shards);
        shard_config.threads = options.threads;
        shard_config = match options.partitioner {
            PartitionerChoice::Hash => shard_config,
            PartitionerChoice::Modulo => {
                shard_config.with_partitioner(std::sync::Arc::new(ModuloPartitioner))
            }
            PartitionerChoice::Community => shard_config.with_partitioner(std::sync::Arc::new(
                CommunityPartitioner::from_dataset(&base, options.shards),
            )),
        };
        if let Some(ratio) = options.rebalance {
            shard_config = shard_config.with_rebalance(RebalanceConfig::new(ratio));
        }
        let s = ShardedOnlineKnn::new(&base, config, shard_config);
        report.shards(
            s.num_shards(),
            options.partitioner,
            &s.shard_sizes(),
            options.rebalance,
        );
        sharded.insert(s)
    } else {
        single.insert(OnlineKnn::new(&base, config))
    };
    report.initial_build(build_start.elapsed());

    let replay_start = Instant::now();
    if options.batch <= 1 {
        for u in stream {
            engine.apply(u);
        }
    } else {
        for chunk in stream.chunks(options.batch) {
            engine.apply_batch(chunk.to_vec());
        }
    }
    let replay_time = replay_start.elapsed();
    let life = *engine.stats();
    report.replay(&life, replay_time, options.batch);
    // Materialise the engine reads now so the `dyn` borrow of the
    // concrete engines ends before the shard-only reporting below.
    let final_dataset = engine.data().to_dataset();
    let live_graph = engine.graph();
    if let Some(sharded) = &sharded {
        report.cross_shard(
            sharded.cross_shard_messages(),
            sharded.migrations_total(),
            &sharded.shard_sizes(),
        );
    }

    // Export the replay's telemetry before the rebuild below muddies it
    // with unrelated construction work.
    if let Some(path) = &options.metrics_out {
        let snapshot = write_metrics(path, &registry, options.metrics_format)?;
        let instruments =
            snapshot.counters.len() + snapshot.gauges.len() + snapshot.histograms.len();
        report.metrics_written(path, options.metrics_format, instruments);
    }

    // Compare against rebuilding from scratch on the final dataset.
    let mut kiff_config = kiff::core::KiffConfig::new(options.k);
    kiff_config.threads = options.threads;
    let rebuild_start = Instant::now();
    let sim = kiff::similarity::WeightedCosine::fit(&final_dataset);
    let rebuild = kiff::core::Kiff::new(kiff_config).run(&final_dataset, &sim);
    let rebuild_time = rebuild_start.elapsed();
    let r = recall(&rebuild.graph, &live_graph);
    report.rebuild(
        rebuild.stats.sim_evals,
        rebuild_time,
        r,
        life.sim_evals_per_update(),
    );
    report.write_to(out)?;
    Ok(())
}

fn serve(options: &ServeOptions, out: &mut dyn Write) -> Result<(), CommandError> {
    use kiff::core::fault;
    use kiff::serve::{recover, EngineHost, Server, ServerConfig, StoreConfig};

    // Arm chaos failpoints before anything they could fire on: the env
    // spec first (fleet-wide drills), then the flag (per-daemon).
    let armed = fault::arm_from_env()?
        + match &options.failpoints {
            Some(spec) => fault::arm_from_spec(spec)?,
            None => 0,
        };
    if armed > 0 {
        // `off` entries count as armed (they neutralise an env spec)
        // but are not live, so the list can be shorter than the count.
        let live = fault::armed();
        let live = if live.is_empty() {
            "none live".to_string()
        } else {
            live.join(", ")
        };
        writeln!(out, "armed {armed} failpoint(s): {live}")?;
    }

    let dataset = load_dataset(&options.input)?;
    let mut builder = KnnGraphBuilder::new(options.k).metric(options.metric);
    if let Some(threads) = options.threads {
        builder = builder.threads(threads);
    }
    let build_start = Instant::now();
    let graph = builder.build(&dataset);
    writeln!(
        out,
        "built k={} graph over {} users in {:.2?}",
        options.k,
        dataset.num_users(),
        build_start.elapsed()
    )?;

    let registry = Registry::new();
    let config = OnlineConfig::new(options.k).with_telemetry(registry.clone());
    let shard_config = (options.shards > 1).then(|| {
        let mut sc = ShardConfig::new(options.shards);
        sc.threads = options.threads;
        sc
    });

    // The volatile engine over the freshly built graph: the no-data-dir
    // path, and the `--degraded-ok` read-only fallback.
    let volatile =
        |config: OnlineConfig, shard_config: Option<ShardConfig>| -> Box<dyn KnnEngine> {
            match shard_config {
                Some(sc) => Box::new(ShardedOnlineKnn::from_graph(&dataset, &graph, config, sc)),
                None => Box::new(OnlineKnn::from_graph(&dataset, &graph, config)),
            }
        };

    let mut read_only = false;
    let (engine, store) = match &options.data_dir {
        Some(dir) => {
            let mut cfg = StoreConfig::new(dir);
            if let Some(every) = options.snapshot_every {
                cfg = cfg.with_snapshot_every(every);
            }
            match recover(
                &cfg,
                &dataset,
                Some(&graph),
                config.clone(),
                shard_config.clone(),
            ) {
                Ok(recovered) => {
                    let torn = if recovered.truncated {
                        " (torn WAL tail truncated)"
                    } else {
                        ""
                    };
                    match recovered.snapshot_seq {
                        Some(seq) => writeln!(
                            out,
                            "recovered snapshot seq {seq} + {} WAL update(s){torn} from {}",
                            recovered.replayed,
                            dir.display()
                        )?,
                        None if recovered.replayed > 0 => writeln!(
                            out,
                            "replayed {} WAL update(s){torn} from {}",
                            recovered.replayed,
                            dir.display()
                        )?,
                        None => writeln!(out, "fresh data directory {}", dir.display())?,
                    }
                    (recovered.engine, Some(recovered.store))
                }
                Err(e) if options.degraded_ok => {
                    // Persistence is unusable but the operator asked to
                    // keep answering queries: serve the freshly built
                    // graph read-only (writes refuse with a typed
                    // `unavailable`) instead of exiting.
                    writeln!(
                        out,
                        "WARNING: {}: {e}; --degraded-ok set, serving read-only",
                        dir.display()
                    )?;
                    read_only = true;
                    (volatile(config, shard_config), None)
                }
                Err(e) => return Err(e.into()),
            }
        }
        None => {
            writeln!(
                out,
                "no --data-dir: running volatile, updates are lost on exit"
            )?;
            (volatile(config, shard_config), None)
        }
    };

    let mut host = EngineHost::new(engine, store, registry);
    if read_only {
        host = host.read_only();
    }
    let replication = options.repl_listen.as_ref().map(|listen| {
        let mut rc = kiff::serve::ReplicationConfig::new(listen).with_peers(options.peers.clone());
        if let Some(primary) = &options.replica_of {
            rc = rc.replica_of(primary);
        }
        if let Some(ms) = options.heartbeat_ms {
            rc = rc.with_heartbeat(std::time::Duration::from_millis(ms));
        }
        if let Some(min) = options.min_sync_replicas {
            rc = rc.with_min_sync_replicas(min);
        }
        rc
    });
    let server_config = ServerConfig {
        max_inflight: options.max_inflight,
        replication,
        ..ServerConfig::default()
    };
    let server = Server::bind_with(&options.addr, host, server_config)?;
    let bound = server.local_addr();
    if let Some(repl) = server.repl_addr() {
        let role = match &options.replica_of {
            Some(primary) => format!("replica of {primary}"),
            None => "primary".to_string(),
        };
        writeln!(out, "replication on {repl} ({role})")?;
    }
    if let Some(path) = &options.addr_file {
        std::fs::write(path, format!("{bound}\n"))
            .map_err(|e| err(format!("{}: {e}", path.display())))?;
    }
    if options.max_inflight > 0 {
        writeln!(
            out,
            "shedding beyond {} concurrent request(s)",
            options.max_inflight
        )?;
    }
    writeln!(out, "serving on {bound} (send `shutdown` to stop)")?;
    out.flush()?;
    server.run()?;
    writeln!(out, "daemon stopped")?;
    Ok(())
}

fn stats(options: &InputOptions, out: &mut dyn Write) -> Result<(), CommandError> {
    let dataset = load_dataset(options)?;
    let s = DatasetStats::compute(&dataset);
    writeln!(out, "dataset : {}", s.name)?;
    writeln!(out, "users   : {}", s.num_users)?;
    writeln!(out, "items   : {}", s.num_items)?;
    writeln!(out, "ratings : {}", s.num_ratings)?;
    writeln!(out, "density : {:.4}%", s.density_percent())?;
    writeln!(
        out,
        "avg |UP|: {:.1}   (max {})",
        s.avg_user_profile, s.max_user_profile
    )?;
    writeln!(
        out,
        "avg |IP|: {:.1}   (max {})",
        s.avg_item_profile, s.max_item_profile
    )?;
    let pct = |sizes: &[usize]| -> (f64, f64, f64) {
        let v: Vec<f64> = sizes.iter().map(|&x| x as f64).collect();
        (
            percentile(&v, 50.0),
            percentile(&v, 90.0),
            percentile(&v, 99.0),
        )
    };
    let (u50, u90, u99) = pct(&user_profile_sizes(&dataset));
    let (i50, i90, i99) = pct(&item_profile_sizes(&dataset));
    writeln!(out, "|UP| pct: p50 {u50:.0}  p90 {u90:.0}  p99 {u99:.0}")?;
    writeln!(out, "|IP| pct: p50 {i50:.0}  p90 {i90:.0}  p99 {i99:.0}")?;
    Ok(())
}

fn build(options: &BuildOptions, out: &mut dyn Write) -> Result<(), CommandError> {
    let dataset = load_dataset(&options.input)?;
    let mut builder = KnnGraphBuilder::new(options.k)
        .algorithm(options.algorithm)
        .metric(options.metric)
        .count_strategy(options.count_strategy)
        .scoring(options.scoring)
        .seed(options.seed);
    if let Some(g) = options.gamma {
        builder = builder.gamma(g);
    }
    if let Some(b) = options.beta {
        builder = builder.beta(b).termination(b);
    }
    if let Some(t) = options.threads {
        builder = builder.threads(t);
    }
    let registry = options.metrics_out.as_ref().map(|_| Registry::new());
    if let Some(r) = &registry {
        builder = builder.telemetry(r.clone());
    }

    let start = Instant::now();
    let graph = builder.build(&dataset);
    let elapsed = start.elapsed();

    if let (Some(path), Some(r)) = (&options.metrics_out, &registry) {
        write_metrics(path, r, options.metrics_format)?;
    }
    match &options.output {
        Some(path) if path.as_os_str() != "-" => {
            let mut w = BufWriter::new(File::create(path)?);
            write_graph(&graph, &mut w)?;
            w.flush()?;
            writeln!(
                out,
                "built {}-NN graph of {} users in {elapsed:.1?} ({} edges) -> {}",
                options.k,
                graph.num_users(),
                graph.num_edges(),
                path.display()
            )?;
        }
        _ => write_graph(&graph, out)?,
    }
    Ok(())
}

/// Writes `user<TAB>neighbor<TAB>similarity` lines in the format
/// `kiff_graph::load_edges_tsv` round-trips exactly.
fn write_graph(graph: &KnnGraph, w: &mut dyn Write) -> Result<(), CommandError> {
    write_edges_tsv(graph, w)?;
    Ok(())
}

/// The fitted metric object behind a [`Metric`] selector.
fn metric_object(metric: Metric, dataset: &Dataset) -> Box<dyn Similarity> {
    match metric {
        Metric::Cosine => Box::new(WeightedCosine::fit(dataset)),
        Metric::BinaryCosine => Box::new(BinaryCosine),
        Metric::Jaccard => Box::new(Jaccard),
        Metric::WeightedJaccard => Box::new(WeightedJaccard),
        Metric::Dice => Box::new(Dice),
        Metric::AdamicAdar => Box::new(AdamicAdar::fit(dataset)),
    }
}

fn algorithm_name(algorithm: Algorithm) -> &'static str {
    match algorithm {
        Algorithm::Kiff => "kiff",
        Algorithm::NnDescent => "nndescent",
        Algorithm::HyRec => "hyrec",
        Algorithm::L2Knng => "l2knng",
        Algorithm::Lsh => "lsh",
        Algorithm::Exact => "exact",
    }
}

fn exact(options: &ExactOptions, out: &mut dyn Write) -> Result<(), CommandError> {
    let dataset = load_dataset(&options.input)?;
    let sim = metric_object(options.metric, &dataset);
    let start = Instant::now();
    let graph = if options.brute {
        exact_knn_brute_with(
            &dataset,
            sim.as_ref(),
            options.k,
            options.threads,
            options.scoring,
        )
    } else {
        exact_knn_with(
            &dataset,
            sim.as_ref(),
            options.k,
            options.threads,
            options.scoring,
        )
    };
    let elapsed = start.elapsed();
    match &options.output {
        Some(path) if path.as_os_str() != "-" => {
            let mut w = BufWriter::new(File::create(path)?);
            write_graph(&graph, &mut w)?;
            w.flush()?;
            writeln!(
                out,
                "built exact {}-NN graph of {} users in {elapsed:.1?} ({} edges, {}) -> {}",
                options.k,
                graph.num_users(),
                graph.num_edges(),
                if options.brute {
                    "brute force"
                } else {
                    "inverted index"
                },
                path.display()
            )?;
        }
        _ => write_graph(&graph, out)?,
    }
    Ok(())
}

fn compare(options: &CompareOptions, out: &mut dyn Write) -> Result<(), CommandError> {
    let dataset = load_dataset(&options.input)?;
    let sim = metric_object(options.metric, &dataset);
    let exact_start = Instant::now();
    let exact = exact_knn_with(
        &dataset,
        sim.as_ref(),
        options.k,
        options.threads,
        options.scoring,
    );
    writeln!(
        out,
        "exact ground truth: {} users, k={}, {:.1?}",
        dataset.num_users(),
        options.k,
        exact_start.elapsed()
    )?;
    writeln!(
        out,
        "{:<12} {:>8} {:>12} {:>10}",
        "algorithm", "recall", "time", "edges"
    )?;
    // One registry spans the whole suite, so the export shows how much
    // similarity work each family of algorithms performed side by side.
    let registry = options.metrics_out.as_ref().map(|_| Registry::new());
    for &algorithm in &options.algorithms {
        let mut builder = KnnGraphBuilder::new(options.k)
            .algorithm(algorithm)
            .metric(options.metric)
            .scoring(options.scoring)
            .seed(options.seed);
        if let Some(t) = options.threads {
            builder = builder.threads(t);
        }
        if let Some(r) = &registry {
            builder = builder.telemetry(r.clone());
        }
        let start = Instant::now();
        let graph = builder.build(&dataset);
        let elapsed = start.elapsed();
        writeln!(
            out,
            "{:<12} {:>8.4} {:>12.1?} {:>10}",
            algorithm_name(algorithm),
            recall(&exact, &graph),
            elapsed,
            graph.num_edges()
        )?;
    }
    if let (Some(path), Some(r)) = (&options.metrics_out, &registry) {
        write_metrics(path, r, options.metrics_format)?;
    }
    Ok(())
}

fn generate(options: &GenerateOptions, out: &mut dyn Write) -> Result<(), CommandError> {
    if options.scale <= 0.0 {
        return Err(err("--scale must be positive"));
    }
    let dataset = options.preset.generate(options.scale, options.seed);
    save_snap_tsv(&dataset, &options.output)?;
    let s = DatasetStats::compute(&dataset);
    writeln!(
        out,
        "generated {}: {} users, {} items, {} ratings (density {:.4}%) -> {}",
        s.name,
        s.num_users,
        s.num_items,
        s.num_ratings,
        s.density_percent(),
        options.output.display()
    )?;
    Ok(())
}

fn recommend(options: &RecommendOptions, out: &mut dyn Write) -> Result<(), CommandError> {
    let dataset = load_dataset(&options.input)?;
    let graph = KnnGraphBuilder::new(options.k).build(&dataset);
    let recommender = Recommender::new(Arc::new(dataset), Arc::new(graph))?;
    let recs = recommender.try_recommend(options.user, options.top)?;
    if recs.is_empty() {
        writeln!(out, "no recommendations for user {}", options.user)?;
        return Ok(());
    }
    writeln!(out, "top {} items for user {}:", recs.len(), options.user)?;
    for (rank, r) in recs.iter().enumerate() {
        writeln!(
            out,
            "{:>3}. item {:<8} score {:.4}",
            rank + 1,
            r.item,
            r.score
        )?;
    }
    Ok(())
}

fn search(options: &SearchOptions, out: &mut dyn Write) -> Result<(), CommandError> {
    let dataset = load_dataset(&options.input)?;
    let graph = KnnGraphBuilder::new(options.k).build(&dataset);
    let searcher = GraphSearcher::new(Arc::new(dataset), Arc::new(graph), ProfileMetric::Cosine)?;
    let query = QueryProfile::from_items(options.items.iter().copied());
    let hits = searcher.try_search(&query, options.top, (options.top * 4).max(40))?;
    if hits.is_empty() {
        writeln!(out, "no users match the query items")?;
        return Ok(());
    }
    writeln!(
        out,
        "top {} users for items {:?}:",
        hits.len(),
        options.items
    )?;
    for (rank, h) in hits.iter().enumerate() {
        writeln!(out, "{:>3}. user {:<8} sim {:.4}", rank + 1, h.user, h.sim)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kiff-cli-test-{}-{name}", std::process::id()));
        p
    }

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn run_str(cmdline: &str) -> Result<String, CommandError> {
        let cmd = parse(&argv(cmdline)).expect("parse");
        let mut out = Vec::new();
        execute(&cmd, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    /// Writes a small SNAP file shared by the tests.
    fn fixture() -> PathBuf {
        let path = tmp("fixture.tsv");
        std::fs::write(
            &path,
            "# toy\n0\t0\n0\t1\n1\t1\n1\t2\n2\t3\n3\t3\n2\t0\n3\t1\n",
        )
        .unwrap();
        path
    }

    #[test]
    fn stats_prints_table1_columns() {
        let path = fixture();
        let out = run_str(&format!("stats --input {}", path.display())).unwrap();
        assert!(out.contains("users   : 4"), "{out}");
        assert!(out.contains("ratings : 8"), "{out}");
        assert!(out.contains("density"), "{out}");
    }

    #[test]
    fn build_writes_edge_list() {
        let input = fixture();
        let output = tmp("graph.tsv");
        let out = run_str(&format!(
            "build --input {} --k 2 --threads 1 --output {}",
            input.display(),
            output.display()
        ))
        .unwrap();
        assert!(out.contains("built 2-NN graph of 4 users"), "{out}");
        let graph = std::fs::read_to_string(&output).unwrap();
        let lines: Vec<&str> = graph.lines().filter(|l| !l.starts_with('#')).collect();
        assert!(!lines.is_empty());
        for line in &lines {
            let cols: Vec<&str> = line.split('\t').collect();
            assert_eq!(cols.len(), 3, "line '{line}'");
            let _: u32 = cols[0].parse().unwrap();
            let _: u32 = cols[1].parse().unwrap();
            let s: f64 = cols[2].parse().unwrap();
            assert!(s > 0.0);
        }
        std::fs::remove_file(output).ok();
    }

    #[test]
    fn build_to_stdout_when_no_output() {
        let input = fixture();
        let out = run_str(&format!(
            "build --input {} --k 1 --threads 1",
            input.display()
        ))
        .unwrap();
        assert!(out.lines().count() >= 4, "{out}");
    }

    #[test]
    fn build_all_algorithms() {
        let input = fixture();
        for algo in ["kiff", "nndescent", "hyrec", "l2knng", "lsh", "exact"] {
            let out = run_str(&format!(
                "build --input {} --k 1 --threads 1 --algorithm {algo}",
                input.display()
            ))
            .unwrap();
            // LSH may legitimately find no bucket collisions on a 4-user
            // toy; every other algorithm must emit edges.
            if algo != "lsh" {
                assert!(!out.is_empty(), "{algo}");
            }
        }
    }

    #[test]
    fn exact_writes_edge_list_and_brute_matches() {
        let input = fixture();
        let inverted = run_str(&format!(
            "exact --input {} --k 2 --threads 1",
            input.display()
        ))
        .unwrap();
        assert!(inverted.lines().count() >= 4, "{inverted}");
        let brute = run_str(&format!(
            "exact --input {} --k 2 --threads 1 --brute",
            input.display()
        ))
        .unwrap();
        assert_eq!(inverted, brute, "inverted index must match brute force");
        let pairwise = run_str(&format!(
            "exact --input {} --k 2 --threads 1 --scoring pairwise",
            input.display()
        ))
        .unwrap();
        assert_eq!(inverted, pairwise, "scoring modes must agree");
    }

    #[test]
    fn compare_reports_every_algorithm() {
        let input = fixture();
        let out = run_str(&format!(
            "compare --input {} --k 1 --threads 1 --seed 7",
            input.display()
        ))
        .unwrap();
        assert!(out.contains("exact ground truth"), "{out}");
        for algo in ["kiff", "nndescent", "hyrec", "lsh"] {
            assert!(out.contains(algo), "missing {algo}: {out}");
        }
        let subset = run_str(&format!(
            "compare --input {} --k 1 --threads 1 --algorithms kiff --scoring pairwise",
            input.display()
        ))
        .unwrap();
        assert!(subset.contains("kiff"), "{subset}");
        assert!(!subset.contains("hyrec"), "{subset}");
    }

    #[test]
    fn generate_roundtrips_through_stats() {
        let output = tmp("gen.tsv");
        let out = run_str(&format!(
            "generate --preset wikipedia --scale 0.05 --output {}",
            output.display()
        ))
        .unwrap();
        assert!(out.contains("generated"), "{out}");
        let stats = run_str(&format!("stats --input {}", output.display())).unwrap();
        assert!(stats.contains("users"), "{stats}");
        std::fs::remove_file(output).ok();
    }

    #[test]
    fn recommend_prints_ranked_items() {
        let input = fixture();
        let out = run_str(&format!(
            "recommend --input {} --user 0 --k 2 --top 3",
            input.display()
        ))
        .unwrap();
        assert!(
            out.contains("top") || out.contains("no recommendations"),
            "{out}"
        );
    }

    #[test]
    fn recommend_rejects_bad_user() {
        let input = fixture();
        let e = run_str(&format!("recommend --input {} --user 99", input.display()));
        assert!(e.is_err());
        let e = e.unwrap_err();
        assert!(e.to_string().contains("unknown user 99"), "{e}");
        assert_eq!(e.exit_code(), 2, "unknown ids map to exit code 2");
    }

    #[test]
    fn search_finds_raters() {
        let input = fixture();
        let out = run_str(&format!(
            "search --input {} --items 0,1 --k 2 --top 3",
            input.display()
        ))
        .unwrap();
        assert!(out.contains("top"), "{out}");
        assert!(out.contains("user"), "{out}");
    }

    #[test]
    fn update_replays_a_stream() {
        let input = fixture();
        let updates = tmp("updates.tsv");
        // Two known users pick up items; user 9 is brand new and arrives
        // with two ratings. Timestamps arrive out of order on purpose.
        std::fs::write(
            &updates,
            "# streamed ratings\n2\t1\t1.0\t30\n0\t2\t1.0\t10\n9\t3\t1.0\t20\n9\t1\t1.0\t40\n",
        )
        .unwrap();
        let out = run_str(&format!(
            "update --input {} --updates {} --k 2",
            input.display(),
            updates.display()
        ))
        .unwrap();
        assert!(out.contains("stream  : 4 updates (1 new users"), "{out}");
        assert!(out.contains("recall vs rebuild"), "{out}");
        assert!(out.contains("per-update work"), "{out}");
        std::fs::remove_file(updates).ok();
    }

    #[test]
    fn serve_answers_over_tcp_and_shuts_down() {
        let input = fixture();
        let addr_file = tmp("serve-addr.txt");
        std::fs::remove_file(&addr_file).ok();
        let cmdline = format!(
            "serve --input {} --k 2 --addr 127.0.0.1:0 --addr-file {}",
            input.display(),
            addr_file.display()
        );
        let daemon = std::thread::spawn(move || run_str(&cmdline));

        // The daemon writes its ephemeral port once the listener is up.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&addr_file) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    break s;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "daemon never published its address"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let mut client = kiff::serve::Client::connect(&addr).expect("connect");
        client.ping().expect("ping");
        let nbrs = client.neighbors(0).expect("neighbors");
        assert!(!nbrs.is_empty(), "user 0 has neighbours");
        let applied = client
            .update(&[Update::AddRating {
                user: 2,
                item: 1,
                rating: 1.0,
            }])
            .expect("update");
        assert_eq!(applied, 1);
        let e = client.neighbors(99).unwrap_err();
        assert_eq!(e.exit_code(), 7, "server-side failures surface as remote");
        client.shutdown().expect("shutdown");
        let out = daemon.join().expect("join").expect("serve run");
        assert!(out.contains("serving on "), "{out}");
        assert!(out.contains("volatile"), "{out}");
        assert!(out.contains("daemon stopped"), "{out}");
        std::fs::remove_file(&addr_file).ok();
    }

    #[test]
    fn serve_degraded_ok_survives_broken_data_dir() {
        let input = fixture();
        let addr_file = tmp("serve-degraded-addr.txt");
        std::fs::remove_file(&addr_file).ok();
        // A regular file where a directory is expected: recovery fails,
        // but --degraded-ok keeps the daemon up read-only.
        let bad_dir = tmp("serve-degraded-datadir");
        std::fs::remove_dir_all(&bad_dir).ok();
        std::fs::remove_file(&bad_dir).ok();
        std::fs::write(&bad_dir, "not a directory").unwrap();
        let cmdline = format!(
            "serve --input {} --k 2 --addr 127.0.0.1:0 --addr-file {} \
             --data-dir {} --degraded-ok --max-inflight 8",
            input.display(),
            addr_file.display(),
            bad_dir.display()
        );
        let daemon = std::thread::spawn(move || run_str(&cmdline));

        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let addr = loop {
            if let Ok(s) = std::fs::read_to_string(&addr_file) {
                let s = s.trim().to_string();
                if !s.is_empty() {
                    break s;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "degraded daemon never published its address"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };

        let mut client = kiff::serve::Client::connect(&addr).expect("connect");
        let nbrs = client.neighbors(0).expect("reads still serve");
        assert!(!nbrs.is_empty(), "user 0 has neighbours");
        let e = client
            .update(&[Update::AddRating {
                user: 2,
                item: 1,
                rating: 1.0,
            }])
            .unwrap_err();
        assert_eq!(e.exit_code(), 7, "refusal surfaces as a remote error");
        assert!(e.to_string().contains("unavailable"), "{e}");
        assert!(e.is_retryable(), "unavailable is retryable: {e}");
        let health = client.health().expect("health");
        assert_ne!(health.status, "healthy", "read-only mode is not healthy");
        client.shutdown().expect("shutdown");
        let out = daemon.join().expect("join").expect("serve run");
        assert!(
            out.contains("--degraded-ok set, serving read-only"),
            "{out}"
        );
        assert!(
            out.contains("shedding beyond 8 concurrent request(s)"),
            "{out}"
        );
        std::fs::remove_file(&addr_file).ok();
        std::fs::remove_file(&bad_dir).ok();
    }

    #[test]
    fn update_batched_matches_contract() {
        let input = fixture();
        let updates = tmp("updates-batch.tsv");
        std::fs::write(&updates, "2\t1\n0\t2\n3\t0\n1\t3\n").unwrap();
        let out = run_str(&format!(
            "update --input {} --updates {} --k 2 --batch 4 --repair-width 8",
            input.display(),
            updates.display()
        ))
        .unwrap();
        assert!(out.contains("batch 4"), "{out}");
        assert!(out.contains("recall vs rebuild"), "{out}");
        std::fs::remove_file(updates).ok();
    }

    #[test]
    fn update_sharded_replays_a_stream() {
        let input = fixture();
        let updates = tmp("updates-sharded.tsv");
        std::fs::write(&updates, "2\t1\t1.0\t30\n0\t2\t1.0\t10\n9\t3\t1.0\t20\n").unwrap();
        let out = run_str(&format!(
            "update --input {} --updates {} --k 2 --batch 2 --shards 2 --threads 2",
            input.display(),
            updates.display()
        ))
        .unwrap();
        assert!(out.contains("shards  : 2"), "{out}");
        assert!(out.contains("recall vs rebuild"), "{out}");
        std::fs::remove_file(updates).ok();
    }

    #[test]
    fn update_sharded_with_community_partitioner_and_rebalance() {
        let input = fixture();
        let updates = tmp("updates-rebalance.tsv");
        std::fs::write(&updates, "2\t1\t1.0\t30\n0\t2\t1.0\t10\n9\t3\t1.0\t20\n").unwrap();
        let out = run_str(&format!(
            "update --input {} --updates {} --k 2 --batch 2 --shards 2 --threads 2 \
             --partitioner community --rebalance 2.0",
            input.display(),
            updates.display()
        ))
        .unwrap();
        assert!(out.contains("Community partitioner"), "{out}");
        assert!(out.contains("rebalance at ratio 2"), "{out}");
        assert!(out.contains("cross-shard:"), "{out}");
        assert!(out.contains("recall vs rebuild"), "{out}");
        std::fs::remove_file(updates).ok();
    }

    #[test]
    fn build_exports_metrics_to_their_own_file() {
        let input = fixture();
        let metrics = tmp("metrics.json");
        let out = run_str(&format!(
            "build --input {} --k 2 --threads 1 --metrics-out {}",
            input.display(),
            metrics.display()
        ))
        .unwrap();
        // The edge list still goes to stdout; the snapshot to the file.
        assert!(out.lines().count() >= 4, "{out}");
        assert!(!out.contains("\"counters\""), "metrics leaked: {out}");
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(m.contains("\"enabled\": true"), "{m}");
        assert!(m.contains("\"core.refine.sims\""), "{m}");
        assert!(m.contains("\"core.phase.total_ns\""), "{m}");
        std::fs::remove_file(metrics).ok();
    }

    #[test]
    fn update_exports_prometheus_metrics_without_interleaving() {
        let input = fixture();
        let updates = tmp("updates-metrics.tsv");
        std::fs::write(&updates, "2\t1\t1.0\t30\n0\t2\t1.0\t10\n9\t3\t1.0\t20\n").unwrap();
        let metrics = tmp("metrics.prom");
        let out = run_str(&format!(
            "update --input {} --updates {} --k 2 --batch 2 --shards 2 --threads 2 \
             --metrics-out {} --metrics-format prom",
            input.display(),
            updates.display(),
            metrics.display()
        ))
        .unwrap();
        assert!(out.contains("telemetry: "), "{out}");
        assert!(out.contains("recall vs rebuild"), "{out}");
        assert!(!out.contains("# TYPE"), "metrics leaked into stdout: {out}");
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(
            m.contains("# TYPE kiff_shard_0_cross_messages counter"),
            "{m}"
        );
        assert!(m.contains("kiff_online_apply_ns"), "{m}");
        std::fs::remove_file(updates).ok();
        std::fs::remove_file(metrics).ok();
    }

    #[test]
    fn update_rejects_empty_stream() {
        let input = fixture();
        let updates = tmp("updates-empty.tsv");
        std::fs::write(&updates, "# nothing\n").unwrap();
        let e = run_str(&format!(
            "update --input {} --updates {}",
            input.display(),
            updates.display()
        ));
        assert!(e.unwrap_err().to_string().contains("empty"));
        std::fs::remove_file(updates).ok();
    }

    #[test]
    fn missing_file_is_reported() {
        let e = run_str("stats --input /nonexistent/nope.tsv");
        assert!(e.is_err());
    }

    #[test]
    fn unknown_extension_needs_format() {
        let path = tmp("data.weird");
        std::fs::write(&path, "0\t0\n").unwrap();
        let e = run_str(&format!("stats --input {}", path.display()));
        assert!(e.unwrap_err().to_string().contains("--format"));
        let ok = run_str(&format!("stats --input {} --format tsv", path.display()));
        assert!(ok.is_ok());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn help_contains_all_commands() {
        let out = run_str("help").unwrap();
        for c in [
            "build",
            "exact",
            "compare",
            "stats",
            "generate",
            "recommend",
            "search",
            "update",
        ] {
            assert!(out.contains(c), "usage lacks '{c}'");
        }
    }
}
