//! Relaxed atomic counters and per-activity wall-clock accumulators.
//!
//! The paper's evaluation (§IV-C) separates every run into three activities —
//! preprocessing, candidate selection, and similarity computation — and
//! counts similarity evaluations to derive the *scan rate*. Workers report
//! into these shared accumulators with relaxed atomics; totals are read once
//! the scope has joined, so no stronger ordering is needed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A relaxed atomic event counter (e.g. similarity evaluations, heap
/// changes).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous total.
    pub fn take(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// Accumulates wall-clock time spent in one activity across all threads.
///
/// Note that with `t` busy workers, accumulated time advances up to `t×`
/// faster than wall time; breakdowns are therefore reported as *shares* of
/// the total accumulated time, exactly like the stacked bars of Fig. 5.
#[derive(Debug, Default)]
pub struct TimeAccumulator {
    nanos: AtomicU64,
}

impl TimeAccumulator {
    /// A zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an elapsed duration.
    #[inline]
    pub fn add(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Total accumulated time.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    /// Times `f`, charging its elapsed time to this accumulator.
    #[inline]
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(start.elapsed());
        out
    }

    /// RAII guard charging the time between creation and drop.
    pub fn start(&self) -> ScopedTimer<'_> {
        ScopedTimer {
            acc: self,
            start: Instant::now(),
        }
    }
}

/// Guard returned by [`TimeAccumulator::start`].
#[derive(Debug)]
pub struct ScopedTimer<'a> {
    acc: &'a TimeAccumulator,
    start: Instant,
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        self.acc.add(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::parallel_for;

    #[test]
    fn counter_accumulates_across_threads() {
        let c = Counter::new();
        parallel_for(4, 10_000, 64, |range| {
            for _ in range {
                c.incr();
            }
        });
        assert_eq!(c.get(), 10_000);
        assert_eq!(c.take(), 10_000);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_bulk_add() {
        let c = Counter::new();
        c.add(5);
        c.add(7);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn accumulator_measures_nonzero_time() {
        let t = TimeAccumulator::new();
        let out = t.measure(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        assert!(t.total() >= Duration::from_millis(4));
    }

    #[test]
    fn scoped_timer_charges_on_drop() {
        let t = TimeAccumulator::new();
        {
            let _g = t.start();
            std::thread::sleep(Duration::from_millis(3));
        }
        assert!(t.total() >= Duration::from_millis(2));
    }

    #[test]
    fn accumulator_sums_parallel_work() {
        let t = TimeAccumulator::new();
        parallel_for(4, 4, 1, |_range| {
            t.measure(|| std::thread::sleep(Duration::from_millis(2)));
        });
        // Four sleeps of ~2ms each accumulate regardless of overlap.
        assert!(t.total() >= Duration::from_millis(6));
    }
}
