//! Shared helpers for the KIFF experiment harness and Criterion benches.
//!
//! The real entry point is the `experiments` binary (`src/bin/experiments.rs`)
//! which regenerates every table and figure of the paper; the Criterion
//! bench targets (`benches/`) reuse the same building blocks at reduced
//! scale so `cargo bench` terminates quickly.

pub mod datasets;
pub mod experiments;
pub mod runner;

pub use datasets::{bench_dataset, paper_suite, SuiteScale};
