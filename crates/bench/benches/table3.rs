//! Bench for Table III's underlying computation: recall evaluation of an
//! approximate graph against exact ground truth.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kiff_bench::datasets::bench_dataset;
use kiff_bench::runner::{ground_truth, run_kiff, RunOptions};
use kiff_graph::{recall, recall_per_user};

fn bench(c: &mut Criterion) {
    let ds = bench_dataset(3);
    let exact = ground_truth(&ds, 10, Some(2));
    let approx = run_kiff(
        &ds,
        RunOptions {
            k: 10,
            threads: Some(2),
            seed: 1,
        },
    )
    .graph;
    let mut group = c.benchmark_group("table3");
    group.bench_function("recall", |b| {
        b.iter(|| black_box(recall(black_box(&exact), black_box(&approx))))
    });
    group.bench_function("recall_per_user", |b| {
        b.iter(|| black_box(recall_per_user(black_box(&exact), black_box(&approx))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
