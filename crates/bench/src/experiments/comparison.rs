//! The headline comparison: Fig. 1, Table II, Table III, and Fig. 5.

use kiff_dataset::{paper_k, PaperDataset};
use kiff_eval::table::{fmt_percent, fmt_secs, Table};
use kiff_eval::{mean, AlgoRunRecord};

use super::Ctx;
use crate::runner::{compare_all, run_hyrec, run_nndescent};

/// Runs the Table II workload (all three algorithms on all four datasets,
/// paper parameters) and returns the raw records.
pub(crate) fn collect_table2(ctx: &mut Ctx) -> Vec<AlgoRunRecord> {
    let mut records = Vec::new();
    for d in PaperDataset::ALL {
        let k = paper_k(d);
        let ds = ctx.dataset(d);
        let exact = ctx.ground_truth(d, k);
        eprintln!("  table2: {} (|U|={}, k={k})", d.name(), ds.num_users());
        for outcome in compare_all(&ds, ctx.opts(k), &exact) {
            let mut rec = outcome.record;
            rec.dataset = d.name().to_string();
            records.push(rec);
        }
    }
    records
}

/// Table II: recall / wall-time / scan rate / #iterations per approach per
/// dataset, with KIFF's gain rows.
pub fn table2(ctx: &mut Ctx) -> String {
    let records = ctx.table2_records();
    let mut table = Table::new(&["Approach", "recall", "wall-time", "scan rate", "#iter."]);
    for d in PaperDataset::ALL {
        let block: Vec<&AlgoRunRecord> = records.iter().filter(|r| r.dataset == d.name()).collect();
        if block.is_empty() {
            continue;
        }
        table.push_row(&[format!("[{} | k={}]", d.name(), block[0].k), String::new()]);
        let kiff = block
            .iter()
            .find(|r| r.algorithm == "KIFF")
            .expect("kiff row");
        for r in &block {
            table.push_row(&[
                format!("  {}", r.algorithm),
                format!("{:.2}", r.recall),
                fmt_secs(r.wall_time_s),
                fmt_percent(r.scan_rate),
                r.iterations.to_string(),
            ]);
        }
        let competitors: Vec<&&AlgoRunRecord> =
            block.iter().filter(|r| r.algorithm != "KIFF").collect();
        let recall_gain =
            kiff.recall - mean(&competitors.iter().map(|r| r.recall).collect::<Vec<_>>());
        let speedup = mean(
            &competitors
                .iter()
                .map(|r| r.wall_time_s / kiff.wall_time_s)
                .collect::<Vec<_>>(),
        );
        table.push_row(&[
            "  KIFF's Gain".to_string(),
            format!("{recall_gain:+.2}"),
            format!("x{speedup:.1}"),
        ]);
    }
    let text = format!(
        "Table II: overall performance of NN-Descent, HyRec & KIFF\n\n{}",
        table.render()
    );
    ctx.finish(
        "table2",
        "Overall perf of NN-Descent, HyRec, KIFF (Table II)",
        text,
        &*records,
    )
}

/// Table III: average speed-up and recall gain of KIFF over each
/// competitor.
pub fn table3(ctx: &mut Ctx) -> String {
    let records = ctx.table2_records();
    let mut table = Table::new(&["Competitor", "speed-up", "recall gain"]);
    let mut payload = Vec::new();
    let mut all_speedups = Vec::new();
    let mut all_gains = Vec::new();
    for competitor in ["NN-Descent", "HyRec"] {
        let mut speedups = Vec::new();
        let mut gains = Vec::new();
        for d in PaperDataset::ALL {
            let kiff = records
                .iter()
                .find(|r| r.dataset == d.name() && r.algorithm == "KIFF");
            let other = records
                .iter()
                .find(|r| r.dataset == d.name() && r.algorithm == competitor);
            if let (Some(kiff), Some(other)) = (kiff, other) {
                speedups.push(other.wall_time_s / kiff.wall_time_s);
                gains.push(kiff.recall - other.recall);
            }
        }
        let (s, g) = (mean(&speedups), mean(&gains));
        table.push_row(&[
            competitor.to_string(),
            format!("x{s:.2}"),
            format!("{g:+.2}"),
        ]);
        payload.push((competitor.to_string(), s, g));
        all_speedups.extend(speedups);
        all_gains.extend(gains);
    }
    table.push_row(&[
        "Average".to_string(),
        format!("x{:.2}", mean(&all_speedups)),
        format!("{:+.2}", mean(&all_gains)),
    ]);
    let text = format!(
        "Table III: average speed-up and recall gain of KIFF\n\n{}\n(Paper: x15.42/+0.14 vs NN-Descent, x12.51/+0.23 vs HyRec, x13.97/+0.19 average.)\n",
        table.render()
    );
    ctx.finish(
        "table3",
        "Average speed-up and recall gain of KIFF (Table III)",
        text,
        &payload,
    )
}

/// Fig. 5: per-dataset, per-approach breakdown of computation time into
/// preprocessing / similarity / candidate selection.
pub fn fig5(ctx: &mut Ctx) -> String {
    let records = ctx.table2_records();
    let mut out = String::from(
        "Fig. 5: time breakdown (shares of accumulated worker+preprocessing time)\n\n",
    );
    let mut table = Table::new(&[
        "Dataset/Approach",
        "preprocess",
        "similarity",
        "cand. select",
    ]);
    for d in PaperDataset::ALL {
        for r in records.iter().filter(|r| r.dataset == d.name()) {
            let total = r.preprocessing_s + r.similarity_s + r.candidate_selection_s;
            if total <= 0.0 {
                continue;
            }
            table.push_row(&[
                format!("{} {}", d.name(), r.algorithm),
                fmt_percent(r.preprocessing_s / total),
                fmt_percent(r.similarity_s / total),
                fmt_percent(r.candidate_selection_s / total),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape (paper): KIFF pays 10-15% preprocessing (counting phase) but \
         far less similarity time; NN-Descent and HyRec spend >90% of their time on \
         similarity computations.\n",
    );
    ctx.finish(
        "fig5",
        "Time breakdown per approach (Fig. 5)",
        out,
        &*records,
    )
}

/// Fig. 1: per-iteration time breakdown of NN-Descent and HyRec on the
/// Wikipedia dataset (similarity computation dominates).
pub fn fig1(ctx: &mut Ctx) -> String {
    let d = PaperDataset::Wikipedia;
    let ds = ctx.dataset(d);
    let opts = ctx.opts(paper_k(d));
    let mut out =
        String::from("Fig. 1: per-iteration breakdown of greedy approaches (Wikipedia)\n");
    let mut payload = Vec::new();
    for (name, outcome) in [
        ("NN-Descent", run_nndescent(&ds, opts)),
        ("HyRec", run_hyrec(&ds, opts)),
    ] {
        out.push_str(&format!("\n-- {name} --\n"));
        let mut table = Table::new(&["iter", "similarity", "candidates", "sim share"]);
        let mut sim_total = 0.0;
        let mut cand_total = 0.0;
        for t in &outcome.per_iteration {
            let sim_s = t.similarity_time.as_secs_f64();
            let cand_s = t.candidate_time.as_secs_f64();
            sim_total += sim_s;
            cand_total += cand_s;
            let share = if sim_s + cand_s > 0.0 {
                sim_s / (sim_s + cand_s)
            } else {
                0.0
            };
            table.push_row(&[
                format!("i{}", t.iteration),
                fmt_secs(sim_s),
                fmt_secs(cand_s),
                fmt_percent(share),
            ]);
            payload.push((name.to_string(), t.iteration, sim_s, cand_s));
        }
        out.push_str(&table.render());
        let share = sim_total / (sim_total + cand_total).max(1e-12);
        out.push_str(&format!(
            "{name}: similarity computation is {} of tracked per-iteration time\n",
            fmt_percent(share)
        ));
    }
    out.push_str(
        "\n(Paper: both approaches spend >90% of their execution time on similarity \
         values.)\n",
    );
    ctx.finish(
        "fig1",
        "Per-iteration breakdown of NN-Descent/HyRec on Wikipedia (Fig. 1)",
        out,
        &payload,
    )
}
