//! User-based collaborative filtering on a MovieLens-like dataset.
//!
//! The paper motivates KNN graphs with recommendation (§I): once each user
//! is connected to her k most similar peers, items those peers loved —
//! which she has not seen — become her recommendations. This example
//! builds the KNN graph with KIFF and derives top-5 recommendations.
//!
//! Run with: `cargo run --release --example recommend_movies`

use kiff::prelude::*;
use kiff_collections::FxHashMap;
use kiff_dataset::generators::movielens_like;

fn main() {
    // A scaled-down ML-1 stand-in: ~600 users, ~370 movies, 5-star scale.
    let dataset = movielens_like(0.1, 42);
    println!(
        "dataset: {} users, {} movies, {} ratings (density {:.2}%)",
        dataset.num_users(),
        dataset.num_items(),
        dataset.num_ratings(),
        dataset.density() * 100.0
    );

    // KNN graph with KIFF (k = 10, cosine over star ratings).
    let k = 10;
    let graph = KnnGraphBuilder::new(k).build(&dataset);
    println!("built the {k}-NN graph with KIFF\n");

    // Classic user-based CF: score unseen items by similarity-weighted
    // neighbour ratings.
    for user in [0u32, 7, 42] {
        let profile = dataset.user_profile(user);
        let mut scores: FxHashMap<u32, f64> = FxHashMap::default();
        let mut weights: FxHashMap<u32, f64> = FxHashMap::default();
        for neighbor in graph.neighbors(user) {
            for (item, rating) in dataset.user_profile(neighbor.id).iter() {
                if profile.rating(item).is_none() {
                    *scores.entry(item).or_insert(0.0) += neighbor.sim * f64::from(rating);
                    *weights.entry(item).or_insert(0.0) += neighbor.sim;
                }
            }
        }
        let mut ranked: Vec<(u32, f64)> = scores
            .into_iter()
            .map(|(item, s)| (item, s / weights[&item].max(1e-9)))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        ranked.truncate(5);

        println!(
            "user {user:>4} ({} rated movies) — top recommendations:",
            profile.len()
        );
        for (item, predicted) in ranked {
            println!("    movie #{item:<5} predicted rating {predicted:.2}");
        }
    }

    println!("\nEvery candidate was reached through shared movies — no cold similarity scans.");
}
