//! Equivalence guarantees: KIFF in exact mode against brute force, across
//! metrics, thread counts, and counting strategies (the §III-D optimality
//! argument, machine-checked).

use kiff::prelude::*;
use kiff_core::{CountStrategy, KiffConfig};
use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
use kiff_dataset::generators::coauthor::{generate_coauthorship, CoauthorConfig};
use kiff_graph::exact_knn_brute;
use kiff_similarity::Similarity;

fn assert_graphs_equal(a: &KnnGraph, b: &KnnGraph, label: &str) {
    assert_eq!(a.num_users(), b.num_users());
    for u in 0..a.num_users() as u32 {
        assert_eq!(a.neighbors(u), b.neighbors(u), "{label}: user {u}");
    }
}

fn exact_kiff<S: Similarity>(ds: &Dataset, sim: &S, k: usize, threads: usize) -> KnnGraph {
    Kiff::new(KiffConfig::exact(k).with_threads(threads))
        .run(ds, sim)
        .graph
}

#[test]
fn kiff_exact_mode_equals_brute_force_cosine() {
    let ds = generate_bipartite(&BipartiteConfig::tiny("eq-cos", 31));
    let sim = WeightedCosine::fit(&ds);
    for k in [1, 3, 10] {
        let kiff = exact_kiff(&ds, &sim, k, 1);
        let brute = exact_knn_brute(&ds, &sim, k, Some(1));
        assert_graphs_equal(&kiff, &brute, &format!("cosine k={k}"));
    }
}

#[test]
fn kiff_exact_mode_equals_brute_force_other_metrics() {
    let ds = generate_bipartite(&BipartiteConfig::tiny("eq-m", 37));
    let aa = AdamicAdar::fit(&ds);
    let metrics: Vec<(&str, &dyn Similarity)> = vec![
        ("jaccard", &Jaccard),
        ("weighted-jaccard", &WeightedJaccard),
        ("dice", &Dice),
        ("binary-cosine", &BinaryCosine),
        ("adamic-adar", &aa),
    ];
    for (name, sim) in metrics {
        let kiff = Kiff::new(KiffConfig::exact(5).with_threads(1))
            .run(&ds, sim)
            .graph;
        let brute = exact_knn_brute(&ds, sim, 5, Some(1));
        assert_graphs_equal(&kiff, &brute, name);
    }
}

#[test]
fn kiff_exact_mode_on_coauthorship() {
    let ds = generate_coauthorship(&CoauthorConfig {
        weighted: true,
        ..CoauthorConfig::tiny("eq-coa", 41)
    });
    let sim = WeightedCosine::fit(&ds);
    let kiff = exact_kiff(&ds, &sim, 4, 1);
    let brute = exact_knn_brute(&ds, &sim, 4, Some(1));
    assert_graphs_equal(&kiff, &brute, "coauthorship");
}

#[test]
fn thread_counts_do_not_change_exhaustive_results() {
    let ds = generate_bipartite(&BipartiteConfig::tiny("eq-t", 43));
    let sim = WeightedCosine::fit(&ds);
    let reference = exact_kiff(&ds, &sim, 7, 1);
    for threads in [2, 4, 8] {
        let parallel = exact_kiff(&ds, &sim, 7, threads);
        assert_graphs_equal(&reference, &parallel, &format!("{threads} threads"));
    }
}

#[test]
fn counting_strategies_yield_identical_graphs() {
    let ds = generate_bipartite(&BipartiteConfig::tiny("eq-s", 47));
    let sim = WeightedCosine::fit(&ds);
    let mut sort_cfg = KiffConfig::exact(6).with_threads(1);
    sort_cfg.count_strategy = CountStrategy::SortBased;
    let mut hash_cfg = KiffConfig::exact(6).with_threads(1);
    hash_cfg.count_strategy = CountStrategy::HashBased;
    let a = Kiff::new(sort_cfg).run(&ds, &sim).graph;
    let b = Kiff::new(hash_cfg).run(&ds, &sim).graph;
    assert_graphs_equal(&a, &b, "count strategies");
}

#[test]
fn exact_mode_recall_is_exactly_one() {
    let ds = generate_bipartite(&BipartiteConfig::tiny("eq-r", 53));
    let sim = WeightedCosine::fit(&ds);
    let exact = exact_knn(&ds, &sim, 8, None);
    let kiff = exact_kiff(&ds, &sim, 8, 4);
    assert_eq!(recall(&exact, &kiff), 1.0);
}

#[test]
fn default_beta_only_trades_tail_recall() {
    // With the default β = 0.001 the scan rate must not exceed the exact
    // mode's, and recall stays within a whisker of 1 (Table II's 0.99).
    let ds = generate_bipartite(&BipartiteConfig::tiny("eq-b", 59));
    let sim = WeightedCosine::fit(&ds);
    let exact_cfg = Kiff::new(KiffConfig::exact(10)).run(&ds, &sim);
    let default_cfg = Kiff::new(KiffConfig::new(10)).run(&ds, &sim);
    assert!(default_cfg.stats.sim_evals <= exact_cfg.stats.sim_evals);
    let exact = exact_knn(&ds, &sim, 10, None);
    assert!(recall(&exact, &default_cfg.graph) > 0.95);
}
