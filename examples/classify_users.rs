//! k-NN classification over a KIFF-built graph.
//!
//! Classification is one of the three services the paper motivates KNN
//! graphs with (§I). This example plants three user communities in a
//! synthetic bipartite dataset, hides the labels of a 20% test split,
//! builds the KNN graph with KIFF, and recovers the hidden labels by
//! similarity-weighted vote — comparing against the trivial
//! majority-class baseline.
//!
//! Run with: `cargo run --release --example classify_users`

use kiff::prelude::*;
use kiff_apps::{accuracy, KnnClassifier};
use kiff_dataset::generators::{generate_planted, PlantedConfig};

fn main() {
    // Three communities of users over a partitioned item space; 85% of
    // each user's ratings stay in her home block — separable, but noisy.
    let config = PlantedConfig {
        name: "communities".to_string(),
        num_users: 3_000,
        num_items: 1_500,
        communities: 3,
        ratings_per_user: 15,
        affinity: 0.85,
        rating_model: kiff_dataset::generators::RatingModel::Binary,
        seed: 42,
    };
    let (dataset, truth) = generate_planted(&config);
    println!(
        "dataset: {} users, {} items, {} ratings, {} planted communities",
        dataset.num_users(),
        dataset.num_items(),
        dataset.num_ratings(),
        config.communities
    );

    // Build the KNN graph with KIFF (k = 10, cosine).
    let sim = WeightedCosine::fit(&dataset);
    let result = Kiff::new(KiffConfig::new(10)).run(&dataset, &sim);
    println!(
        "KIFF: {} iterations, scan rate {:.2}%, {:.1?}",
        result.stats.iterations,
        result.stats.scan_rate * 100.0,
        result.stats.total_time
    );

    // Hold out every fifth user as the test split.
    let mut labels = truth.clone();
    let mut test = Vec::new();
    for u in (0..dataset.num_users()).step_by(5) {
        labels[u] = KnnClassifier::UNLABELED;
        test.push((u as u32, truth[u]));
    }
    println!(
        "split: {} labelled, {} held out",
        dataset.num_users() - test.len(),
        test.len()
    );

    // Weighted-vote kNN classification vs the majority baseline.
    let classifier = KnnClassifier::new(&result.graph, &labels);
    let knn_acc = accuracy(&classifier, &test);

    let mut counts = vec![0usize; config.communities];
    for (u, &l) in labels.iter().enumerate() {
        if l != KnnClassifier::UNLABELED {
            counts[truth[u] as usize] += 1;
        }
    }
    let majority = counts.iter().copied().max().unwrap_or(0) as u32;
    let majority_label = counts.iter().position(|&c| c as u32 == majority).unwrap() as u32;
    let baseline =
        test.iter().filter(|&&(_, t)| t == majority_label).count() as f64 / test.len() as f64;

    println!("majority-class baseline accuracy: {baseline:.3}");
    println!("kNN-graph classifier accuracy:    {knn_acc:.3}");

    // Show a few individual votes with their confidence.
    println!("\nsample predictions:");
    for &(u, t) in test.iter().take(5) {
        match classifier.predict(u) {
            Some(v) => println!(
                "  user {u}: predicted {} (truth {t}), confidence {:.2}",
                v.label, v.confidence
            ),
            None => println!("  user {u}: no labelled neighbours"),
        }
    }

    assert!(
        knn_acc > baseline,
        "kNN classification should beat the majority baseline"
    );
}
