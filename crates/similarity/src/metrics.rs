//! The [`Similarity`] trait and its implementations.
//!
//! Graph-construction algorithms are generic over `S: Similarity` and call
//! [`Similarity::sim`] with user ids; implementations fetch the profiles
//! and may consult state fitted on the dataset (precomputed norms, item
//! degree weights).

use kiff_dataset::{Dataset, UserId};

use crate::functions;

/// An item-based similarity over users of a dataset.
///
/// Implementations must be non-negative. When [`Similarity::sparse_axioms`]
/// returns `true`, the metric additionally guarantees Eq. (5)–(6) of the
/// paper — `sim = 0` exactly when the profiles share no item — which is the
/// precondition for KIFF's candidate pruning to be lossless (§III-D).
pub trait Similarity: Sync {
    /// `sim(u, v)` over `dataset`.
    fn sim(&self, dataset: &Dataset, u: UserId, v: UserId) -> f64;

    /// Metric name for reports.
    fn name(&self) -> &'static str;

    /// Whether Eq. (5)–(6) hold (true for everything in this module).
    fn sparse_axioms(&self) -> bool {
        true
    }
}

/// Cosine over presence (binary) vectors.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryCosine;

impl Similarity for BinaryCosine {
    fn sim(&self, dataset: &Dataset, u: UserId, v: UserId) -> f64 {
        functions::binary_cosine(dataset.user_profile(u), dataset.user_profile(v))
    }

    fn name(&self) -> &'static str {
        "binary-cosine"
    }
}

/// Cosine over rating vectors — the paper's evaluation metric.
///
/// `WeightedCosine::new()` computes norms on the fly; [`WeightedCosine::fit`]
/// precomputes one norm per user, halving the per-pair work. The fitted
/// instance must only be used with the dataset it was fitted on (checked by
/// length in debug builds).
#[derive(Debug, Clone, Default)]
pub struct WeightedCosine {
    norms: Option<Box<[f64]>>,
}

impl WeightedCosine {
    /// Norm-on-the-fly variant.
    pub fn new() -> Self {
        Self { norms: None }
    }

    /// Precomputes per-user norms for `dataset`.
    pub fn fit(dataset: &Dataset) -> Self {
        let norms = (0..dataset.num_users() as u32)
            .map(|u| dataset.user_profile(u).norm())
            .collect();
        Self { norms: Some(norms) }
    }
}

impl Similarity for WeightedCosine {
    fn sim(&self, dataset: &Dataset, u: UserId, v: UserId) -> f64 {
        let a = dataset.user_profile(u);
        let b = dataset.user_profile(v);
        match &self.norms {
            Some(norms) => {
                debug_assert_eq!(
                    norms.len(),
                    dataset.num_users(),
                    "fitted on another dataset"
                );
                functions::weighted_cosine_with_norms(a, b, norms[u as usize], norms[v as usize])
            }
            None => functions::weighted_cosine(a, b),
        }
    }

    fn name(&self) -> &'static str {
        "cosine"
    }
}

/// Jaccard's coefficient over item sets.
#[derive(Debug, Clone, Copy, Default)]
pub struct Jaccard;

impl Similarity for Jaccard {
    fn sim(&self, dataset: &Dataset, u: UserId, v: UserId) -> f64 {
        functions::jaccard(dataset.user_profile(u), dataset.user_profile(v))
    }

    fn name(&self) -> &'static str {
        "jaccard"
    }
}

/// Ruzicka (weighted Jaccard) over rating vectors.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedJaccard;

impl Similarity for WeightedJaccard {
    fn sim(&self, dataset: &Dataset, u: UserId, v: UserId) -> f64 {
        functions::weighted_jaccard(dataset.user_profile(u), dataset.user_profile(v))
    }

    fn name(&self) -> &'static str {
        "weighted-jaccard"
    }
}

/// Dice coefficient over item sets.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dice;

impl Similarity for Dice {
    fn sim(&self, dataset: &Dataset, u: UserId, v: UserId) -> f64 {
        functions::dice(dataset.user_profile(u), dataset.user_profile(v))
    }

    fn name(&self) -> &'static str {
        "dice"
    }
}

/// Raw common-item count — KIFF's coarse counting-phase approximation
/// exposed as a metric (unnormalized; useful for Fig. 7-style rank
/// comparisons and ablations).
#[derive(Debug, Clone, Copy, Default)]
pub struct CommonItems;

impl Similarity for CommonItems {
    fn sim(&self, dataset: &Dataset, u: UserId, v: UserId) -> f64 {
        functions::common_items(dataset.user_profile(u), dataset.user_profile(v))
    }

    fn name(&self) -> &'static str {
        "common-items"
    }
}

/// Adamic–Adar: shared items weighted by `1 / ln |IP_i|`, down-weighting
/// blockbuster items. Items rated by fewer than two users get the `ln 2`
/// weight (they cannot be shared more cheaply).
#[derive(Debug, Clone)]
pub struct AdamicAdar {
    item_weights: Box<[f64]>,
}

impl AdamicAdar {
    /// Precomputes item weights from the dataset's item profiles.
    pub fn fit(dataset: &Dataset) -> Self {
        let items = dataset.item_profiles();
        let item_weights = (0..dataset.num_items() as u32)
            .map(|i| 1.0 / f64::from(items.degree(i).max(2) as u32).ln())
            .collect();
        Self { item_weights }
    }

    /// The fitted per-item weights.
    pub fn item_weights(&self) -> &[f64] {
        &self.item_weights
    }
}

impl Similarity for AdamicAdar {
    fn sim(&self, dataset: &Dataset, u: UserId, v: UserId) -> f64 {
        debug_assert_eq!(
            self.item_weights.len(),
            dataset.num_items(),
            "fitted on another dataset"
        );
        functions::adamic_adar_with(
            dataset.user_profile(u),
            dataset.user_profile(v),
            &self.item_weights,
        )
    }

    fn name(&self) -> &'static str {
        "adamic-adar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::dataset::figure2_toy;
    use kiff_dataset::DatasetBuilder;

    #[test]
    fn toy_cosine_values() {
        let ds = figure2_toy();
        let cos = WeightedCosine::new();
        // Alice–Bob share coffee: 1/√(2·2) = 0.5.
        assert!((cos.sim(&ds, 0, 1) - 0.5).abs() < 1e-12);
        // Alice–Carl share nothing.
        assert_eq!(cos.sim(&ds, 0, 2), 0.0);
        // Carl–Dave both like only shopping: 1.0.
        assert!((cos.sim(&ds, 2, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fitted_cosine_matches_unfitted() {
        let ds = figure2_toy();
        let plain = WeightedCosine::new();
        let fitted = WeightedCosine::fit(&ds);
        for u in 0..4 {
            for v in 0..4 {
                assert!((plain.sim(&ds, u, v) - fitted.sim(&ds, u, v)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weighted_cosine_reflects_ratings() {
        let mut b = DatasetBuilder::new("w", 3, 3);
        // u0 loves item0, mildly likes item1; u1 mirrors; u2 only item0.
        b.add_rating(0, 0, 5.0);
        b.add_rating(0, 1, 1.0);
        b.add_rating(1, 0, 1.0);
        b.add_rating(1, 1, 5.0);
        b.add_rating(2, 0, 5.0);
        let ds = b.build();
        let cos = WeightedCosine::new();
        // u0 is closer to u2 (aligned heavy rating) than to u1.
        assert!(cos.sim(&ds, 0, 2) > cos.sim(&ds, 0, 1));
    }

    #[test]
    fn adamic_adar_downweights_popular_items() {
        let mut b = DatasetBuilder::new("aa", 4, 2);
        // item0 is rated by everyone (popular); item1 only by users 0 and 1.
        for u in 0..4 {
            b.add_rating(u, 0, 1.0);
        }
        b.add_rating(0, 1, 1.0);
        b.add_rating(1, 1, 1.0);
        let ds = b.build();
        let aa = AdamicAdar::fit(&ds);
        // Sharing the rare item contributes more than sharing the popular
        // one.
        let via_both = aa.sim(&ds, 0, 1); // shares item0 and item1
        let via_popular = aa.sim(&ds, 2, 3); // shares only item0
        assert!(via_both > via_popular);
        let w = aa.item_weights();
        assert!(w[1] > w[0], "rare item must weigh more");
    }

    #[test]
    fn all_metrics_report_sparse_axioms() {
        let ds = figure2_toy();
        let aa = AdamicAdar::fit(&ds);
        let metrics: Vec<&dyn Similarity> = vec![
            &BinaryCosine,
            &Jaccard,
            &WeightedJaccard,
            &Dice,
            &CommonItems,
            &aa,
        ];
        for m in metrics {
            assert!(m.sparse_axioms(), "{}", m.name());
            // Disjoint pair Alice–Carl must be zero under every metric.
            assert_eq!(m.sim(&ds, 0, 2), 0.0, "{}", m.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let ds = figure2_toy();
        let aa = AdamicAdar::fit(&ds);
        let cos = WeightedCosine::new();
        let metrics: Vec<&dyn Similarity> = vec![
            &BinaryCosine,
            &cos,
            &Jaccard,
            &WeightedJaccard,
            &Dice,
            &CommonItems,
            &aa,
        ];
        let mut names: Vec<&str> = metrics.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }
}
