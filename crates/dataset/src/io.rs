//! Dataset persistence: SNAP-style TSV edge lists, the MovieLens `::`
//! format, and a JSON dump.
//!
//! The paper's datasets ship as SNAP edge lists (`user<TAB>item[<TAB>
//! rating]`, `#` comments) and MovieLens `.dat` files
//! (`user::item::rating::timestamp`). Loaders remap arbitrary external ids
//! to the dense internal `0..n` ranges and report the mapping.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use kiff_collections::FxHashMap;

use crate::dataset::{Dataset, DatasetBuilder};

/// Errors raised while loading a dataset file.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that does not parse; carries the 1-based line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        message: String,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Mapping from dense internal ids back to the external ids of the source
/// file: `user_ids[internal] == external`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdMaps {
    /// External user ids in internal order.
    pub user_ids: Vec<u64>,
    /// External item ids in internal order.
    pub item_ids: Vec<u64>,
}

struct Remapper {
    to_internal: FxHashMap<u64, u32>,
    to_external: Vec<u64>,
}

impl Remapper {
    fn new() -> Self {
        Self {
            to_internal: FxHashMap::default(),
            to_external: Vec::new(),
        }
    }

    fn map(&mut self, external: u64) -> u32 {
        *self.to_internal.entry(external).or_insert_with(|| {
            let id = self.to_external.len() as u32;
            self.to_external.push(external);
            id
        })
    }
}

fn parse_edges<R: BufRead>(
    reader: R,
    name: &str,
    separator: Separator,
) -> Result<(Dataset, IdMaps), LoadError> {
    let mut users = Remapper::new();
    let mut items = Remapper::new();
    let mut triples: Vec<(u32, u32, f32)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut fields = separator.split(trimmed);
        let line_no = idx + 1;
        let parse_id = |field: Option<&str>, what: &str| -> Result<u64, LoadError> {
            field
                .ok_or_else(|| LoadError::Parse {
                    line: line_no,
                    message: format!("missing {what} field"),
                })?
                .parse::<u64>()
                .map_err(|e| LoadError::Parse {
                    line: line_no,
                    message: format!("bad {what}: {e}"),
                })
        };
        let user = parse_id(fields.next(), "user")?;
        let item = parse_id(fields.next(), "item")?;
        let rating = match fields.next() {
            None => 1.0f32,
            Some(text) => text.parse::<f32>().map_err(|e| LoadError::Parse {
                line: line_no,
                message: format!("bad rating: {e}"),
            })?,
        };
        if !(rating.is_finite() && rating > 0.0) {
            return Err(LoadError::Parse {
                line: line_no,
                message: format!("rating must be finite and positive, got {rating}"),
            });
        }
        triples.push((users.map(user), items.map(item), rating));
    }
    let mut builder = DatasetBuilder::new(name, users.to_external.len(), items.to_external.len());
    builder.reserve(triples.len());
    for (u, i, r) in triples {
        builder.add_rating(u, i, r);
    }
    Ok((
        builder.build(),
        IdMaps {
            user_ids: users.to_external,
            item_ids: items.to_external,
        },
    ))
}

#[derive(Clone, Copy)]
enum Separator {
    Whitespace,
    DoubleColon,
}

impl Separator {
    fn split(self, line: &str) -> Box<dyn Iterator<Item = &str> + '_> {
        match self {
            Separator::Whitespace => Box::new(line.split_whitespace()),
            Separator::DoubleColon => Box::new(line.split("::")),
        }
    }
}

/// Loads a SNAP-style edge list: `user item [rating]` separated by
/// whitespace, with `#`/`%` comment lines. A missing rating column means a
/// binary dataset.
pub fn load_snap_tsv(path: impl AsRef<Path>) -> Result<(Dataset, IdMaps), LoadError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "snap".to_string());
    let file = BufReader::new(File::open(path)?);
    parse_edges(file, &name, Separator::Whitespace)
}

/// Loads a MovieLens ratings file: `user::item::rating::timestamp` (the
/// timestamp, and anything after the third field, is ignored).
pub fn load_movielens(path: impl AsRef<Path>) -> Result<(Dataset, IdMaps), LoadError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "movielens".to_string());
    let file = BufReader::new(File::open(path)?);
    parse_edges(file, &name, Separator::DoubleColon)
}

/// Parses SNAP-format edges from an in-memory string (used by tests and
/// examples that embed small datasets).
pub fn parse_snap_str(name: &str, text: &str) -> Result<(Dataset, IdMaps), LoadError> {
    parse_edges(text.as_bytes(), name, Separator::Whitespace)
}

/// One streamed rating in external-id space: `(user, item, rating,
/// timestamp)`.
pub type RawUpdate = (u64, u64, f32, Option<u64>);

/// Loads a stream of timestamped rating updates:
/// `user<TAB>item[<TAB>rating[<TAB>timestamp]]` with `#`/`%` comments.
/// Ids stay external (the caller maps them against the base dataset's
/// [`IdMaps`]); updates are sorted by timestamp (stable, so ties — and
/// fully untimestamped files — preserve file order; a missing timestamp
/// sorts as 0).
pub fn load_updates_tsv(path: impl AsRef<Path>) -> Result<Vec<RawUpdate>, LoadError> {
    let file = BufReader::new(File::open(path.as_ref())?);
    let mut updates: Vec<RawUpdate> = Vec::new();
    for (idx, line) in file.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let line_no = idx + 1;
        let mut fields = trimmed.split_whitespace();
        let parse_u64 = |field: Option<&str>, what: &str| -> Result<u64, LoadError> {
            field
                .ok_or_else(|| LoadError::Parse {
                    line: line_no,
                    message: format!("missing {what} field"),
                })?
                .parse::<u64>()
                .map_err(|e| LoadError::Parse {
                    line: line_no,
                    message: format!("bad {what}: {e}"),
                })
        };
        let user = parse_u64(fields.next(), "user")?;
        let item = parse_u64(fields.next(), "item")?;
        let rating = match fields.next() {
            None => 1.0f32,
            Some(text) => text.parse::<f32>().map_err(|e| LoadError::Parse {
                line: line_no,
                message: format!("bad rating: {e}"),
            })?,
        };
        if !(rating.is_finite() && rating > 0.0) {
            return Err(LoadError::Parse {
                line: line_no,
                message: format!("rating must be finite and positive, got {rating}"),
            });
        }
        let timestamp = match fields.next() {
            None => None,
            Some(text) => Some(parse_u64(Some(text), "timestamp")?),
        };
        updates.push((user, item, rating, timestamp));
    }
    updates.sort_by_key(|&(_, _, _, ts)| ts.unwrap_or(0));
    Ok(updates)
}

/// Writes `dataset` as a SNAP-style TSV edge list (internal dense ids).
pub fn save_snap_tsv(dataset: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    writeln!(
        out,
        "# {}: {} users, {} items, {} ratings",
        dataset.name(),
        dataset.num_users(),
        dataset.num_items(),
        dataset.num_ratings()
    )?;
    for (u, i, r) in dataset.iter_ratings() {
        if r == 1.0 {
            writeln!(out, "{u}\t{i}")?;
        } else {
            writeln!(out, "{u}\t{i}\t{r}")?;
        }
    }
    out.flush()
}

/// Serializable dataset dump (JSON round-trip format).
#[derive(Debug, Serialize, Deserialize)]
pub struct DatasetDump {
    /// Dataset name.
    pub name: String,
    /// `|U|`.
    pub num_users: usize,
    /// `|I|`.
    pub num_items: usize,
    /// All `(user, item, rating)` triples.
    pub ratings: Vec<(u32, u32, f32)>,
}

impl DatasetDump {
    /// Captures `dataset` into a dump.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        Self {
            name: dataset.name().to_string(),
            num_users: dataset.num_users(),
            num_items: dataset.num_items(),
            ratings: dataset.iter_ratings().collect(),
        }
    }

    /// Rebuilds the dataset.
    pub fn into_dataset(self) -> Dataset {
        let mut builder = DatasetBuilder::new(self.name, self.num_users, self.num_items);
        builder.reserve(self.ratings.len());
        for (u, i, r) in self.ratings {
            builder.add_rating(u, i, r);
        }
        builder.build()
    }
}

/// Writes `dataset` as JSON.
pub fn save_json(dataset: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    let out = BufWriter::new(File::create(path)?);
    serde_json::to_writer(out, &DatasetDump::from_dataset(dataset))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Loads a dataset written by [`save_json`].
pub fn load_json(path: impl AsRef<Path>) -> io::Result<Dataset> {
    let file = BufReader::new(File::open(path)?);
    let dump: DatasetDump =
        serde_json::from_reader(file).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(dump.into_dataset())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::figure2_toy;

    #[test]
    fn parses_snap_with_comments_and_ratings() {
        let text = "# header\n10 100\n10 200 2.5\n\n20 100 1\n% alt comment\n";
        let (ds, ids) = parse_snap_str("t", text).unwrap();
        assert_eq!(ds.num_users(), 2);
        assert_eq!(ds.num_items(), 2);
        assert_eq!(ds.num_ratings(), 3);
        assert_eq!(ids.user_ids, vec![10, 20]);
        assert_eq!(ids.item_ids, vec![100, 200]);
        assert_eq!(ds.user_profile(0).rating(1), Some(2.5));
    }

    #[test]
    fn missing_rating_defaults_to_binary() {
        let (ds, _) = parse_snap_str("b", "1 2\n3 4\n").unwrap();
        assert!(ds.iter_ratings().all(|(_, _, r)| r == 1.0));
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let err = parse_snap_str("e", "1 2\nnot numbers\n").unwrap_err();
        match err {
            LoadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn rejects_nonpositive_ratings() {
        let err = parse_snap_str("e", "1 2 -1.0\n").unwrap_err();
        assert!(matches!(err, LoadError::Parse { line: 1, .. }));
    }

    #[test]
    fn snap_round_trip_through_file() {
        let ds = figure2_toy();
        let dir = std::env::temp_dir().join("kiff-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.tsv");
        save_snap_tsv(&ds, &path).unwrap();
        let (back, _) = load_snap_tsv(&path).unwrap();
        assert_eq!(back.num_users(), ds.num_users());
        assert_eq!(back.num_ratings(), ds.num_ratings());
        // Internal ids are written, so profiles survive exactly.
        for u in 0..4u32 {
            assert_eq!(back.user_profile(u).items, ds.user_profile(u).items);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn movielens_format_parses() {
        let dir = std::env::temp_dir().join("kiff-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ml.dat");
        std::fs::write(
            &path,
            "1::1193::5::978300760\n1::661::3::978302109\n2::1193::4::978298413\n",
        )
        .unwrap();
        let (ds, ids) = load_movielens(&path).unwrap();
        assert_eq!(ds.num_users(), 2);
        assert_eq!(ds.num_items(), 2);
        assert_eq!(ds.user_profile(0).rating(0), Some(5.0));
        assert_eq!(ids.item_ids, vec![1193, 661]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn json_round_trip() {
        let ds = figure2_toy();
        let dir = std::env::temp_dir().join("kiff-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.json");
        save_json(&ds, &path).unwrap();
        let back = load_json(&path).unwrap();
        assert_eq!(back.name(), ds.name());
        assert_eq!(back.users_csr(), ds.users_csr());
        std::fs::remove_file(path).ok();
    }
}
