#![warn(missing_docs)]

//! Item-based similarity metrics over sparse user profiles.
//!
//! KIFF "is generic, in the sense that it can be applied to any kind of
//! nodes, items, or similarity metrics" (§I). This crate provides the
//! metrics named by the paper — cosine (its evaluation default), Jaccard's
//! coefficient, Adamic–Adar — plus the coarse common-item count KIFF's
//! counting phase approximates similarity with.
//!
//! Three layers:
//!
//! * [`functions`] — allocation-free free functions over [`ProfileRef`]
//!   pairs, built on the shared merge/galloping intersection kernels in
//!   [`kernels`];
//! * [`scorer`] — prepared scorers: preprocess one reference profile
//!   (dense epoch-stamped lookup for high-degree users, pairwise fallback
//!   for small ones), then score each candidate in `O(|UP_v|)` — the fast
//!   path of KIFF's refinement loop and the online engines' repair;
//! * [`Similarity`] — the object-safe trait the graph-construction
//!   algorithms are generic over. Implementations may carry precomputed
//!   state (per-user norms, per-item Adamic–Adar weights) keyed by the
//!   dataset they were fitted on, and hand out prepared scorers via
//!   [`Similarity::scorer`].
//!
//! All provided metrics satisfy the two *sparse axioms* of §III-D used in
//! KIFF's optimality argument (Eq. 5–6): they are non-negative, and zero
//! whenever two profiles share no item — which is what makes pruning
//! non-sharing pairs lossless.

pub mod functions;
pub mod kernels;
pub mod metrics;
pub mod scorer;

pub use functions::{
    adamic_adar_with, binary_cosine, common_items, dice, jaccard, weighted_cosine, weighted_jaccard,
};
pub use kernels::{galloping_intersect_count, intersect_count, merge_intersect_count};
pub use metrics::{
    AdamicAdar, BinaryCosine, CommonItems, Dice, Jaccard, Similarity, WeightedCosine,
    WeightedJaccard,
};
pub use scorer::{
    ProfileScorer, ScoreKind, Scorer, ScorerWorkspace, ScoringMode, PREPARED_MIN_BATCH,
};

use kiff_dataset::ProfileRef;

/// Numerical tolerance used when comparing similarity values for recall
/// (ties at the k-th neighbour must not be penalised — Eq. 3).
pub const SIM_EPSILON: f64 = 1e-9;

/// Convenience: true when two profiles share at least one item.
pub fn shares_item(a: ProfileRef<'_>, b: ProfileRef<'_>) -> bool {
    intersect_count(a.items, b.items) > 0
}
