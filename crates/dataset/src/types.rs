//! Shared scalar types and the borrowed profile view.

/// Dense user identifier in `0..|U|`.
pub type UserId = u32;

/// Dense item identifier in `0..|I|`.
pub type ItemId = u32;

/// Rating value `ρ(u, i)`. Binary datasets use `1.0`; count-valued datasets
/// (check-ins, co-publications) use positive integers; star ratings use the
/// 0.5–5.0 half-step scale.
pub type Rating = f32;

/// A borrowed view of one user (or item) profile: the rated ids, sorted
/// ascending, with a parallel ratings slice.
///
/// This is the dictionary `UP_u : I → R` of §III-A flattened into two
/// slices, which keeps similarity computations allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct ProfileRef<'a> {
    /// Sorted ids this profile rates.
    pub items: &'a [ItemId],
    /// Ratings parallel to `items`.
    pub ratings: &'a [Rating],
}

impl<'a> ProfileRef<'a> {
    /// Number of rated items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the profile rates nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates `(item, rating)` pairs in ascending item order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, Rating)> + 'a {
        self.items.iter().copied().zip(self.ratings.iter().copied())
    }

    /// The rating of `item`, if present (binary search).
    pub fn rating(&self, item: ItemId) -> Option<Rating> {
        self.items
            .binary_search(&item)
            .ok()
            .map(|idx| self.ratings[idx])
    }

    /// Euclidean norm of the rating vector (used by weighted cosine).
    pub fn norm(&self) -> f64 {
        self.ratings
            .iter()
            .map(|&r| f64::from(r) * f64::from(r))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_accessors() {
        let items = [2u32, 5, 9];
        let ratings = [1.0f32, 3.0, 2.0];
        let p = ProfileRef {
            items: &items,
            ratings: &ratings,
        };
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.rating(5), Some(3.0));
        assert_eq!(p.rating(4), None);
        assert_eq!(
            p.iter().collect::<Vec<_>>(),
            vec![(2, 1.0), (5, 3.0), (9, 2.0)]
        );
        assert!((p.norm() - 14.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_profile() {
        let p = ProfileRef {
            items: &[],
            ratings: &[],
        };
        assert!(p.is_empty());
        assert_eq!(p.norm(), 0.0);
        assert_eq!(p.rating(0), None);
    }
}
