//! Clients for the `kiff-serve` wire protocol.
//!
//! [`Client`] is the raw blocking connection: one request in flight,
//! [`Client::request`] writes a frame and blocks for the answer.
//! Server-side failures come back as [`KiffError::Remote`] carrying the
//! server's error `kind` tag *and* the failing op, so a caller can
//! branch on the failure class — `unavailable` vs `overloaded` vs
//! `corrupt` — across the wire.
//!
//! [`SelfHealingClient`] wraps it with the retry discipline a client of
//! a degradable daemon needs:
//!
//! * **Backoff** — exponential with deterministic seeded jitter
//!   ([`RetryPolicy`]); the same seed reproduces the same retry timing,
//!   which keeps chaos tests replayable.
//! * **Reconnect** — a torn connection (server killed it, network blip)
//!   is dropped and redialled on the next attempt.
//! * **Idempotent writes** — every update batch carries a
//!   client-assigned id from a monotonic counter seeded off the
//!   server's applied high-water mark (via `health`) at connect. If an
//!   acknowledgement is lost and the batch is retried, the server
//!   recognises the id and answers `deduped` instead of applying it
//!   twice — the exactly-once half of the fault-tolerance story,
//!   proven by the chaos proptest in `tests/serve_faults.rs`.
//!
//! Only [`KiffError::is_retryable`] failures are retried: a malformed
//! request or an unknown user fails identically every time and is
//! returned immediately.

use std::net::TcpStream;
use std::time::Duration;

use kiff_core::fault::xorshift64;
use kiff_core::KiffError;
use kiff_graph::Neighbor;
use kiff_online::Update;
use serde_json::Value;

use crate::wire::{read_frame, write_frame, Request};

/// A connected client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

fn protocol(msg: impl Into<String>) -> KiffError {
    KiffError::Protocol(msg.into())
}

/// A decoded `health` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Health {
    /// `healthy`, `degraded`, or `recovering`.
    pub status: String,
    /// Last persisted sequence (`None` on a storeless daemon).
    pub seq: Option<u64>,
    /// Applied-batch high-water mark (0 = no batch ids seen).
    pub batch_hwm: u64,
    /// Seconds since the last successful WAL append.
    pub wal_age_secs: Option<u64>,
    /// Seconds since the last snapshot.
    pub snapshot_age_secs: Option<u64>,
}

/// A decoded `update` acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateAck {
    /// Updates applied by this request (0 when deduped).
    pub applied: u64,
    /// Whether the server recognised the batch id as already applied.
    pub deduped: bool,
    /// The WAL sequence after the batch (`None` on a storeless daemon).
    pub seq: Option<u64>,
}

impl Client {
    /// Connects to a daemon at `addr` (`host:port`).
    pub fn connect(addr: &str) -> Result<Self, KiffError> {
        let stream = TcpStream::connect(addr).map_err(KiffError::Io)?;
        stream.set_nodelay(true).map_err(KiffError::Io)?;
        Ok(Self { stream })
    }

    /// Sends `request` and returns the decoded response body. An
    /// `"ok": false` response is mapped to [`KiffError::Remote`].
    pub fn request(&mut self, request: &Request) -> Result<Value, KiffError> {
        write_frame(&mut self.stream, &request.to_value())?;
        let response = read_frame(&mut self.stream)?.ok_or_else(|| {
            // The server vanished between our frame and its answer — a
            // transport failure the self-healing client must retry.
            KiffError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        let ok = response
            .get("ok")
            .and_then(Value::as_bool)
            .ok_or_else(|| protocol("response missing `ok`"))?;
        if ok {
            return Ok(response);
        }
        let error = response.get("error");
        let kind = error
            .and_then(|e| e.get("kind"))
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string();
        let op = error
            .and_then(|e| e.get("op"))
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let message = error
            .and_then(|e| e.get("message"))
            .and_then(Value::as_str)
            .unwrap_or("unspecified server error")
            .to_string();
        Err(KiffError::Remote { kind, op, message })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), KiffError> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// `user`'s current neighbours, best first.
    pub fn neighbors(&mut self, user: u32) -> Result<Vec<Neighbor>, KiffError> {
        let response = self.request(&Request::Neighbors { user })?;
        response
            .get("neighbors")
            .and_then(Value::as_array)
            .ok_or_else(|| protocol("response missing `neighbors`"))?
            .iter()
            .map(|nb| {
                let id = nb
                    .get("id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| protocol("neighbor missing `id`"))?
                    as u32;
                let sim = nb
                    .get("sim")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| protocol("neighbor missing `sim`"))?;
                Ok(Neighbor { id, sim })
            })
            .collect()
    }

    /// Top-`top` item recommendations for `user`, as `(item, score)`.
    pub fn recommend(&mut self, user: u32, top: usize) -> Result<Vec<(u32, f64)>, KiffError> {
        let response = self.request(&Request::Recommend { user, top })?;
        pairs(&response, "recommendations", "item", "score")
    }

    /// Predicted rating of `item` by `user` (`None` = no basis).
    pub fn predict(&mut self, user: u32, item: u32) -> Result<Option<f64>, KiffError> {
        let response = self.request(&Request::Predict { user, item })?;
        match response
            .field("prediction")
            .map_err(|_| protocol("response missing `prediction`"))?
        {
            Value::Null => Ok(None),
            v => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| protocol("non-numeric prediction")),
        }
    }

    /// The `top` users most interested in `item`, as `(user, score)`.
    pub fn audience(&mut self, item: u32, top: usize) -> Result<Vec<(u32, f64)>, KiffError> {
        let response = self.request(&Request::Audience { item, top })?;
        pairs(&response, "audience", "user", "score")
    }

    /// Users most similar to the ad-hoc profile `items`.
    pub fn search(
        &mut self,
        items: &[(u32, f32)],
        top: usize,
    ) -> Result<Vec<(u32, f64)>, KiffError> {
        let response = self.request(&Request::Search {
            items: items.to_vec(),
            top,
        })?;
        pairs(&response, "hits", "user", "sim")
    }

    /// Applies `updates` (persisted server-side first); returns the
    /// number applied.
    pub fn update(&mut self, updates: &[Update]) -> Result<u64, KiffError> {
        self.update_batch(updates, 0).map(|ack| ack.applied)
    }

    /// Applies `updates` carrying the idempotence id `batch` (0 = none).
    pub fn update_batch(&mut self, updates: &[Update], batch: u64) -> Result<UpdateAck, KiffError> {
        let response = self.request(&Request::Update {
            updates: updates.to_vec(),
            batch,
        })?;
        let applied = response
            .get("applied")
            .and_then(Value::as_u64)
            .ok_or_else(|| protocol("response missing `applied`"))?;
        let deduped = response
            .get("deduped")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        let seq = response.get("seq").and_then(Value::as_u64);
        Ok(UpdateAck {
            applied,
            deduped,
            seq,
        })
    }

    /// Engine lifetime statistics as a raw JSON object.
    pub fn stats(&mut self) -> Result<Value, KiffError> {
        self.request(&Request::Stats)
    }

    /// The daemon's health tristate plus progress marks.
    pub fn health(&mut self) -> Result<Health, KiffError> {
        let response = self.request(&Request::Health)?;
        let status = response
            .get("status")
            .and_then(Value::as_str)
            .ok_or_else(|| protocol("response missing `status`"))?
            .to_string();
        Ok(Health {
            status,
            seq: response.get("seq").and_then(Value::as_u64),
            batch_hwm: response
                .get("batch_hwm")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            wal_age_secs: response.get("wal_age_secs").and_then(Value::as_u64),
            snapshot_age_secs: response.get("snapshot_age_secs").and_then(Value::as_u64),
        })
    }

    /// The daemon's telemetry snapshot as a raw JSON object.
    pub fn metrics(&mut self) -> Result<Value, KiffError> {
        let response = self.request(&Request::Metrics)?;
        response
            .get("metrics")
            .cloned()
            .ok_or_else(|| protocol("response missing `metrics`"))
    }

    /// Forces a snapshot; returns the covered sequence number.
    pub fn snapshot(&mut self) -> Result<u64, KiffError> {
        let response = self.request(&Request::Snapshot)?;
        response
            .get("seq")
            .and_then(Value::as_u64)
            .ok_or_else(|| protocol("response missing `seq`"))
    }

    /// Asks the daemon to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), KiffError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

fn pairs(
    response: &Value,
    field: &str,
    key: &str,
    value: &str,
) -> Result<Vec<(u32, f64)>, KiffError> {
    response
        .get(field)
        .and_then(Value::as_array)
        .ok_or_else(|| protocol(format!("response missing `{field}`")))?
        .iter()
        .map(|entry| {
            let k = entry
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| protocol(format!("entry missing `{key}`")))?
                as u32;
            let v = entry
                .get(value)
                .and_then(Value::as_f64)
                .ok_or_else(|| protocol(format!("entry missing `{value}`")))?;
            Ok((k, v))
        })
        .collect()
}

/// Retry discipline for [`SelfHealingClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Jitter seed — the same seed reproduces the same retry timing.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed: 42,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (1-based): exponential,
    /// capped at `max_delay`, scaled by a deterministic jitter in
    /// `[0.5, 1.0)` drawn from `rng`. Jitter decorrelates a fleet of
    /// clients hammering a recovering daemon; determinism keeps a given
    /// seed's schedule replayable.
    pub fn delay(&self, retry: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << retry.saturating_sub(1).min(20));
        let capped = exp.min(self.max_delay);
        let jitter = 0.5 + 0.5 * ((xorshift64(rng) >> 11) as f64 / (1u64 << 53) as f64);
        capped.mul_f64(jitter)
    }
}

/// A client that survives daemon degradation, overload, and torn
/// connections (see the module docs for the full discipline).
#[derive(Debug)]
pub struct SelfHealingClient {
    addr: String,
    policy: RetryPolicy,
    conn: Option<Client>,
    next_batch: u64,
    rng: u64,
    retries: u64,
    reconnects: u64,
}

impl SelfHealingClient {
    /// Connects to `addr` and seeds the batch-id counter just past the
    /// server's applied high-water mark, so this client's ids never
    /// collide with batches a previous client already landed.
    pub fn connect(addr: &str, policy: RetryPolicy) -> Result<Self, KiffError> {
        let rng = policy.seed | 1;
        let mut client = Self {
            addr: addr.to_string(),
            policy,
            conn: None,
            next_batch: 1,
            rng,
            retries: 0,
            reconnects: 0,
        };
        let health = client.health()?;
        client.next_batch = health.batch_hwm + 1;
        Ok(client)
    }

    /// Retries attempted so far (observability for tests and benches).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Reconnects performed so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The id the next update batch will carry.
    pub fn next_batch(&self) -> u64 {
        self.next_batch
    }

    fn conn(&mut self) -> Result<&mut Client, KiffError> {
        if self.conn.is_none() {
            self.conn = Some(Client::connect(&self.addr)?);
            self.reconnects += 1;
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Runs `f` against a live connection, retrying retryable failures
    /// with backoff and reconnecting after transport errors. The final
    /// error is returned once attempts are exhausted.
    fn with_retry<T>(
        &mut self,
        mut f: impl FnMut(&mut Client) -> Result<T, KiffError>,
    ) -> Result<T, KiffError> {
        let mut retry = 0u32;
        loop {
            let result = match self.conn() {
                Ok(conn) => f(conn),
                Err(e) => Err(e),
            };
            let err = match result {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            // A Remote error means the server answered — the connection
            // is fine; anything else (io, protocol) means the stream
            // state is unknown, so redial.
            if !matches!(err, KiffError::Remote { .. }) {
                self.conn = None;
            }
            retry += 1;
            if !err.is_retryable() || retry >= self.policy.max_attempts {
                return Err(err);
            }
            self.retries += 1;
            std::thread::sleep(self.policy.delay(retry, &mut self.rng));
        }
    }

    /// Applies `updates` exactly once: the batch carries a fresh id, and
    /// a retry after a lost acknowledgement is deduped server-side. The
    /// counter only advances after success, so a batch that exhausts its
    /// retries can be re-submitted under the same id.
    pub fn update(&mut self, updates: &[Update]) -> Result<UpdateAck, KiffError> {
        let batch = self.next_batch;
        let ack = self.with_retry(|c| c.update_batch(updates, batch))?;
        self.next_batch = batch + 1;
        Ok(ack)
    }

    /// Liveness probe, with retry.
    pub fn ping(&mut self) -> Result<(), KiffError> {
        self.with_retry(Client::ping)
    }

    /// `user`'s neighbours, with retry.
    pub fn neighbors(&mut self, user: u32) -> Result<Vec<Neighbor>, KiffError> {
        self.with_retry(|c| c.neighbors(user))
    }

    /// Recommendations, with retry.
    pub fn recommend(&mut self, user: u32, top: usize) -> Result<Vec<(u32, f64)>, KiffError> {
        self.with_retry(|c| c.recommend(user, top))
    }

    /// Rating prediction, with retry.
    pub fn predict(&mut self, user: u32, item: u32) -> Result<Option<f64>, KiffError> {
        self.with_retry(|c| c.predict(user, item))
    }

    /// Daemon health, with retry.
    pub fn health(&mut self) -> Result<Health, KiffError> {
        self.with_retry(Client::health)
    }

    /// Engine statistics, with retry.
    pub fn stats(&mut self) -> Result<Value, KiffError> {
        self.with_retry(Client::stats)
    }

    /// Telemetry snapshot, with retry.
    pub fn metrics(&mut self) -> Result<Value, KiffError> {
        self.with_retry(Client::metrics)
    }

    /// Graceful shutdown — *not* retried: after a transport failure the
    /// daemon may already be stopping, and a redial would just hang on
    /// a dead listener.
    pub fn shutdown(&mut self) -> Result<(), KiffError> {
        self.conn()?.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_capped_and_deterministic() {
        let policy = RetryPolicy::default();
        let mut rng_a = policy.seed | 1;
        let mut rng_b = policy.seed | 1;
        let a: Vec<Duration> = (1..=7).map(|r| policy.delay(r, &mut rng_a)).collect();
        let b: Vec<Duration> = (1..=7).map(|r| policy.delay(r, &mut rng_b)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        // Jitter keeps every delay within [0.5, 1.0) of the exponential.
        for (i, d) in a.iter().enumerate() {
            let exp = policy
                .base_delay
                .saturating_mul(1u32 << i)
                .min(policy.max_delay);
            assert!(*d >= exp.mul_f64(0.5) && *d < exp, "retry {}: {d:?}", i + 1);
        }
        // The cap binds from retry 7 on (10ms * 2^6 = 640ms > 500ms).
        assert!(a[6] <= policy.max_delay);
    }
}
