//! Bench for Table VII: the two initialisation strategies (top-k from the
//! unpivoted RCS vs a random graph).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kiff_baselines::random_graph;
use kiff_bench::datasets::bench_dataset;
use kiff_core::initial_rcs_graph;
use kiff_similarity::WeightedCosine;

fn bench(c: &mut Criterion) {
    let ds = bench_dataset(7);
    let sim = WeightedCosine::fit(&ds);
    let _ = ds.item_profiles();
    let mut group = c.benchmark_group("table7");
    group.sample_size(15);
    group.bench_function("initial_rcs_graph", |b| {
        b.iter(|| black_box(initial_rcs_graph(&ds, &sim, 10, Some(2))))
    });
    group.bench_function("random_graph", |b| {
        b.iter(|| black_box(random_graph(&ds, &sim, 10, 42)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
