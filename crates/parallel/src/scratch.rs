//! A checkout pool of reusable per-worker scratch state.
//!
//! The hot loops of this workspace hand work to short-lived scoped
//! workers in `grain`-sized chunks ([`crate::parallel_for`] /
//! [`crate::parallel_fold`]). Scratch objects that amortise across work —
//! a scorer's dense preparation map, gather buffers — would be recreated
//! per chunk (or per `parallel_for` *call*, when a driver loop launches
//! one per iteration) if declared inside the worker closure, because the
//! closure is `Fn` and cannot own mutable state.
//!
//! [`ScratchPool`] fixes that: the driver owns the pool across the whole
//! run, workers [`ScratchPool::checkout`] an object at the top of each
//! chunk (one mutex pop, amortised over the chunk) and the RAII
//! [`ScratchGuard`] returns it on drop — so an object's internal
//! capacity keeps growing across chunks, closures *and* iterations. The
//! pool never holds more objects than the peak number of concurrent
//! workers.

use std::sync::Mutex;

/// A pool of reusable scratch objects, created on demand via `Default`
/// (or a custom factory, see [`ScratchPool::with_init`]).
///
/// ```
/// use kiff_parallel::{parallel_for, ScratchPool};
///
/// let pool: ScratchPool<Vec<usize>> = ScratchPool::new();
/// for _iteration in 0..3 {
///     parallel_for(4, 100, 16, |range| {
///         let mut buf = pool.checkout(); // capacity survives iterations
///         buf.clear();
///         buf.extend(range);
///     });
/// }
/// assert!(pool.pooled() >= 1);
/// ```
pub struct ScratchPool<T> {
    items: Mutex<Vec<T>>,
    init: Option<Box<dyn Fn() -> T + Send + Sync>>,
}

impl<T> std::fmt::Debug for ScratchPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchPool")
            .field("pooled", &self.pooled())
            .field("custom_init", &self.init.is_some())
            .finish()
    }
}

impl<T: Default> Default for ScratchPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Default> ScratchPool<T> {
    /// An empty pool; objects are default-created at first checkout.
    pub fn new() -> Self {
        Self {
            items: Mutex::new(Vec::new()),
            init: None,
        }
    }

    /// Borrows a scratch object: a previously returned one when
    /// available (warm capacity), a fresh one otherwise (from the
    /// [`ScratchPool::with_init`] factory when set, else
    /// `T::default()`). The guard returns it to the pool on drop.
    pub fn checkout(&self) -> ScratchGuard<'_, T> {
        let item = self
            .items
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_else(|| match &self.init {
                Some(init) => init(),
                None => T::default(),
            });
        ScratchGuard {
            pool: self,
            item: Some(item),
        }
    }
}

impl<T> ScratchPool<T> {
    /// An empty pool whose objects are created by `init` — for scratch
    /// state that needs construction context (e.g. scorer workspaces
    /// carrying telemetry handles).
    pub fn with_init(init: impl Fn() -> T + Send + Sync + 'static) -> Self {
        Self {
            items: Mutex::new(Vec::new()),
            init: Some(Box::new(init)),
        }
    }

    /// Number of idle objects currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.items.lock().expect("scratch pool poisoned").len()
    }
}

/// RAII handle to a checked-out scratch object; derefs to `T` and
/// returns it to the pool on drop.
#[derive(Debug)]
pub struct ScratchGuard<'a, T> {
    pool: &'a ScratchPool<T>,
    item: Option<T>,
}

impl<T> std::ops::Deref for ScratchGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.item.as_ref().expect("taken only on drop")
    }
}

impl<T> std::ops::DerefMut for ScratchGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.item.as_mut().expect("taken only on drop")
    }
}

impl<T> Drop for ScratchGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(item) = self.item.take() {
            if let Ok(mut items) = self.pool.items.lock() {
                items.push(item);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_returned_objects() {
        let pool: ScratchPool<Vec<u32>> = ScratchPool::new();
        {
            let mut a = pool.checkout();
            a.push(7);
            a.reserve(1000);
        }
        assert_eq!(pool.pooled(), 1);
        let b = pool.checkout();
        // Same object, same capacity; contents are the caller's business.
        assert!(b.capacity() >= 1000);
        assert_eq!(b.as_slice(), [7]);
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_objects() {
        let pool: ScratchPool<Vec<u32>> = ScratchPool::new();
        let a = pool.checkout();
        let mut b = pool.checkout();
        b.push(1);
        assert!(a.is_empty());
        drop(a);
        drop(b);
        assert_eq!(pool.pooled(), 2);
    }

    #[test]
    fn with_init_uses_the_factory() {
        let pool: ScratchPool<Vec<u32>> = ScratchPool::with_init(|| vec![42]);
        {
            let fresh = pool.checkout();
            assert_eq!(fresh.as_slice(), [42]);
        }
        // Returned objects are reused as-is, not re-initialised.
        let mut again = pool.checkout();
        assert_eq!(again.as_slice(), [42]);
        again.push(7);
        drop(again);
        assert_eq!(pool.checkout().as_slice(), [42, 7]);
    }

    #[test]
    fn pool_is_shareable_across_scoped_workers() {
        let pool: ScratchPool<Vec<usize>> = ScratchPool::new();
        crate::parallel_for(4, 1000, 16, |range| {
            let mut buf = pool.checkout();
            buf.clear();
            buf.extend(range);
            assert!(!buf.is_empty());
        });
        // At most one parked object per worker ever ran concurrently.
        let parked = pool.pooled();
        assert!((1..=4).contains(&parked), "parked = {parked}");
    }
}
