//! HyRec (Boutet et al., Middleware'14), as re-implemented by the paper.
//!
//! "Similar to NN-Descent, HyRec relies on node locality to iteratively
//! converge to an accurate KNN from a random graph. During each iteration,
//! HyRec considers the neighbors of neighbors of each user, as well as a
//! set of few random users … a parameter r is used to define the number of
//! random users considered in the candidate set. For a fair comparison …
//! we implement the same pivot mechanism as in NN-Descent and the early
//! termination of KIFF." (§IV-B)
//!
//! Defaults follow §IV-D: `r = 0` (random candidates cause random memory
//! accesses and barely improve recall).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kiff_dataset::Dataset;
use kiff_graph::{IterationObserver, IterationTrace, KnnGraph, NoObserver, SharedKnn};
use kiff_parallel::{effective_threads, parallel_for, Counter, ScratchPool, TimeAccumulator};
use kiff_similarity::{ScorerWorkspace, ScoringMode, Similarity, PREPARED_MIN_BATCH};

use crate::config::GreedyConfig;
use crate::init::random_init;
use crate::stats::GreedyStats;

/// A configured HyRec instance.
#[derive(Debug, Clone)]
pub struct HyRec {
    config: GreedyConfig,
    /// Number of random users added to each candidate set (`r`).
    random_candidates: usize,
}

impl HyRec {
    /// HyRec with the paper's default `r = 0`.
    pub fn new(config: GreedyConfig) -> Self {
        Self {
            config,
            random_candidates: 0,
        }
    }

    /// Sets `r`, the number of random users per candidate set.
    pub fn with_random_candidates(mut self, r: usize) -> Self {
        self.random_candidates = r;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &GreedyConfig {
        &self.config
    }

    /// Runs HyRec on `dataset` under `sim`.
    pub fn run<S: Similarity + ?Sized>(
        &self,
        dataset: &Dataset,
        sim: &S,
    ) -> (KnnGraph, GreedyStats) {
        self.run_observed(dataset, sim, &mut NoObserver)
    }

    /// Runs with a per-iteration observer (Fig. 8 traces).
    pub fn run_observed<S: Similarity + ?Sized>(
        &self,
        dataset: &Dataset,
        sim: &S,
        observer: &mut dyn IterationObserver,
    ) -> (KnnGraph, GreedyStats) {
        let total_start = Instant::now();
        let n = dataset.num_users();
        let k = self.config.k;
        let threads = effective_threads(self.config.threads);
        let shared = SharedKnn::new(n, k);
        let mut stats = GreedyStats::default();

        let init_start = Instant::now();
        let init_evals = random_init(dataset, sim, &shared, self.config.seed, self.config.scoring);
        stats.init_time = init_start.elapsed();

        let sim_evals = Counter::new();
        let candidate_time = TimeAccumulator::new();
        let similarity_time = TimeAccumulator::new();
        // Scorer-preparation arenas, reused across chunks and iterations.
        let workspaces: ScratchPool<ScorerWorkspace> = ScratchPool::new();
        let mut cumulative = init_evals;

        for iteration in 1..=self.config.max_iterations {
            let before = sim_evals.get();
            let cand_before = candidate_time.total();
            let simt_before = similarity_time.total();

            // Freeze the adjacency for this iteration (candidate selection
            // walks neighbours-of-neighbours on a consistent snapshot).
            let guard = candidate_time.start();
            let frozen: Vec<Vec<u32>> = (0..n as u32)
                .map(|u| {
                    let mut ids = shared.lock(u).ids();
                    ids.sort_unstable(); // binary-searched by the pivot below
                    ids
                })
                .collect();
            drop(guard);

            parallel_for(threads, n, 16, |range| {
                let mut candidates: Vec<u32> = Vec::new();
                let mut sims: Vec<f64> = Vec::new();
                let mut ws = workspaces.checkout();
                for u in range {
                    let uid = u as u32;
                    let _guard = candidate_time.start();
                    candidates.clear();
                    // Neighbours of neighbours, on the frozen snapshot.
                    for &v in &frozen[u] {
                        candidates.extend_from_slice(&frozen[v as usize]);
                    }
                    // r random users against local minima (§IV-B).
                    if self.random_candidates > 0 {
                        let mut rng = StdRng::seed_from_u64(
                            self.config
                                .seed
                                .wrapping_add((iteration as u64) << 32)
                                .wrapping_add(uid as u64),
                        );
                        for _ in 0..self.random_candidates {
                            candidates.push(rng.gen_range(0..n as u32));
                        }
                    }
                    candidates.sort_unstable();
                    candidates.dedup();
                    // Pivot: evaluate each (u, v) pair once per iteration;
                    // skip self and pairs already in u's neighbourhood
                    // (their similarity is known).
                    candidates.retain(|&v| v != uid && frozen[u].binary_search(&v).is_err());
                    drop(_guard);

                    if candidates.is_empty() {
                        continue;
                    }
                    // The pivot is the reference of its whole candidate
                    // set: prepared scoring preprocesses it once and
                    // streams the set.
                    let sim_guard = similarity_time.start();
                    match self.config.scoring {
                        ScoringMode::Prepared if candidates.len() >= PREPARED_MIN_BATCH => {
                            let mut scorer = sim.scorer(dataset, uid, &mut ws);
                            scorer.score_into(&candidates, &mut sims);
                        }
                        ScoringMode::Prepared | ScoringMode::Pairwise => {
                            sims.clear();
                            sims.extend(candidates.iter().map(|&v| sim.sim(dataset, uid, v)));
                        }
                    }
                    drop(sim_guard);
                    sim_evals.add(candidates.len() as u64);
                    for (&v, &s) in candidates.iter().zip(sims.iter()) {
                        shared.update(uid, v, s);
                        shared.update(v, uid, s);
                    }
                }
            });

            // Serial accounting: changes = edges that entered some heap
            // this iteration, diffed against the frozen snapshot. Counting
            // concurrent `update` returns instead would make termination
            // depend on offer interleaving (an offer can be accepted then
            // evicted in one schedule, rejected in another); the diff is
            // interleaving-independent, so parallel runs are bit-identical
            // to serial ones. Deliberate semantic shift (serial runs
            // too): β now reads *net* changes, so intra-iteration churn
            // no longer delays termination.
            let diff_guard = candidate_time.start();
            let mut iter_changes = 0u64;
            for u in 0..n as u32 {
                let heap = shared.lock(u);
                iter_changes += heap
                    .iter()
                    .filter(|e| frozen[u as usize].binary_search(&e.id).is_err())
                    .count() as u64;
            }
            drop(diff_guard);

            let iter_evals = sim_evals.get() - before;
            cumulative += iter_evals;
            let trace = IterationTrace {
                iteration,
                changes: iter_changes,
                sim_evals: iter_evals,
                cumulative_sim_evals: cumulative,
                candidate_time: candidate_time.total() - cand_before,
                similarity_time: similarity_time.total() - simt_before,
            };
            stats.per_iteration.push(trace);
            stats.iterations = iteration;
            observer.on_iteration(trace, &shared);

            // KIFF's early termination: changes per user below β.
            if (iter_changes as f64) / (n.max(1) as f64) < self.config.termination {
                break;
            }
        }

        stats.sim_evals = cumulative;
        stats.candidate_selection_time = candidate_time.total();
        stats.similarity_time = similarity_time.total();
        stats.total_time = total_start.elapsed();
        stats.finish(n);
        (shared.snapshot(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
    use kiff_graph::{exact_knn, recall};
    use kiff_similarity::WeightedCosine;

    #[test]
    fn converges_to_reasonable_recall() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("hy", 211));
        let sim = WeightedCosine::fit(&ds);
        let (graph, stats) = HyRec::new(GreedyConfig::new(10)).run(&ds, &sim);
        let exact = exact_knn(&ds, &sim, 10, None);
        let r = recall(&exact, &graph);
        assert!(r > 0.7, "recall = {r}");
        assert!(stats.iterations >= 2);
    }

    #[test]
    fn frozen_snapshot_keeps_sorted_ids() {
        // The binary_search-based pivot requires frozen lists sorted; this
        // is enforced by sorting in `ids()` order... verify indirectly by
        // running a couple of iterations without panicking and checking
        // output sanity.
        let ds = generate_bipartite(&BipartiteConfig::tiny("hs", 223));
        let sim = WeightedCosine::fit(&ds);
        let (graph, _) = HyRec::new(GreedyConfig::new(4)).run(&ds, &sim);
        for u in 0..ds.num_users() as u32 {
            assert!(graph.neighbors(u).len() <= 4);
        }
    }

    #[test]
    fn random_candidates_increase_evaluations() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("hr", 227));
        let sim = WeightedCosine::fit(&ds);
        let (_, plain) = HyRec::new(GreedyConfig::new(5)).run(&ds, &sim);
        let (_, extra) = HyRec::new(GreedyConfig::new(5))
            .with_random_candidates(5)
            .run(&ds, &sim);
        assert!(
            extra.sim_evals > plain.sim_evals,
            "extra {} !> plain {}",
            extra.sim_evals,
            plain.sim_evals
        );
    }

    #[test]
    fn random_candidates_do_not_hurt_recall() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("hq", 229));
        let sim = WeightedCosine::fit(&ds);
        let exact = exact_knn(&ds, &sim, 5, None);
        let (g0, _) = HyRec::new(GreedyConfig::new(5)).run(&ds, &sim);
        let (g5, _) = HyRec::new(GreedyConfig::new(5))
            .with_random_candidates(5)
            .run(&ds, &sim);
        let (r0, r5) = (recall(&exact, &g0), recall(&exact, &g5));
        // §IV-D: random nodes only *slightly* improve recall (~4%); they
        // must not degrade it noticeably.
        assert!(r5 + 0.05 >= r0, "r=0: {r0}, r=5: {r5}");
    }

    #[test]
    fn scoring_modes_build_identical_graphs() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("hp", 239));
        let sim = WeightedCosine::fit(&ds);
        let mut cfg = GreedyConfig::new(6);
        cfg.threads = Some(2); // parallel runs are deterministic sweeps too
        let (prepared, ps) =
            HyRec::new(cfg.clone().with_scoring(ScoringMode::Prepared)).run(&ds, &sim);
        let (pairwise, ws) = HyRec::new(cfg.with_scoring(ScoringMode::Pairwise)).run(&ds, &sim);
        assert_eq!(ps.sim_evals, ws.sim_evals);
        for u in 0..ds.num_users() as u32 {
            assert_eq!(prepared.neighbors(u), pairwise.neighbors(u), "user {u}");
        }
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        // Diff-based change counting makes the iteration count — and so
        // the whole run — independent of offer interleaving.
        let ds = generate_bipartite(&BipartiteConfig::tiny("hz", 241));
        let sim = WeightedCosine::fit(&ds);
        let run = |threads: usize| {
            let mut cfg = GreedyConfig::new(6);
            cfg.threads = Some(threads);
            HyRec::new(cfg).run(&ds, &sim)
        };
        let (serial, s_stats) = run(1);
        for threads in [2, 4] {
            let (parallel, p_stats) = run(threads);
            assert_eq!(s_stats.iterations, p_stats.iterations, "{threads} threads");
            assert_eq!(s_stats.sim_evals, p_stats.sim_evals, "{threads} threads");
            for u in 0..ds.num_users() as u32 {
                assert_eq!(
                    serial.neighbors(u),
                    parallel.neighbors(u),
                    "{threads} threads, user {u}"
                );
            }
        }
    }

    #[test]
    fn termination_respects_beta() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("ht", 233));
        let sim = WeightedCosine::fit(&ds);
        let mut strict_cfg = GreedyConfig::new(5);
        strict_cfg.termination = 0.0001;
        let mut loose_cfg = GreedyConfig::new(5);
        loose_cfg.termination = 2.0;
        let (_, strict) = HyRec::new(strict_cfg).run(&ds, &sim);
        let (_, loose) = HyRec::new(loose_cfg).run(&ds, &sim);
        assert!(loose.iterations <= strict.iterations);
    }
}
