//! Bench for Table VIII: sensitivity of each algorithm to k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use kiff_bench::datasets::small_bench_dataset;
use kiff_bench::runner::{run_kiff, run_nndescent, RunOptions};

fn bench(c: &mut Criterion) {
    let ds = small_bench_dataset(8);
    let mut group = c.benchmark_group("table8");
    group.sample_size(10);
    for k in [5usize, 10, 20] {
        let opts = RunOptions {
            k,
            threads: Some(2),
            seed: 3,
        };
        group.bench_with_input(BenchmarkId::new("kiff", k), &opts, |b, &opts| {
            b.iter(|| black_box(run_kiff(&ds, opts)))
        });
        group.bench_with_input(BenchmarkId::new("nndescent", k), &opts, |b, &opts| {
            b.iter(|| black_box(run_nndescent(&ds, opts)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
