//! NN-Descent (Dong, Moses, Li — WWW'11), as re-implemented by the paper.
//!
//! "Starting from a random graph, NN-Descent iteratively refines the
//! neighborhood of a user by considering at each iteration a candidate set
//! composed of the direct neighborhood of the current bidirectional
//! neighbors (both in-coming and out-going neighbors). To avoid repeated
//! similarity computations, NN-Descent uses a system of flags to only
//! consider new neighbors-of-neighbors during each iteration. … NN-Descent
//! also uses a pivot strategy … by iterating on both the in-coming and
//! out-going neighbors of the current pivot user." (§IV-B)
//!
//! The local join at pivot `u` evaluates `new × new` (each unordered pair
//! once) and `new × old`, updating both endpoints' heaps. Termination
//! follows the original publication: stop when the number of updates in an
//! iteration drops below `δ·n·k`.
//!
//! # Determinism under parallelism
//!
//! Heap contents after a join phase are permutation-invariant (the heap
//! keeps the top-k under the total order (sim, −id)), but two quantities
//! written *during* concurrent joins are not: the per-update change count
//! (an offer can be accepted-then-evicted in one interleaving and
//! rejected outright in another) and the `new` flags (an entry evicted
//! and re-inserted is re-flagged). Both are therefore derived serially
//! *after* each join phase from a membership diff against the
//! pre-iteration heaps — id-ordered admission plus diff-based accounting
//! make every run bit-identical regardless of thread count, which is what
//! lets the scoring-identity gates run parallel.
//!
//! Note the deliberate semantic shift, which applies to serial runs too:
//! the termination criterion now reads *net* changes — an offer accepted
//! and evicted within the same iteration no longer counts — so
//! churn-heavy datasets can terminate an iteration earlier than under
//! the original per-update counting (a stricter reading of "number of
//! updates", and the price of determinism).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use kiff_collections::FxHashSet;
use kiff_dataset::Dataset;
use kiff_graph::{IterationObserver, IterationTrace, KnnGraph, NoObserver, SharedKnn};
use kiff_parallel::{effective_threads, parallel_for, Counter, ScratchPool, TimeAccumulator};
use kiff_similarity::{ScorerWorkspace, ScoringMode, Similarity, PREPARED_MIN_BATCH};

use crate::config::GreedyConfig;
use crate::init::random_init;
use crate::stats::GreedyStats;

/// A configured NN-Descent instance.
#[derive(Debug, Clone)]
pub struct NnDescent {
    config: GreedyConfig,
    /// Sampling rate ρ: each side of the local join considers at most
    /// `ρ·k` new/reversed entries. `None` = no sampling, the paper's
    /// evaluation setting.
    sample_rate: Option<f64>,
}

impl NnDescent {
    /// NN-Descent without sampling (the paper's configuration).
    pub fn new(config: GreedyConfig) -> Self {
        Self {
            config,
            sample_rate: None,
        }
    }

    /// Enables sampling at rate `rho ∈ (0, 1]` (the original paper's
    /// speed-up knob; exposed for the ablation benches).
    pub fn with_sampling(mut self, rho: f64) -> Self {
        assert!(rho > 0.0 && rho <= 1.0, "sampling rate must be in (0, 1]");
        self.sample_rate = Some(rho);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &GreedyConfig {
        &self.config
    }

    /// Runs NN-Descent on `dataset` under `sim`.
    pub fn run<S: Similarity + ?Sized>(
        &self,
        dataset: &Dataset,
        sim: &S,
    ) -> (KnnGraph, GreedyStats) {
        self.run_observed(dataset, sim, &mut NoObserver)
    }

    /// Runs with a per-iteration observer (Fig. 8 traces).
    pub fn run_observed<S: Similarity + ?Sized>(
        &self,
        dataset: &Dataset,
        sim: &S,
        observer: &mut dyn IterationObserver,
    ) -> (KnnGraph, GreedyStats) {
        let total_start = Instant::now();
        let n = dataset.num_users();
        let k = self.config.k;
        let threads = effective_threads(self.config.threads);
        let shared = SharedKnn::new(n, k);
        let mut stats = GreedyStats::default();

        // Random initial k-degree graph, flagged new.
        let init_start = Instant::now();
        let init_evals = random_init(dataset, sim, &shared, self.config.seed, self.config.scoring);
        stats.init_time = init_start.elapsed();
        stats.sim_evals = init_evals;

        let sim_evals = Counter::new();
        let candidate_time = TimeAccumulator::new();
        let similarity_time = TimeAccumulator::new();
        // Scorer-preparation arenas, reused across chunks and iterations.
        let workspaces: ScratchPool<ScorerWorkspace> = ScratchPool::new();
        let sample_budget = self
            .sample_rate
            .map(|rho| ((rho * k as f64).ceil() as usize).max(1));
        let mut cumulative = init_evals;

        for iteration in 1..=self.config.max_iterations {
            let before = sim_evals.get();
            let cand_before = candidate_time.total();
            let simt_before = similarity_time.total();

            // Phase 1: per-user new/old extraction (flag handling).
            // Sequential — O(n·k) and deterministic. `before_sets` /
            // `keep_new` freeze the pre-join membership and the flags
            // surviving sampling, for the diff-based accounting below.
            let guard = candidate_time.start();
            let mut new_lists: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut old_lists: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut before_sets: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
            let mut keep_new: Vec<FxHashSet<u32>> = vec![FxHashSet::default(); n];
            let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(iteration as u64));
            for u in 0..n as u32 {
                let mut heap = shared.lock(u);
                let mut fresh = heap.new_ids();
                match sample_budget {
                    Some(budget) if fresh.len() > budget => {
                        fresh.shuffle(&mut rng);
                        fresh.truncate(budget);
                    }
                    _ => {}
                }
                for &id in &fresh {
                    heap.clear_new_flag(id);
                }
                before_sets[u as usize] = heap.ids().into_iter().collect();
                // Unsampled news keep their flag for a later iteration.
                keep_new[u as usize] = heap.new_ids().into_iter().collect();
                let news: FxHashSet<u32> = fresh.iter().copied().collect();
                old_lists[u as usize] = heap
                    .ids()
                    .into_iter()
                    .filter(|v| !news.contains(v))
                    .collect();
                new_lists[u as usize] = fresh;
            }

            // Phase 2: reversals ("in-coming neighbors").
            let mut rev_new: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut rev_old: Vec<Vec<u32>> = vec![Vec::new(); n];
            for u in 0..n as u32 {
                for &v in &new_lists[u as usize] {
                    rev_new[v as usize].push(u);
                }
                for &v in &old_lists[u as usize] {
                    rev_old[v as usize].push(u);
                }
            }
            drop(guard);

            // Phase 3: local joins at every pivot user.
            parallel_for(threads, n, 16, |range| {
                let mut news: Vec<u32> = Vec::new();
                let mut olds: Vec<u32> = Vec::new();
                let mut partners: Vec<u32> = Vec::new();
                let mut sims: Vec<f64> = Vec::new();
                let mut ws = workspaces.checkout();
                for u in range {
                    let _guard = candidate_time.start();
                    news.clear();
                    olds.clear();
                    news.extend_from_slice(&new_lists[u]);
                    let mut rev_sampled: Vec<u32> = rev_new[u].clone();
                    let mut rev_old_sampled: Vec<u32> = rev_old[u].clone();
                    if let Some(budget) = sample_budget {
                        let mut rng = StdRng::seed_from_u64(
                            self.config
                                .seed
                                .wrapping_add((iteration as u64) << 32)
                                .wrapping_add(u as u64),
                        );
                        if rev_sampled.len() > budget {
                            rev_sampled.shuffle(&mut rng);
                            rev_sampled.truncate(budget);
                        }
                        if rev_old_sampled.len() > budget {
                            rev_old_sampled.shuffle(&mut rng);
                            rev_old_sampled.truncate(budget);
                        }
                    }
                    news.extend(rev_sampled);
                    news.sort_unstable();
                    news.dedup();
                    olds.extend_from_slice(&old_lists[u]);
                    olds.extend(rev_old_sampled);
                    olds.sort_unstable();
                    olds.dedup();
                    // Keep the two sides disjoint so a pair is joined once.
                    olds.retain(|v| news.binary_search(v).is_err());
                    drop(_guard);

                    // new × new (unordered pairs) and new × old: `a` is
                    // the reference of its whole join row, so prepared
                    // scoring preprocesses it once and streams the row.
                    for (idx, &a) in news.iter().enumerate() {
                        partners.clear();
                        partners.extend_from_slice(&news[idx + 1..]);
                        partners.extend(olds.iter().copied().filter(|&b| b != a));
                        if partners.is_empty() {
                            continue;
                        }
                        let sim_guard = similarity_time.start();
                        match self.config.scoring {
                            ScoringMode::Prepared if partners.len() >= PREPARED_MIN_BATCH => {
                                let mut scorer = sim.scorer(dataset, a, &mut ws);
                                scorer.score_into(&partners, &mut sims);
                            }
                            ScoringMode::Prepared | ScoringMode::Pairwise => {
                                sims.clear();
                                sims.extend(partners.iter().map(|&b| sim.sim(dataset, a, b)));
                            }
                        }
                        drop(sim_guard);
                        sim_evals.add(partners.len() as u64);
                        for (&b, &s) in partners.iter().zip(sims.iter()) {
                            shared.update(a, b, s);
                            shared.update(b, a, s);
                        }
                    }
                }
            });

            // Serial accounting pass: count the edges that entered each
            // heap this iteration and retag the `new` flags from the
            // membership diff — interleaving-independent (see the module
            // docs), so parallel runs are bit-identical to serial ones.
            let diff_guard = candidate_time.start();
            let mut iter_changes = 0u64;
            for u in 0..n as u32 {
                let mut heap = shared.lock(u);
                let before_set = &before_sets[u as usize];
                let keep = &keep_new[u as usize];
                heap.retag_new(|id| {
                    if before_set.contains(&id) {
                        keep.contains(&id)
                    } else {
                        true
                    }
                });
                iter_changes += heap.iter().filter(|e| !before_set.contains(&e.id)).count() as u64;
            }
            drop(diff_guard);

            let iter_evals = sim_evals.get() - before;
            cumulative += iter_evals;
            let trace = IterationTrace {
                iteration,
                changes: iter_changes,
                sim_evals: iter_evals,
                cumulative_sim_evals: cumulative,
                candidate_time: candidate_time.total() - cand_before,
                similarity_time: similarity_time.total() - simt_before,
            };
            stats.per_iteration.push(trace);
            stats.iterations = iteration;
            observer.on_iteration(trace, &shared);

            // Original termination: c < δ·n·k.
            if (iter_changes as f64) < self.config.termination * n as f64 * k as f64 {
                break;
            }
        }

        stats.sim_evals = cumulative;
        stats.candidate_selection_time = candidate_time.total();
        stats.similarity_time = similarity_time.total();
        stats.total_time = total_start.elapsed();
        stats.finish(n);
        (shared.snapshot(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kiff_dataset::generators::bipartite::{generate_bipartite, BipartiteConfig};
    use kiff_graph::{exact_knn, recall};
    use kiff_similarity::WeightedCosine;

    #[test]
    fn converges_to_high_recall() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("nnd", 101));
        let sim = WeightedCosine::fit(&ds);
        let (graph, stats) = NnDescent::new(GreedyConfig::new(10)).run(&ds, &sim);
        let exact = exact_knn(&ds, &sim, 10, None);
        let r = recall(&exact, &graph);
        assert!(r > 0.85, "recall = {r}");
        assert!(stats.iterations >= 2);
        assert!(stats.sim_evals > 0);
        assert!(stats.scan_rate > 0.0);
    }

    #[test]
    fn sampling_reduces_evaluations() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("nds", 103));
        let sim = WeightedCosine::fit(&ds);
        let (_, full) = NnDescent::new(GreedyConfig::new(8)).run(&ds, &sim);
        let (_, sampled) = NnDescent::new(GreedyConfig::new(8))
            .with_sampling(0.5)
            .run(&ds, &sim);
        assert!(
            sampled.sim_evals < full.sim_evals,
            "sampled {} !< full {}",
            sampled.sim_evals,
            full.sim_evals
        );
    }

    #[test]
    fn traces_accumulate() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("ndt", 107));
        let sim = WeightedCosine::fit(&ds);
        let (_, stats) = NnDescent::new(GreedyConfig::new(5)).run(&ds, &sim);
        let mut cum =
            stats.sim_evals - stats.per_iteration.iter().map(|t| t.sim_evals).sum::<u64>();
        for t in &stats.per_iteration {
            cum += t.sim_evals;
            assert_eq!(t.cumulative_sim_evals, cum);
        }
        assert_eq!(cum, stats.sim_evals);
    }

    #[test]
    fn first_iterations_make_most_changes() {
        // The three-step convergence of §V-A3: early iterations dominated
        // by updates.
        let ds = generate_bipartite(&BipartiteConfig::tiny("ndc", 109));
        let sim = WeightedCosine::fit(&ds);
        let (_, stats) = NnDescent::new(GreedyConfig::new(8)).run(&ds, &sim);
        if stats.per_iteration.len() >= 2 {
            let first = stats.per_iteration[0].changes;
            let last = stats.per_iteration.last().unwrap().changes;
            assert!(first > last, "first={first} last={last}");
        }
    }

    #[test]
    fn scoring_modes_build_identical_graphs() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("ndp", 127));
        let sim = WeightedCosine::fit(&ds);
        let mut cfg = GreedyConfig::new(8);
        cfg.threads = Some(2); // parallel runs are deterministic sweeps too
        let (prepared, ps) =
            NnDescent::new(cfg.clone().with_scoring(ScoringMode::Prepared)).run(&ds, &sim);
        let (pairwise, ws) = NnDescent::new(cfg.with_scoring(ScoringMode::Pairwise)).run(&ds, &sim);
        assert_eq!(ps.sim_evals, ws.sim_evals);
        for u in 0..ds.num_users() as u32 {
            assert_eq!(prepared.neighbors(u), pairwise.neighbors(u), "user {u}");
        }
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        // The diff-based change counting and post-join flag retagging
        // make the whole run interleaving-independent: any thread count
        // produces the serial graph, iteration count and eval count.
        let ds = generate_bipartite(&BipartiteConfig::tiny("ndq", 131));
        let sim = WeightedCosine::fit(&ds);
        let run = |threads: usize| {
            let mut cfg = GreedyConfig::new(8);
            cfg.threads = Some(threads);
            NnDescent::new(cfg).run(&ds, &sim)
        };
        let (serial, s_stats) = run(1);
        for threads in [2, 4] {
            let (parallel, p_stats) = run(threads);
            assert_eq!(s_stats.iterations, p_stats.iterations, "{threads} threads");
            assert_eq!(s_stats.sim_evals, p_stats.sim_evals, "{threads} threads");
            for u in 0..ds.num_users() as u32 {
                assert_eq!(
                    serial.neighbors(u),
                    parallel.neighbors(u),
                    "{threads} threads, user {u}"
                );
            }
        }
    }

    #[test]
    fn graphs_have_no_self_loops_or_duplicates() {
        let ds = generate_bipartite(&BipartiteConfig::tiny("ndd", 113));
        let sim = WeightedCosine::fit(&ds);
        let (graph, _) = NnDescent::new(GreedyConfig::new(6)).run(&ds, &sim);
        for u in 0..ds.num_users() as u32 {
            let ids: Vec<u32> = graph.neighbors(u).iter().map(|x| x.id).collect();
            assert!(!ids.contains(&u));
            let mut d = ids.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), ids.len());
        }
    }
}
