//! Single-funnel human-readable reporting for `kiff update`.
//!
//! Every line `kiff update` prints passes through [`UpdateReport`]: the
//! command accumulates typed sections while it works and flushes the
//! whole report with one [`UpdateReport::write_to`] call at the end.
//! Because nothing is written to the stream mid-replay, the
//! human-readable output can never interleave with a `--metrics-out`
//! export (which goes to its own file via a separate write).

use std::io::{self, Write};
use std::path::Path;
use std::time::Duration;

use kiff::online::UpdateStats;
use kiff::telemetry::MetricsFormat;

use crate::args::PartitionerChoice;

/// Accumulates the `kiff update` report; see the module docs.
#[derive(Debug, Default)]
pub struct UpdateReport {
    lines: Vec<String>,
}

impl UpdateReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// The base dataset the initial graph is built from.
    pub fn base(&mut self, users: usize, items: usize, ratings: usize) {
        self.lines.push(format!(
            "base    : {users} users, {items} items, {ratings} ratings"
        ));
    }

    /// The joined update stream.
    pub fn stream(&mut self, updates: usize, new_users: usize, new_items: usize) {
        self.lines.push(format!(
            "stream  : {updates} updates ({new_users} new users, {new_items} new items)"
        ));
    }

    /// The sharded engine's layout (omitted for the single engine).
    pub fn shards(
        &mut self,
        num: usize,
        partitioner: PartitionerChoice,
        sizes: &[usize],
        rebalance: Option<f64>,
    ) {
        self.lines.push(format!(
            "shards  : {num} ({partitioner:?} partitioner, sizes {sizes:?}{})",
            match rebalance {
                Some(r) => format!(", rebalance at ratio {r}"),
                None => String::new(),
            }
        ));
    }

    /// Wall time of the initial graph construction.
    pub fn initial_build(&mut self, elapsed: Duration) {
        self.lines.push(format!("initial build: {elapsed:?}"));
    }

    /// The replay summary: throughput plus per-update work figures.
    pub fn replay(&mut self, life: &UpdateStats, elapsed: Duration, batch: usize) {
        self.lines.push(format!(
            "replayed {} updates in {elapsed:.1?} ({:.0} updates/s, batch {batch})",
            life.updates,
            life.updates as f64 / elapsed.as_secs_f64().max(1e-9)
        ));
        self.lines.push(format!(
            "work/update: {:.1} sim evals, {:.2} repaired edges, {:.2} users repaired",
            life.sim_evals_per_update(),
            life.edits_per_update(),
            life.repaired_users as f64 / life.updates.max(1) as f64
        ));
    }

    /// Cross-shard coordination cost (sharded engine only).
    pub fn cross_shard(&mut self, messages: u64, migrations: u64, sizes: &[usize]) {
        self.lines.push(format!(
            "cross-shard: {messages} messages, {migrations} migrations (final sizes {sizes:?})"
        ));
    }

    /// The rebuild-from-scratch comparison; `per_update` is the replay's
    /// mean similarity evaluations per update.
    pub fn rebuild(&mut self, sim_evals: u64, elapsed: Duration, recall: f64, per_update: f64) {
        self.lines.push(format!(
            "full rebuild: {sim_evals} sim evals in {elapsed:.1?}"
        ));
        self.lines.push(format!("recall vs rebuild: {recall:.4}"));
        if per_update > 0.0 {
            self.lines.push(format!(
                "per-update work is {:.0}x below one rebuild",
                sim_evals as f64 / per_update
            ));
        }
    }

    /// Notes where the telemetry snapshot went (`--metrics-out`).
    pub fn metrics_written(&mut self, path: &Path, format: MetricsFormat, instruments: usize) {
        self.lines.push(format!(
            "telemetry: {instruments} instruments -> {} ({})",
            path.display(),
            format.name()
        ));
    }

    /// Flushes the whole report with one write.
    pub fn write_to(&self, out: &mut dyn Write) -> io::Result<()> {
        let mut text = String::with_capacity(self.lines.iter().map(|l| l.len() + 1).sum());
        for line in &self.lines {
            text.push_str(line);
            text.push('\n');
        }
        out.write_all(text.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_render_in_insertion_order() {
        let mut report = UpdateReport::new();
        report.base(4, 4, 8);
        report.stream(3, 1, 0);
        report.shards(2, PartitionerChoice::Community, &[2, 2], Some(2.0));
        report.initial_build(Duration::from_millis(5));
        let life = UpdateStats {
            updates: 3,
            sim_evals: 30,
            repaired_users: 6,
            ..Default::default()
        };
        report.replay(&life, Duration::from_millis(10), 2);
        report.cross_shard(7, 1, &[3, 2]);
        report.rebuild(100, Duration::from_millis(8), 0.95, 10.0);
        report.metrics_written(Path::new("m.json"), MetricsFormat::Json, 12);
        let mut out = Vec::new();
        report.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let expect_in_order = [
            "base    : 4 users, 4 items, 8 ratings",
            "stream  : 3 updates (1 new users, 0 new items)",
            "shards  : 2 (Community partitioner, sizes [2, 2], rebalance at ratio 2)",
            "initial build:",
            "replayed 3 updates",
            "work/update: 10.0 sim evals",
            "cross-shard: 7 messages, 1 migrations (final sizes [3, 2])",
            "full rebuild: 100 sim evals",
            "recall vs rebuild: 0.9500",
            "per-update work is 10x below one rebuild",
            "telemetry: 12 instruments -> m.json (json)",
        ];
        let mut cursor = 0;
        for needle in expect_in_order {
            let at = text[cursor..]
                .find(needle)
                .unwrap_or_else(|| panic!("missing '{needle}' after byte {cursor}:\n{text}"));
            cursor += at + needle.len();
        }
    }

    #[test]
    fn rebuild_without_update_work_omits_the_ratio() {
        let mut report = UpdateReport::new();
        report.rebuild(100, Duration::from_millis(1), 1.0, 0.0);
        let mut out = Vec::new();
        report.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("below one rebuild"), "{text}");
    }
}
