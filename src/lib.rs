#![warn(missing_docs)]

//! # KIFF — K-nearest-neighbour graphs, Impressively Fast and eFficient
//!
//! A Rust reproduction of *“Being prepared in a sparse world: the case of
//! KNN graph construction”* (Boutet, Kermarrec, Mittal, Taïani — ICDE 2016).
//!
//! KIFF constructs an approximate K-Nearest-Neighbour graph over the *user*
//! side of a sparse user–item bipartite dataset. It first inverts the
//! bipartite graph into item profiles and pre-computes, per user, a **Ranked
//! Candidate Set** — every co-rater ordered by the number of shared items —
//! then runs a greedy refinement that only ever evaluates the real
//! similarity metric on those candidates. On sparse datasets this both
//! converges faster and reaches a higher recall than greedy approaches that
//! start from a random graph (NN-Descent, HyRec), which are also provided
//! here as baselines.
//!
//! ## Quick start
//!
//! ```
//! use kiff::prelude::*;
//!
//! // The toy dataset of the paper's Figure 2: users rate items.
//! let mut builder = DatasetBuilder::new("toy", 4, 4);
//! builder.add_rating(0, 0, 1.0); // Alice likes book
//! builder.add_rating(0, 1, 1.0); // Alice likes coffee
//! builder.add_rating(1, 1, 1.0); // Bob likes coffee
//! builder.add_rating(1, 2, 1.0); // Bob likes cheese
//! builder.add_rating(2, 3, 1.0); // Carl likes shopping
//! builder.add_rating(3, 3, 1.0); // Dave likes shopping
//! let dataset = builder.build();
//!
//! // Build the 1-NN graph with KIFF under cosine similarity.
//! let graph = KnnGraphBuilder::new(1)
//!     .threads(1)
//!     .build(&dataset);
//!
//! // Alice's nearest neighbour is Bob (they share coffee).
//! assert_eq!(graph.neighbors(0)[0].id, 1);
//! // Carl and Dave are each other's nearest neighbours.
//! assert_eq!(graph.neighbors(2)[0].id, 3);
//! assert_eq!(graph.neighbors(3)[0].id, 2);
//! ```
//!
//! ## Workspace map
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`kiff_core`] | the KIFF algorithm (counting + refinement phases) |
//! | [`kiff_baselines`] | NN-Descent, HyRec, L2Knng, LSH |
//! | [`kiff_dataset`] | sparse bipartite datasets, loaders, generators |
//! | [`kiff_similarity`] | cosine / Jaccard / Adamic-Adar metrics |
//! | [`kiff_graph`] | KNN graph structures, exact KNN, recall |
//! | [`kiff_apps`] | recommendation, classification, similarity search |
//! | [`kiff_online`] | incremental maintenance under streaming updates |
//! | [`kiff_eval`] | timers, scan rate, CCDF, Spearman, tables |
//! | [`kiff_telemetry`] | counters, gauges, latency histograms, exporters |
//! | [`kiff_serve`] | query daemon: wire protocol, WAL, snapshots, recovery |
//! | [`kiff_collections`] / [`kiff_parallel`] | substrate |

pub use kiff_apps as apps;
pub use kiff_baselines as baselines;
pub use kiff_collections as collections;
pub use kiff_core as core;
pub use kiff_dataset as dataset;
pub use kiff_eval as eval;
pub use kiff_graph as graph;
pub use kiff_online as online;
pub use kiff_parallel as parallel;
pub use kiff_serve as serve;
pub use kiff_similarity as similarity;
pub use kiff_telemetry as telemetry;

pub mod builder;

pub use builder::{Algorithm, KnnGraphBuilder, Metric};

/// Convenience re-exports covering the common workflow: build or load a
/// dataset, pick a metric, construct a graph, evaluate it.
pub mod prelude {
    pub use crate::builder::KnnGraphBuilder;
    pub use kiff_apps::{GraphSearcher, KnnClassifier, ProfileMetric, QueryProfile, Recommender};
    pub use kiff_baselines::{
        hyrec::HyRec, nndescent::NnDescent, GreedyConfig, L2Knng, L2KnngConfig, Lsh, LshConfig,
        LshFamily,
    };
    pub use kiff_core::{Kiff, KiffConfig, KiffError};
    pub use kiff_dataset::{Dataset, DatasetBuilder, DeltaDataset};
    pub use kiff_graph::{exact_knn, recall, KnnGraph, Neighbor};
    pub use kiff_online::{
        KnnEngine, OnlineConfig, OnlineKnn, ShardConfig, ShardedOnlineKnn, Update,
    };
    pub use kiff_serve::{Client, EngineHost, Server, StoreConfig};
    pub use kiff_similarity::{
        AdamicAdar, BinaryCosine, CommonItems, Dice, Jaccard, Similarity, WeightedCosine,
        WeightedJaccard,
    };
    pub use kiff_telemetry::{MetricsFormat, Registry, TelemetrySnapshot};
}
