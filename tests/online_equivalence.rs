//! Online-vs-batch equivalence: streaming a dataset's ratings through
//! the `kiff-online` engine must land within a small tolerance of a
//! from-scratch KIFF rebuild — at a small fraction of the rebuild's
//! similarity evaluations.

use proptest::prelude::*;

use kiff::core::{Kiff, KiffConfig};
use kiff::dataset::generators::planted::{generate_planted, PlantedConfig};
use kiff::dataset::{Dataset, DatasetBuilder};
use kiff::graph::{exact_knn, recall};
use kiff::online::{OnlineConfig, OnlineKnn, Update};
use kiff::similarity::WeightedCosine;

/// Splits `full` into a base dataset and a held-out update stream: every
/// `holdout_every`-th rating (by iteration order) streams in later.
fn split(full: &Dataset, holdout_every: usize) -> (Dataset, Vec<(u32, u32, f32)>) {
    let mut builder = DatasetBuilder::new("base", full.num_users(), full.num_items());
    let mut held = Vec::new();
    for (pos, (u, i, r)) in full.iter_ratings().enumerate() {
        if pos % holdout_every == 0 {
            held.push((u, i, r));
        } else {
            builder.add_rating(u, i, r);
        }
    }
    (builder.build(), held)
}

/// Runs the stream scenario and returns
/// `(online_recall, rebuild_recall, online_evals_per_update, rebuild_evals)`.
fn stream_scenario(full: &Dataset, k: usize, one_by_one: bool) -> (f64, f64, f64, u64) {
    let (base, held) = split(full, 10);
    assert!(!held.is_empty());

    let mut engine = OnlineKnn::new(&base, OnlineConfig::new(k));
    let updates = held
        .iter()
        .map(|&(user, item, rating)| Update::AddRating { user, item, rating });
    if one_by_one {
        for update in updates {
            engine.apply(update);
        }
    } else {
        engine.apply_batch(updates);
    }

    let final_dataset = engine.data().to_dataset();
    assert_eq!(final_dataset.num_ratings(), full.num_ratings());

    let sim = WeightedCosine::fit(&final_dataset);
    let rebuild = Kiff::new(KiffConfig::new(k)).run(&final_dataset, &sim);
    let exact = exact_knn(&final_dataset, &sim, k, Some(1));
    let online_recall = recall(&exact, &engine.graph());
    let rebuild_recall = recall(&exact, &rebuild.graph);
    let life = engine.lifetime_stats();
    (
        online_recall,
        rebuild_recall,
        life.sim_evals_per_update(),
        rebuild.stats.sim_evals,
    )
}

fn planted(seed: u64, affinity: f64) -> Dataset {
    // Large enough that the 10x work criterion is meaningful: per-update
    // repair cost has a floor (heap + reverse + prefix re-scores) that
    // does not shrink with the dataset, while rebuild cost grows with it.
    generate_planted(&PlantedConfig {
        num_users: 400,
        num_items: 300,
        communities: 4,
        ratings_per_user: 12,
        affinity,
        ..PlantedConfig::tiny("equiv", seed)
    })
    .0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Streaming one rating at a time reaches ≥ 0.95× the recall of a
    /// full rebuild on the same final dataset, with per-update similarity
    /// evaluations at least 10× below one rebuild's.
    #[test]
    fn one_by_one_stream_matches_rebuild(seed in 0u64..1000, k in 3usize..7) {
        let full = planted(seed, 0.85);
        let (online, rebuild, per_update, rebuild_evals) =
            stream_scenario(&full, k, true);
        prop_assert!(
            online >= 0.95 * rebuild,
            "online recall {online:.4} < 0.95 x rebuild recall {rebuild:.4}"
        );
        prop_assert!(
            per_update * 10.0 <= rebuild_evals as f64,
            "per-update work {per_update:.1} not 10x below rebuild {rebuild_evals}"
        );
    }

    /// The amortised batch path meets the same bar.
    #[test]
    fn batched_stream_matches_rebuild(seed in 0u64..1000) {
        let full = planted(seed, 0.8);
        let (online, rebuild, _, _) = stream_scenario(&full, 5, false);
        prop_assert!(
            online >= 0.95 * rebuild,
            "batched recall {online:.4} < 0.95 x rebuild recall {rebuild:.4}"
        );
    }

    /// Deletions repair too: removing a slice of ratings from a live
    /// engine converges to the rebuild of the shrunken dataset.
    #[test]
    fn removals_match_rebuild(seed in 0u64..1000) {
        let k = 5;
        let full = planted(seed, 0.85);
        let mut engine = OnlineKnn::new(&full, OnlineConfig::new(k));
        // Remove every 12th rating.
        let victims: Vec<(u32, u32)> = full
            .iter_ratings()
            .enumerate()
            .filter(|(pos, _)| pos % 12 == 0)
            .map(|(_, (u, i, _))| (u, i))
            .collect();
        for (user, item) in victims {
            engine.apply(Update::RemoveRating { user, item });
        }
        let final_dataset = engine.data().to_dataset();
        let sim = WeightedCosine::fit(&final_dataset);
        let rebuild = Kiff::new(KiffConfig::new(k)).run(&final_dataset, &sim);
        let exact = exact_knn(&final_dataset, &sim, k, Some(1));
        let online = recall(&exact, &engine.graph());
        let batch = recall(&exact, &rebuild.graph);
        prop_assert!(
            online >= 0.95 * batch,
            "post-removal recall {online:.4} < 0.95 x rebuild {batch:.4}"
        );
    }
}
