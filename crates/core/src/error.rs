//! The unified error surface of the query and persistence paths.
//!
//! PRs 1–6 grew the engine behind `Option`s and panics: `neighbors`
//! indexes out of bounds on an unknown user, `predict_rating` returns
//! `None` for three distinct reasons, and graph loading has its own
//! one-off error enum. A serving daemon cannot panic on a bad request,
//! so the query path, the wire handlers, and snapshot/WAL recovery all
//! report through one [`KiffError`] — and the CLI maps its variants to
//! stable process exit codes.

use std::fmt;

/// Errors surfaced by the engine query path, the wire protocol, and the
/// persistence layer.
#[derive(Debug)]
pub enum KiffError {
    /// A user id at or beyond the engine's user count.
    UnknownUser {
        /// The offending user id.
        user: u32,
        /// Number of users the engine currently tracks.
        num_users: usize,
    },
    /// An item id the dataset has never seen.
    UnknownItem {
        /// The offending item id.
        item: u32,
        /// Number of items the dataset currently tracks.
        num_items: usize,
    },
    /// The user exists but has no ratings, so profile-based operations
    /// (recommendation, prediction, similarity) are undefined.
    EmptyProfile {
        /// The profile-less user.
        user: u32,
    },
    /// A search query carried no items.
    EmptyQuery,
    /// An underlying I/O failure (WAL append, snapshot write, socket).
    Io(std::io::Error),
    /// Persisted state failed validation: bad magic, unsupported
    /// version, CRC mismatch, or internally inconsistent sections.
    Corrupt {
        /// Which artifact is corrupt (e.g. `"snapshot"`, `"wal record"`).
        what: String,
        /// Human-readable detail of the failed check.
        detail: String,
    },
    /// Two components that must agree disagree on a dimension — e.g. a
    /// KNN graph paired with a dataset built over a different number of
    /// users.
    Mismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// A malformed or unsupported wire-protocol request.
    Protocol(String),
    /// The daemon is in read-only degraded mode (its WAL is failing):
    /// queries keep serving, but the named write operation was refused.
    /// Retryable — a background task keeps probing the WAL and flips
    /// the daemon back to healthy once fsync succeeds again.
    Unavailable {
        /// The refused operation (e.g. `"update"`, `"snapshot"`).
        op: String,
        /// Why the daemon is degraded (the original WAL failure).
        detail: String,
    },
    /// The daemon shed this request because its bounded in-flight limit
    /// was already saturated. Retryable after backoff.
    Overloaded {
        /// In-flight requests at the moment of shedding.
        inflight: usize,
        /// The configured in-flight limit.
        limit: usize,
    },
    /// A write was sent to a replica. Replicas serve reads but refuse
    /// mutations; the carried leader hint (the primary's client
    /// address, when the replica knows it) lets a failover-aware client
    /// re-route instead of blindly retrying the same endpoint.
    NotPrimary {
        /// Client address of the current primary, when known.
        leader: Option<String>,
    },
    /// An error reported by a remote `kiff-serve` daemon, carrying the
    /// wire `kind` tag of the server-side variant and the failing op so
    /// callers can branch on `unavailable` vs `overloaded` vs `corrupt`.
    Remote {
        /// The server-side [`KiffError::kind`] tag.
        kind: String,
        /// The wire op that failed (e.g. `"update"`), when known.
        op: String,
        /// The server-side error message.
        message: String,
    },
}

impl KiffError {
    /// Shorthand for a [`KiffError::Corrupt`] with owned strings.
    pub fn corrupt(what: impl Into<String>, detail: impl Into<String>) -> Self {
        KiffError::Corrupt {
            what: what.into(),
            detail: detail.into(),
        }
    }

    /// A short machine-readable tag for the variant, used as the
    /// `error.kind` field of wire-protocol error responses.
    pub fn kind(&self) -> &'static str {
        match self {
            KiffError::UnknownUser { .. } => "unknown_user",
            KiffError::UnknownItem { .. } => "unknown_item",
            KiffError::EmptyProfile { .. } => "empty_profile",
            KiffError::EmptyQuery => "empty_query",
            KiffError::Io(_) => "io",
            KiffError::Corrupt { .. } => "corrupt",
            KiffError::Mismatch { .. } => "mismatch",
            KiffError::Protocol(_) => "protocol",
            KiffError::Unavailable { .. } => "unavailable",
            KiffError::Overloaded { .. } => "overloaded",
            KiffError::NotPrimary { .. } => "not_primary",
            KiffError::Remote { .. } => "remote",
        }
    }

    /// Whether retrying the same operation (after backoff, possibly on
    /// a fresh connection) can plausibly succeed.
    ///
    /// `Io` covers torn connections and transient disk errors;
    /// `Unavailable` clears when the daemon's WAL recovers;
    /// `Overloaded` clears when in-flight load drains; `NotPrimary`
    /// clears by retrying against the hinted leader (the failover
    /// client re-routes rather than re-sending blindly). A `Remote`
    /// error is retryable exactly when its server-side class is — so
    /// the self-healing client applies one policy on both sides of the
    /// wire. Everything else (bad request, corruption, protocol
    /// violation) would fail identically on retry.
    pub fn is_retryable(&self) -> bool {
        match self {
            KiffError::Io(_)
            | KiffError::Unavailable { .. }
            | KiffError::Overloaded { .. }
            | KiffError::NotPrimary { .. } => true,
            KiffError::Remote { kind, .. } => {
                matches!(
                    kind.as_str(),
                    "io" | "unavailable" | "overloaded" | "not_primary"
                )
            }
            _ => false,
        }
    }

    /// The process exit code the CLI uses for this variant.
    ///
    /// `1` stays reserved for usage/argument errors; the query and
    /// persistence failures get stable distinct codes so scripts can
    /// branch on them:
    ///
    /// | code | variants |
    /// |------|----------|
    /// | 2    | [`UnknownUser`](KiffError::UnknownUser), [`UnknownItem`](KiffError::UnknownItem) |
    /// | 3    | [`EmptyProfile`](KiffError::EmptyProfile), [`EmptyQuery`](KiffError::EmptyQuery) |
    /// | 4    | [`Io`](KiffError::Io) |
    /// | 5    | [`Corrupt`](KiffError::Corrupt), [`Mismatch`](KiffError::Mismatch) |
    /// | 6    | [`Protocol`](KiffError::Protocol) |
    /// | 7    | [`Remote`](KiffError::Remote) |
    /// | 8    | [`Unavailable`](KiffError::Unavailable) |
    /// | 9    | [`Overloaded`](KiffError::Overloaded) |
    /// | 10   | [`NotPrimary`](KiffError::NotPrimary) |
    pub fn exit_code(&self) -> u8 {
        match self {
            KiffError::UnknownUser { .. } | KiffError::UnknownItem { .. } => 2,
            KiffError::EmptyProfile { .. } | KiffError::EmptyQuery => 3,
            KiffError::Io(_) => 4,
            KiffError::Corrupt { .. } | KiffError::Mismatch { .. } => 5,
            KiffError::Protocol(_) => 6,
            KiffError::Remote { .. } => 7,
            KiffError::Unavailable { .. } => 8,
            KiffError::Overloaded { .. } => 9,
            KiffError::NotPrimary { .. } => 10,
        }
    }
}

impl fmt::Display for KiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KiffError::UnknownUser { user, num_users } => {
                write!(f, "unknown user {user} (engine has {num_users} users)")
            }
            KiffError::UnknownItem { item, num_items } => {
                write!(f, "unknown item {item} (dataset has {num_items} items)")
            }
            KiffError::EmptyProfile { user } => {
                write!(f, "user {user} has an empty profile")
            }
            KiffError::EmptyQuery => write!(f, "query profile is empty"),
            KiffError::Io(e) => write!(f, "i/o error: {e}"),
            KiffError::Corrupt { what, detail } => {
                write!(f, "corrupt {what}: {detail}")
            }
            KiffError::Mismatch { detail } => write!(f, "mismatch: {detail}"),
            KiffError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            KiffError::Unavailable { op, detail } => {
                write!(f, "{op} unavailable (daemon degraded): {detail}")
            }
            KiffError::Overloaded { inflight, limit } => {
                write!(
                    f,
                    "overloaded: {inflight} requests in flight (limit {limit})"
                )
            }
            KiffError::NotPrimary { leader } => match leader {
                Some(addr) => write!(f, "not primary: writes go to the leader at {addr}"),
                None => write!(f, "not primary: leader unknown, rediscover via health"),
            },
            KiffError::Remote { kind, op, message } => {
                if op.is_empty() {
                    write!(f, "server error ({kind}): {message}")
                } else {
                    write!(f, "server error ({kind}) on {op}: {message}")
                }
            }
        }
    }
}

impl std::error::Error for KiffError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KiffError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for KiffError {
    fn from(e: std::io::Error) -> Self {
        // Codecs in kiff-dataset/kiff-graph report corruption as
        // `InvalidData` because they sit below this crate; lift those
        // back into the structured variant here.
        if e.kind() == std::io::ErrorKind::InvalidData {
            KiffError::Corrupt {
                what: "stream".into(),
                detail: e.to_string(),
            }
        } else {
            KiffError::Io(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable_and_distinct_per_class() {
        let unknown = KiffError::UnknownUser {
            user: 7,
            num_users: 3,
        };
        assert_eq!(unknown.exit_code(), 2);
        assert_eq!(KiffError::EmptyQuery.exit_code(), 3);
        assert_eq!(
            KiffError::Io(std::io::Error::other("disk on fire")).exit_code(),
            4
        );
        assert_eq!(KiffError::corrupt("snapshot", "bad magic").exit_code(), 5);
        assert_eq!(KiffError::Protocol("nope".into()).exit_code(), 6);
        let unavailable = KiffError::Unavailable {
            op: "update".into(),
            detail: "wal fsync failing".into(),
        };
        assert_eq!(unavailable.exit_code(), 8);
        assert_eq!(unavailable.kind(), "unavailable");
        let overloaded = KiffError::Overloaded {
            inflight: 64,
            limit: 64,
        };
        assert_eq!(overloaded.exit_code(), 9);
        assert_eq!(overloaded.kind(), "overloaded");
        let not_primary = KiffError::NotPrimary {
            leader: Some("127.0.0.1:7407".into()),
        };
        assert_eq!(not_primary.exit_code(), 10);
        assert_eq!(not_primary.kind(), "not_primary");
        assert!(not_primary.to_string().contains("127.0.0.1:7407"));
    }

    #[test]
    fn retryability_tracks_the_error_class_across_the_wire() {
        assert!(KiffError::Io(std::io::Error::other("torn")).is_retryable());
        assert!(KiffError::Unavailable {
            op: "update".into(),
            detail: "degraded".into(),
        }
        .is_retryable());
        assert!(KiffError::Overloaded {
            inflight: 9,
            limit: 8,
        }
        .is_retryable());
        assert!(!KiffError::EmptyQuery.is_retryable());
        assert!(!KiffError::corrupt("wal record", "crc").is_retryable());

        let remote = |kind: &str| KiffError::Remote {
            kind: kind.into(),
            op: "update".into(),
            message: "m".into(),
        };
        assert!(KiffError::NotPrimary { leader: None }.is_retryable());
        assert!(remote("unavailable").is_retryable());
        assert!(remote("overloaded").is_retryable());
        assert!(remote("io").is_retryable());
        assert!(remote("not_primary").is_retryable());
        assert!(!remote("unknown_user").is_retryable());
        assert!(!remote("corrupt").is_retryable());
    }

    #[test]
    fn invalid_data_io_errors_lift_to_corrupt() {
        let e = std::io::Error::new(std::io::ErrorKind::InvalidData, "crc mismatch");
        let lifted = KiffError::from(e);
        assert!(matches!(lifted, KiffError::Corrupt { .. }));
        assert_eq!(lifted.exit_code(), 5);
        let plain = KiffError::from(std::io::Error::other("boom"));
        assert!(matches!(plain, KiffError::Io(_)));
    }

    #[test]
    fn display_names_the_offender() {
        let e = KiffError::UnknownUser {
            user: 9,
            num_users: 4,
        };
        assert!(e.to_string().contains("user 9"));
        assert_eq!(e.kind(), "unknown_user");
    }
}
