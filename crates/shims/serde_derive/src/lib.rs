//! Workspace-local stand-in for `serde_derive`.
//!
//! Hand-rolled (no `syn`/`quote` available offline): the input token
//! stream is walked directly to extract the struct name and its named
//! field identifiers, and the generated impl is assembled as a string.
//! Supports exactly what the workspace derives on: non-generic structs
//! with named fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the workspace `serde::Serialize` (value-tree based).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_named_struct(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let entries: String = parsed
        .fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{entries}])\n\
             }}\n\
         }}",
        name = parsed.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the workspace `serde::Deserialize` (value-tree based).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_named_struct(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let fields: String = parsed
        .fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?,"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 Ok(Self {{ {fields} }})\n\
             }}\n\
         }}",
        name = parsed.name
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

struct NamedStruct {
    name: String,
    fields: Vec<String>,
}

/// Extracts `struct Name { field: Type, ... }` from a derive input.
fn parse_named_struct(input: TokenStream) -> Result<NamedStruct, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes and visibility until the `struct` keyword.
    let mut name = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => return Err(format!("expected struct name, found {other:?}")),
                }
                break;
            }
            _ => continue,
        }
    }
    let name = name.ok_or_else(|| "derive target is not a struct".to_string())?;

    // The next brace group holds the fields; generics would appear first
    // and are unsupported.
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!("cannot derive for generic struct `{name}`"))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("cannot derive for tuple struct `{name}`"))
            }
            Some(_) => continue,
            None => return Err(format!("struct `{name}` has no body")),
        }
    };

    // Fields: [attrs] [pub [(..)]] ident ':' type ','  — commas inside the
    // type can only hide behind groups or `<...>`, so track angle depth.
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next(); // the [...] group
        }
        // Skip visibility.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                iter.next();
            }
        }
        let Some(TokenTree::Ident(field)) = iter.next() else {
            break;
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{field}`, found {other:?}"
                ))
            }
        }
        fields.push(field.to_string());
        // Skip the type up to a top-level comma.
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(NamedStruct { name, fields })
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});")
        .parse()
        .expect("compile_error parses")
}
