//! Bench for Fig. 6: RCS size distribution and its CCDF.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kiff_bench::datasets::bench_dataset;
use kiff_core::{build_rcs, CountingConfig};
use kiff_eval::Ccdf;

fn bench(c: &mut Criterion) {
    let ds = bench_dataset(13);
    let _ = ds.item_profiles();
    let rcs = build_rcs(&ds, &CountingConfig::default());
    let sizes = rcs.sizes();
    let mut group = c.benchmark_group("fig6");
    group.bench_function("rcs_sizes", |b| b.iter(|| black_box(rcs.sizes())));
    group.bench_function("rcs_ccdf", |b| {
        b.iter(|| black_box(Ccdf::from_observations(black_box(&sizes))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
