//! Concurrent read-during-write properties of the lock-free read path.
//!
//! A live daemon streams arbitrary update batches while two kinds of
//! readers hammer it concurrently:
//!
//! - **embedded readers** sharing the daemon's published [`ServeView`]
//!   cell directly (the in-process path `Server::view_handle` exists
//!   for), each with its own [`ViewCache`];
//! - a **TCP reader** observing the `"view"` version stamped on every
//!   view-served response.
//!
//! The properties proved, per ISSUE 10:
//!
//! 1. **Monotone views** — no reader ever observes the view version go
//!    backwards, in-process or over the wire.
//! 2. **Batch-boundary consistency** — every observed view fingerprints
//!    identically to a reference engine that applied exactly the first
//!    `version` batches. Readers never see a half-applied batch.
//! 3. **Read-your-writes** — after the writer's ack of batch `b`, every
//!    subsequent read (any connection) sees version ≥ `b`.
//!
//! Runs under the chaos job's ambient `KIFF_FAILPOINTS` like the other
//! serve suites; the daemon here is storeless, so ambient WAL and
//! replication faults are exercised by the sibling suites while this
//! one stays focused on view semantics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use kiff::online::ReadView;
use kiff::parallel::ViewCache;
use kiff::prelude::*;
use kiff::serve::ServeView;
use kiff_core::fault;

/// Arms any ambient `KIFF_FAILPOINTS` spec exactly once per test
/// binary, mirroring `serve_faults`.
fn ambient_failpoints() {
    static ARM: std::sync::Once = std::sync::Once::new();
    ARM.call_once(|| {
        let armed = fault::arm_from_env().expect("invalid KIFF_FAILPOINTS spec");
        if armed > 0 {
            eprintln!("chaos: {armed} ambient failpoint(s) armed from KIFF_FAILPOINTS");
        }
    });
}

/// Same seed shape as the other serve suites: 8 users over 10 items.
fn seed_dataset() -> Dataset {
    let mut b = DatasetBuilder::new("reads-seed", 8, 10);
    for u in 0..8u32 {
        for j in 0..4u32 {
            b.add_rating(u, (u * 3 + j * 2) % 10, 1.0 + (u + j) as f32 % 3.0);
        }
    }
    b.build()
}

/// Arbitrary update streams over the seed's id space.
fn arb_stream() -> impl Strategy<Value = Vec<Update>> {
    proptest::collection::vec((0u8..8, 0u32..8, 0u32..10, 1u32..6), 1..30).prop_map(|ops| {
        ops.into_iter()
            .map(|(kind, user, item, rating)| match kind {
                0 => Update::AddUser,
                1 => Update::RemoveRating { user, item },
                _ => Update::AddRating {
                    user,
                    item,
                    rating: rating as f32,
                },
            })
            .collect()
    })
}

/// Order- and content-sensitive digest of everything a view exposes:
/// the full adjacency, the materialized dataset, and the update
/// counters. Two views fingerprint equal iff a reader cannot tell them
/// apart.
fn fingerprint(view: &ReadView) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    mix(view.num_users() as u64);
    mix(view.stats.updates);
    for u in 0..view.num_users() as u32 {
        for n in view.graph.neighbors(u) {
            mix(u as u64);
            mix(n.id as u64);
            mix(n.sim.to_bits());
        }
        for (item, rating) in view.dataset.user_profile(u).iter() {
            mix(item as u64);
            mix(rating.to_bits() as u64);
        }
    }
    mix(view.k as u64);
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Readers racing a streaming writer observe only monotone,
    /// batch-boundary-consistent views.
    #[test]
    fn concurrent_readers_see_monotone_batch_consistent_views(
        stream in arb_stream(),
        batch in 1usize..5,
    ) {
        ambient_failpoints();
        let seed = seed_dataset();
        let config = || OnlineConfig::new(3);

        let engine = Box::new(OnlineKnn::new(&seed, config()));
        let host = EngineHost::new(engine, None, Registry::new());
        let server = Server::bind("127.0.0.1:0", host).unwrap();
        let addr = server.local_addr().to_string();
        let views = server.view_handle();
        let daemon = std::thread::spawn(move || server.run());

        let stop = Arc::new(AtomicBool::new(false));

        // Embedded readers: spin on the shared view cell, recording
        // every (version, fingerprint) they observe. Each keeps a
        // private ViewCache — the steady-state lock-free path.
        let mut readers = Vec::new();
        for _ in 0..3 {
            let views = Arc::clone(&views);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut cache: ViewCache<ServeView> = ViewCache::new();
                let mut seen: Vec<(u64, u64)> = Vec::new();
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let view = views.load_cached(&mut cache);
                    assert!(
                        view.version >= last,
                        "view version went backwards: {} after {last}",
                        view.version
                    );
                    last = view.version;
                    if seen.last().map(|(v, _)| *v) != Some(view.version) {
                        seen.push((view.version, fingerprint(&view.view)));
                    }
                    std::thread::yield_now();
                }
                seen
            }));
        }

        // TCP reader: the wire-level leg of the same property. Every
        // view-served response stamps the version it was answered from.
        let tcp_reader = {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let mut last = 0u64;
                let mut observed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let v = client
                        .request(&kiff::serve::Request::Neighbors { user: 0 })
                        .unwrap()
                        .get("view")
                        .and_then(serde_json::Value::as_u64)
                        .expect("view-served responses carry the version");
                    assert!(v >= last, "wire view went backwards: {v} after {last}");
                    last = v;
                    observed += 1;
                }
                observed
            })
        };

        // Writer: stream the batches over TCP, proving read-your-writes
        // after every ack.
        let mut writer = Client::connect(&addr).unwrap();
        let mut probe = Client::connect(&addr).unwrap();
        let mut batches = 0u64;
        for chunk in stream.chunks(batch) {
            writer.update(chunk).unwrap();
            batches += 1;
            let seen = probe
                .request(&kiff::serve::Request::Stats)
                .unwrap()
                .get("view")
                .and_then(serde_json::Value::as_u64)
                .unwrap();
            prop_assert!(
                seen >= batches,
                "acked batch {batches} not visible: probe saw view {seen}"
            );
        }

        stop.store(true, Ordering::Relaxed);
        let tcp_reads = tcp_reader.join().unwrap();
        prop_assert!(tcp_reads > 0, "the TCP reader made progress");

        // Reference run: fingerprint after every batch boundary. The
        // daemon publishes exactly one view per batch, so version v
        // must equal the reference after its first v batches.
        let mut reference = OnlineKnn::new(&seed, config());
        let mut expected = vec![fingerprint(&reference.read_view())];
        for chunk in stream.chunks(batch) {
            reference.apply_batch(chunk.to_vec());
            expected.push(fingerprint(&reference.read_view()));
        }

        for reader in readers {
            let seen = reader.join().unwrap();
            prop_assert!(!seen.is_empty(), "every embedded reader made progress");
            for (version, fp) in seen {
                let v = version as usize;
                prop_assert!(v < expected.len(), "version {version} beyond last batch");
                prop_assert_eq!(
                    fp,
                    expected[v],
                    "view {} is not the state at its batch boundary",
                    version
                );
            }
        }

        let mut shut = Client::connect(&addr).unwrap();
        shut.shutdown().unwrap();
        daemon.join().unwrap().unwrap();
    }
}
