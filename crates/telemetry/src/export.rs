//! Machine-readable exporters for [`TelemetrySnapshot`]: a JSON
//! snapshot and the Prometheus text exposition format. Both are
//! hand-rolled over `std` so the crate stays dependency-free.

use std::fmt::Write as _;

use crate::TelemetrySnapshot;

/// Which exporter renders a snapshot (the CLI's `--metrics-format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// The [`to_json`] snapshot (default).
    #[default]
    Json,
    /// The [`to_prometheus`] text exposition format.
    Prometheus,
}

impl MetricsFormat {
    /// Parses a `--metrics-format` value (`json` or `prom`/`prometheus`).
    pub fn parse(raw: &str) -> Option<Self> {
        match raw {
            "json" => Some(MetricsFormat::Json),
            "prom" | "prometheus" => Some(MetricsFormat::Prometheus),
            _ => None,
        }
    }

    /// The format's canonical flag value.
    pub fn name(self) -> &'static str {
        match self {
            MetricsFormat::Json => "json",
            MetricsFormat::Prometheus => "prom",
        }
    }
}

/// Renders `snapshot` in `format`.
pub fn render(snapshot: &TelemetrySnapshot, format: MetricsFormat) -> String {
    match format {
        MetricsFormat::Json => to_json(snapshot),
        MetricsFormat::Prometheus => to_prometheus(snapshot),
    }
}

/// Escapes a string for a JSON string literal (instrument names are
/// dotted ASCII paths, but the exporter must stay correct for any
/// input).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (finite values only; NaN and
/// infinities become `0`, which cannot occur for histogram means).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Renders the full snapshot as a JSON object:
///
/// ```json
/// {
///   "enabled": true,
///   "counters": { "core.refine.sims": 123 },
///   "gauges": { "shard.0.queue_depth": 4 },
///   "histograms": {
///     "online.repair_ns": { "count": 9, "sum": 1024, "max": 300,
///                            "mean": 113.8, "p50": 127, "p95": 511, "p99": 511 }
///   }
/// }
/// ```
pub fn to_json(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"enabled\": {},", snapshot.enabled);

    out.push_str("  \"counters\": {");
    for (i, c) in snapshot.counters.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(out, "{sep}    \"{}\": {}", json_escape(&c.name), c.value);
    }
    out.push_str(if snapshot.counters.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    out.push_str("  \"gauges\": {");
    for (i, g) in snapshot.gauges.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(out, "{sep}    \"{}\": {}", json_escape(&g.name), g.value);
    }
    out.push_str(if snapshot.gauges.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    out.push_str("  \"histograms\": {");
    for (i, h) in snapshot.histograms.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let _ = write!(
            out,
            "{sep}    \"{}\": {{ \"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {}, \
             \"p50\": {}, \"p95\": {}, \"p99\": {} }}",
            json_escape(&h.name),
            h.count,
            h.sum,
            h.max,
            json_f64(h.mean),
            h.p50,
            h.p95,
            h.p99
        );
    }
    out.push_str(if snapshot.histograms.is_empty() {
        "}\n"
    } else {
        "\n  }\n"
    });

    out.push_str("}\n");
    out
}

/// Maps an instrument name onto a valid Prometheus metric name:
/// prefixed with `kiff_`, with every character outside
/// `[a-zA-Z0-9_:]` replaced by `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("kiff_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the snapshot in the Prometheus text exposition format:
/// counters and gauges as single samples, histograms as summaries
/// (quantile samples plus `_sum`, `_count` and a `_max` gauge).
pub fn to_prometheus(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        let name = prom_name(&c.name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for g in &snapshot.gauges {
        let name = prom_name(&g.name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", g.value);
    }
    for h in &snapshot.histograms {
        let name = prom_name(&h.name);
        let _ = writeln!(out, "# TYPE {name} summary");
        let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", h.p50);
        let _ = writeln!(out, "{name}{{quantile=\"0.95\"}} {}", h.p95);
        let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", h.p99);
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
        let _ = writeln!(out, "# TYPE {name}_max gauge");
        let _ = writeln!(out, "{name}_max {}", h.max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> TelemetrySnapshot {
        let registry = Registry::new();
        registry.counter("core.refine.sims").add(42);
        registry.gauge("shard.0.queue_depth").set(-3);
        let h = registry.histogram("online.repair_ns");
        h.record(100);
        h.record(900);
        registry.snapshot()
    }

    #[test]
    fn json_contains_every_instrument() {
        let json = to_json(&sample());
        assert!(json.contains("\"core.refine.sims\": 42"), "{json}");
        assert!(json.contains("\"shard.0.queue_depth\": -3"), "{json}");
        assert!(json.contains("\"online.repair_ns\""), "{json}");
        assert!(json.contains("\"count\": 2"), "{json}");
        assert!(json.contains("\"max\": 900"), "{json}");
        assert!(json.contains("\"enabled\": true"), "{json}");
    }

    #[test]
    fn json_of_empty_snapshot_is_well_formed() {
        let json = to_json(&Registry::new().snapshot());
        assert!(json.contains("\"counters\": {}"), "{json}");
        assert!(json.contains("\"histograms\": {}"), "{json}");
    }

    #[test]
    fn json_escapes_names() {
        let registry = Registry::new();
        registry.counter("weird\"name\\").add(1);
        let json = to_json(&registry.snapshot());
        assert!(json.contains("\"weird\\\"name\\\\\": 1"), "{json}");
    }

    #[test]
    fn prometheus_sanitises_names_and_types() {
        let prom = to_prometheus(&sample());
        assert!(
            prom.contains("# TYPE kiff_core_refine_sims counter"),
            "{prom}"
        );
        assert!(prom.contains("kiff_core_refine_sims 42"), "{prom}");
        assert!(
            prom.contains("# TYPE kiff_shard_0_queue_depth gauge"),
            "{prom}"
        );
        assert!(prom.contains("kiff_shard_0_queue_depth -3"), "{prom}");
        assert!(
            prom.contains("# TYPE kiff_online_repair_ns summary"),
            "{prom}"
        );
        assert!(
            prom.contains("kiff_online_repair_ns{quantile=\"0.99\"}"),
            "{prom}"
        );
        assert!(prom.contains("kiff_online_repair_ns_count 2"), "{prom}");
        assert!(prom.contains("kiff_online_repair_ns_max 900"), "{prom}");
    }

    #[test]
    fn format_parsing() {
        assert_eq!(MetricsFormat::parse("json"), Some(MetricsFormat::Json));
        assert_eq!(
            MetricsFormat::parse("prom"),
            Some(MetricsFormat::Prometheus)
        );
        assert_eq!(
            MetricsFormat::parse("prometheus"),
            Some(MetricsFormat::Prometheus)
        );
        assert_eq!(MetricsFormat::parse("yaml"), None);
        assert_eq!(MetricsFormat::default(), MetricsFormat::Json);
    }

    #[test]
    fn render_dispatches_on_format() {
        let snap = sample();
        assert_eq!(render(&snap, MetricsFormat::Json), to_json(&snap));
        assert_eq!(
            render(&snap, MetricsFormat::Prometheus),
            to_prometheus(&snap)
        );
    }
}
