//! Sharded streaming maintenance: the online engine partitioned across
//! user shards, repairing update batches in parallel.
//!
//! Same scenario as `online_updates.rs` — hold out 10% of the ratings,
//! build on the rest, stream the future in — but replayed through
//! `ShardedOnlineKnn` at several shard counts, printing apply throughput
//! and recall per count. On multi-core hardware throughput grows with
//! shards; recall stays within a few percent of the rebuild everywhere.
//!
//! Run with: `cargo run --release --example sharded_updates`

use std::time::Instant;

use kiff::core::{Kiff, KiffConfig};
use kiff::dataset::generators::movielens::movielens_like;
use kiff::dataset::{subsample_ratings, DatasetBuilder};
use kiff::graph::{exact_knn, recall};
use kiff::online::{OnlineConfig, ShardConfig, ShardedOnlineKnn, Update};
use kiff::similarity::WeightedCosine;

fn main() {
    let k = 10;
    let seed = 42;
    let batch = 256;
    let ml1 = movielens_like(0.2, seed);
    let full = subsample_ratings(&ml1, ml1.num_ratings() * 13 / 100, seed).with_name("ML-4-like");
    println!(
        "dataset : {} — {} users, {} items, {} ratings",
        full.name(),
        full.num_users(),
        full.num_items(),
        full.num_ratings()
    );

    // Hold out every 10th rating as "the future".
    let mut builder = DatasetBuilder::new("ml-past", full.num_users(), full.num_items());
    let mut future = Vec::new();
    for (pos, (user, item, rating)) in full.iter_ratings().enumerate() {
        if pos % 10 == 0 {
            future.push(Update::AddRating { user, item, rating });
        } else {
            builder.add_rating(user, item, rating);
        }
    }
    let base = builder.build();
    println!(
        "holdout : {} ratings stream in after the initial build\n",
        future.len()
    );

    // Ground truth on the final dataset, shared by every shard count.
    let sim = WeightedCosine::fit(&full);
    let exact = exact_knn(&full, &sim, k, None);
    let rebuild = Kiff::new(KiffConfig::new(k)).run(&full, &sim);
    let rebuild_recall = recall(&exact, &rebuild.graph);
    println!("full rebuild recall: {rebuild_recall:.4}\n");

    for shards in [1usize, 2, 4, 8] {
        let mut engine =
            ShardedOnlineKnn::new(&base, OnlineConfig::new(k), ShardConfig::new(shards));
        let start = Instant::now();
        for chunk in future.chunks(batch) {
            engine.apply_batch(chunk.iter().copied());
        }
        let elapsed = start.elapsed();
        let life = engine.lifetime_stats();
        println!(
            "{shards} shard(s): {:>7.0} updates/s  (sizes {:?}), recall {:.4}",
            life.updates as f64 / elapsed.as_secs_f64().max(1e-9),
            engine.shard_sizes(),
            recall(&exact, &engine.graph()),
        );
    }
}
