//! Bench for Fig. 8: per-iteration observed runs (snapshot + recall at
//! every iteration).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kiff_bench::datasets::small_bench_dataset;
use kiff_bench::runner::ground_truth;
use kiff_core::{Kiff, KiffConfig};
use kiff_graph::{recall, IterationTrace, SharedKnn};
use kiff_similarity::WeightedCosine;

fn bench(c: &mut Criterion) {
    let ds = small_bench_dataset(15);
    let sim = WeightedCosine::fit(&ds);
    let exact = ground_truth(&ds, 10, Some(2));
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("kiff_with_recall_tracing", |b| {
        b.iter(|| {
            let mut points: Vec<(u64, f64)> = Vec::new();
            let mut observer = |t: IterationTrace, s: &SharedKnn| {
                points.push((t.cumulative_sim_evals, recall(&exact, &s.snapshot())));
            };
            Kiff::new(KiffConfig::new(10).with_threads(2)).run_observed(&ds, &sim, &mut observer);
            black_box(points)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
