//! Similarity search for new (out-of-graph) profiles.
//!
//! §VI separates KNN *graph construction* from NN *search*, but a built
//! KNN graph doubles as a search index: a new profile — a visitor who has
//! not been indexed — is matched by a greedy best-first walk over the
//! graph, seeded at users who co-rated the query's items. This example
//! compares the walk against a full linear scan on a Wikipedia-like
//! dataset: same answers, a fraction of the similarity evaluations.
//!
//! Run with: `cargo run --release --example search_profile`

use std::time::Instant;

use kiff::prelude::*;
use kiff_dataset::PaperDataset;

fn main() {
    // A Wikipedia-vote-like dataset (≈ 6k users at scale 1.0).
    let dataset = PaperDataset::Wikipedia.generate(1.0, 42);
    println!(
        "dataset: {} users, {} items, {} ratings (density {:.2}%)",
        dataset.num_users(),
        dataset.num_items(),
        dataset.num_ratings(),
        dataset.density() * 100.0
    );

    // Build the KNN graph with KIFF.
    let sim = WeightedCosine::fit(&dataset);
    let result = Kiff::new(KiffConfig::new(20)).run(&dataset, &sim);
    println!(
        "KIFF graph: k = 20, recallable in {:.1?} (scan rate {:.2}%)",
        result.stats.total_time,
        result.stats.scan_rate * 100.0
    );
    let searcher = GraphSearcher::new(
        std::sync::Arc::new(dataset.clone()),
        std::sync::Arc::new(result.graph.clone()),
        ProfileMetric::Cosine,
    )
    .expect("graph was built over this dataset")
    .with_max_seeds(16);

    // Synthesise query profiles from existing users with a twist: drop
    // one item, add one unseen item — a "new visitor" resembling, but not
    // equal to, an indexed user.
    let queries: Vec<QueryProfile> = (0..200u32)
        .map(|q| {
            let donor = (q * 31) % dataset.num_users() as u32;
            let p = dataset.user_profile(donor);
            let novel = (q * 17) % dataset.num_items() as u32;
            QueryProfile::new(p.iter().skip(1).chain(std::iter::once((novel, 1.0))))
        })
        .collect();

    // Greedy graph walk vs brute-force scan.
    let k = 10;
    let walk_start = Instant::now();
    let mut visited_total = 0usize;
    let walk: Vec<_> = queries
        .iter()
        .map(|q| {
            let (hits, visited) = searcher.search_with_stats(q, k, 200);
            visited_total += visited;
            hits
        })
        .collect();
    let walk_time = walk_start.elapsed();

    let brute_start = Instant::now();
    let brute: Vec<_> = queries.iter().map(|q| searcher.brute(q, k)).collect();
    let brute_time = brute_start.elapsed();

    // Recall of the walk against the scan's ground truth.
    let mut found = 0usize;
    let mut total = 0usize;
    for (w, b) in walk.iter().zip(&brute) {
        for hit in b {
            total += 1;
            found += usize::from(w.iter().any(|r| r.user == hit.user));
        }
    }
    let recall = found as f64 / total.max(1) as f64;

    let visited_frac = visited_total as f64 / (queries.len() * dataset.num_users()) as f64;
    println!("\n{} queries, top-{k}:", queries.len());
    println!(
        "  graph walk : {walk_time:>10.1?}  recall {recall:.3}, visits {:.1}% of users/query",
        visited_frac * 100.0
    );
    println!("  linear scan: {brute_time:>10.1?}  exact, visits 100%");

    // Show one query's results side by side.
    println!("\nfirst query, walk vs scan:");
    for (w, b) in walk[0].iter().zip(&brute[0]).take(5) {
        println!(
            "  walk: user {:>5} sim {:.3}   scan: user {:>5} sim {:.3}",
            w.user, w.sim, b.user, b.sim
        );
    }

    assert!(recall > 0.8, "walk recall degraded: {recall}");
}
