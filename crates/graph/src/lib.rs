#![warn(missing_docs)]

//! KNN graph structures, exact construction, and recall evaluation.
//!
//! The output of every algorithm in this workspace is a [`KnnGraph`]: for
//! each user, the `k` most similar other users found, with their similarity
//! values. During construction the algorithms share a [`SharedKnn`] — one
//! bounded [`KnnHeap`] per user behind a `parking_lot` mutex, because the
//! pivot strategy (§II-D) makes user `u`'s worker update user `v`'s heap.
//!
//! [`exact`] builds ground truth two ways: an exhaustive `O(|U|²)` scan and
//! an inverted-index construction that only evaluates pairs sharing an item
//! — exact for every metric satisfying the sparse axioms of §III-D, and the
//! property the whole KIFF idea rests on. [`recall()`] implements the
//! paper's tie-aware quality measure (Eq. 2–4).

pub mod analysis;
pub mod codec;
pub mod exact;
pub mod io;
pub mod knn;
pub mod observer;
pub mod recall;
pub mod reverse;

pub use analysis::{in_degrees, summarize, symmetry, weak_components, GraphSummary};
pub use exact::{exact_knn, exact_knn_brute, exact_knn_brute_with, exact_knn_with};
pub use io::{
    load_edges_tsv, save_edges_tsv, save_json as save_graph_json, write_edges_tsv, GraphLoadError,
};
pub use knn::{EditStats, HeapChange, KnnGraph, KnnHeap, Neighbor, SharedKnn};
pub use observer::{IterationObserver, IterationTrace, NoObserver};
pub use recall::{recall, recall_per_user, recall_user};
pub use reverse::{ReverseAdjacency, ShardReverse};
