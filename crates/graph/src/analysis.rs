//! Structural analysis of KNN graphs.
//!
//! The greedy baselines' behaviour is governed by structural properties
//! of the evolving KNN graph: NN-Descent joins over *bidirectional*
//! neighbourhoods ("both in-coming and out-going neighbors", §IV-B), so
//! in-degree skew decides its join sizes; HyRec's `r` random candidates
//! exist because neighbours-of-neighbours convergence stalls on
//! disconnected regions ("to avoid a local minimum"). This module
//! quantifies those properties for any constructed graph:
//!
//! * [`in_degrees`] / [`GraphSummary::max_in_degree`] — hub formation;
//! * [`symmetry`] — the fraction of edges that are reciprocated, i.e.
//!   how much of the graph a bidirectional join actually doubles;
//! * [`weak_components`] — connected components of the undirected
//!   skeleton, the regions between which neighbour-of-neighbour
//!   exploration cannot travel.

use kiff_collections::UnionFind;
use kiff_dataset::UserId;

use crate::knn::KnnGraph;

/// Aggregate structural description of a KNN graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Users in the graph.
    pub num_users: usize,
    /// Directed edges.
    pub num_edges: usize,
    /// Mean out-degree (`num_edges / num_users`; ≤ k).
    pub mean_out_degree: f64,
    /// Largest in-degree (hub intensity).
    pub max_in_degree: usize,
    /// Fraction of edges `u → v` with a reciprocal `v → u`.
    pub symmetry: f64,
    /// Number of weakly connected components (isolated users count).
    pub components: usize,
    /// Size of the largest weak component.
    pub largest_component: usize,
}

/// Computes the full summary in one pass per statistic.
///
/// ```
/// use kiff_graph::{summarize, KnnGraph, Neighbor};
///
/// let graph = KnnGraph::from_neighbors(
///     1,
///     vec![vec![Neighbor { id: 1, sim: 0.5 }], vec![Neighbor { id: 0, sim: 0.5 }]],
/// );
/// let s = summarize(&graph);
/// assert_eq!(s.symmetry, 1.0);
/// assert_eq!(s.components, 1);
/// ```
pub fn summarize(graph: &KnnGraph) -> GraphSummary {
    let n = graph.num_users();
    let comps = weak_components(graph);
    GraphSummary {
        num_users: n,
        num_edges: graph.num_edges(),
        mean_out_degree: if n == 0 {
            0.0
        } else {
            graph.num_edges() as f64 / n as f64
        },
        max_in_degree: in_degrees(graph).into_iter().max().unwrap_or(0),
        symmetry: symmetry(graph),
        components: comps.len(),
        largest_component: comps.first().copied().unwrap_or(0),
    }
}

/// In-degree of every user: how many neighbourhoods it appears in.
pub fn in_degrees(graph: &KnnGraph) -> Vec<usize> {
    let mut degrees = vec![0usize; graph.num_users()];
    for u in 0..graph.num_users() as UserId {
        for n in graph.neighbors(u) {
            degrees[n.id as usize] += 1;
        }
    }
    degrees
}

/// Fraction of directed edges that are reciprocated (`u ∈ knn_v` and
/// `v ∈ knn_u`). 0.0 on an edgeless graph.
pub fn symmetry(graph: &KnnGraph) -> f64 {
    let edges = graph.num_edges();
    if edges == 0 {
        return 0.0;
    }
    let mut reciprocated = 0usize;
    for u in 0..graph.num_users() as UserId {
        for n in graph.neighbors(u) {
            if graph.neighbors(n.id).iter().any(|m| m.id == u) {
                reciprocated += 1;
            }
        }
    }
    reciprocated as f64 / edges as f64
}

/// Sizes of the weakly connected components (edges read as undirected),
/// descending. Isolated users form singleton components.
pub fn weak_components(graph: &KnnGraph) -> Vec<usize> {
    let mut uf = UnionFind::new(graph.num_users());
    for u in 0..graph.num_users() as UserId {
        for n in graph.neighbors(u) {
            uf.union(u, n.id);
        }
    }
    uf.set_sizes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::Neighbor;

    fn edge(id: UserId) -> Neighbor {
        Neighbor { id, sim: 1.0 }
    }

    /// 0 ↔ 1 (reciprocated), 2 → 0 (not), 3 isolated.
    fn sample() -> KnnGraph {
        KnnGraph::from_neighbors(2, vec![vec![edge(1)], vec![edge(0)], vec![edge(0)], vec![]])
    }

    #[test]
    fn in_degrees_count_incoming() {
        assert_eq!(in_degrees(&sample()), vec![2, 1, 0, 0]);
    }

    #[test]
    fn symmetry_is_reciprocated_fraction() {
        // Edges: 0→1, 1→0 (both reciprocated), 2→0 (not): 2/3.
        assert!((symmetry(&sample()) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn components_split_isolated_users() {
        let comps = weak_components(&sample());
        assert_eq!(comps, vec![3, 1]); // {0,1,2} and {3}
    }

    #[test]
    fn summary_is_consistent() {
        let s = summarize(&sample());
        assert_eq!(s.num_users, 4);
        assert_eq!(s.num_edges, 3);
        assert!((s.mean_out_degree - 0.75).abs() < 1e-12);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.components, 2);
        assert_eq!(s.largest_component, 3);
    }

    #[test]
    fn empty_graph() {
        let g = KnnGraph::from_neighbors(1, vec![]);
        let s = summarize(&g);
        assert_eq!(s.num_users, 0);
        assert_eq!(s.components, 0);
        assert_eq!(s.symmetry, 0.0);
        assert_eq!(s.mean_out_degree, 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_graph() -> impl Strategy<Value = KnnGraph> {
            (
                1usize..25,
                proptest::collection::vec((0u32..25, 0u32..25), 0..100),
            )
                .prop_map(|(n, raw)| {
                    let mut lists: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
                    for (u, v) in raw {
                        let (u, v) = (u % n as u32, v % n as u32);
                        if u != v && !lists[u as usize].iter().any(|e| e.id == v) {
                            lists[u as usize].push(Neighbor {
                                id: v,
                                sim: 1.0 / (1.0 + f64::from(v)),
                            });
                        }
                    }
                    KnnGraph::from_neighbors(5, lists)
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Structural invariants on arbitrary graphs: component sizes
            /// partition the users, symmetry is a fraction, in-degrees sum
            /// to the edge count, and the summary agrees with the parts.
            #[test]
            fn summary_invariants(graph in arb_graph()) {
                let s = summarize(&graph);
                prop_assert_eq!(
                    weak_components(&graph).iter().sum::<usize>(),
                    s.num_users
                );
                prop_assert!((0.0..=1.0).contains(&s.symmetry));
                prop_assert_eq!(in_degrees(&graph).iter().sum::<usize>(), s.num_edges);
                prop_assert!(s.largest_component <= s.num_users);
                prop_assert!(s.components >= 1 || s.num_users == 0);
                prop_assert!(s.max_in_degree < s.num_users.max(1));
            }
        }
    }

    #[test]
    fn knn_graph_of_identical_profiles_is_fully_symmetric() {
        use kiff_dataset::DatasetBuilder;
        use kiff_similarity::WeightedCosine;

        // Four identical users: everyone is everyone's neighbour, every
        // edge reciprocated, one component.
        let mut b = DatasetBuilder::new("sym", 4, 2);
        for u in 0..4 {
            b.add_rating(u, 0, 1.0);
            b.add_rating(u, 1, 2.0);
        }
        let ds = b.build();
        let g = crate::exact::exact_knn(&ds, &WeightedCosine::new(), 3, Some(1));
        let s = summarize(&g);
        assert!((s.symmetry - 1.0).abs() < 1e-12);
        assert_eq!(s.components, 1);
        assert_eq!(s.largest_component, 4);
        assert_eq!(s.max_in_degree, 3);
    }
}
