//! The TCP daemon: accept loop, per-connection workers, request
//! dispatch, and graceful shutdown.
//!
//! One [`EngineHost`] owns the engine and its persistence behind a
//! mutex: the engines are `&mut`-update structures, so the daemon
//! serialises access rather than pretending to share them. Query
//! handlers borrow cheap `Arc` snapshots of the dataset and graph
//! (rebuilt lazily after each update batch), so a recommend request
//! never clones the dataset while holding the lock longer than the
//! actual scoring takes.
//!
//! Shutdown is cooperative: the `shutdown` op flips an atomic flag,
//! and the flipping connection pokes the accept loop with a throwaway
//! connect so it observes the flag without waiting for a real client.
//! Connection readers poll the flag between 100 ms read timeouts. On a
//! graceful exit the host takes a final snapshot when the WAL has
//! advanced past the last one.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use kiff_apps::{GraphSearcher, ProfileMetric, QueryProfile, Recommender};
use kiff_core::KiffError;
use kiff_dataset::Dataset;
use kiff_graph::KnnGraph;
use kiff_online::KnnEngine;
use kiff_telemetry::Registry;
use serde_json::Value;

use crate::store::Store;
use crate::wire::{self, Request, MAX_FRAME};

const READ_POLL: Duration = Duration::from_millis(100);

/// The engine, its persistence, and the query-time view cache.
pub struct EngineHost {
    engine: Box<dyn KnnEngine>,
    store: Option<Store>,
    telemetry: Registry,
    views: Option<(Arc<Dataset>, Arc<KnnGraph>)>,
}

impl EngineHost {
    /// Wraps `engine` (and optionally its durable `store`) for serving.
    pub fn new(engine: Box<dyn KnnEngine>, store: Option<Store>, telemetry: Registry) -> Self {
        Self {
            engine,
            store,
            telemetry,
            views: None,
        }
    }

    /// Read-only access to the engine (tests compare served answers
    /// against direct calls).
    pub fn engine(&self) -> &dyn KnnEngine {
        self.engine.as_ref()
    }

    /// The dataset/graph snapshots the application-layer handlers run
    /// over, rebuilt lazily after a mutation.
    fn views(&mut self) -> (Arc<Dataset>, Arc<KnnGraph>) {
        if self.views.is_none() {
            let dataset = Arc::new(self.engine.data().to_dataset());
            let graph = self.engine.graph();
            self.views = Some((dataset, graph));
        }
        self.views.clone().expect("just installed")
    }

    fn recommender(&mut self) -> Result<Recommender, KiffError> {
        let (dataset, graph) = self.views();
        Recommender::new(dataset, graph)
    }

    /// Dispatches one request. `Shutdown` is handled by the connection
    /// loop before this point; it answers like `Ping` here.
    pub fn handle(&mut self, request: &Request) -> Result<Value, KiffError> {
        match request {
            Request::Ping | Request::Shutdown => Ok(serde_json::json!({"ok": true})),
            Request::Neighbors { user } => {
                let neighbors: Vec<Value> = self
                    .engine
                    .neighbors(*user)?
                    .iter()
                    .map(|nb| serde_json::json!({"id": nb.id, "sim": nb.sim}))
                    .collect();
                Ok(serde_json::json!({"ok": true, "neighbors": neighbors}))
            }
            Request::Recommend { user, top } => {
                let recs: Vec<Value> = self
                    .recommender()?
                    .try_recommend(*user, *top)?
                    .iter()
                    .map(|r| serde_json::json!({"item": r.item, "score": r.score}))
                    .collect();
                Ok(serde_json::json!({"ok": true, "recommendations": recs}))
            }
            Request::Predict { user, item } => {
                let prediction = self.recommender()?.try_predict(*user, *item)?;
                let prediction = match prediction {
                    Some(p) => Value::Number(p),
                    None => Value::Null,
                };
                Ok(serde_json::json!({"ok": true, "prediction": prediction}))
            }
            Request::Audience { item, top } => {
                let audience: Vec<Value> = self
                    .recommender()?
                    .try_audience(*item, *top)?
                    .iter()
                    .map(|(u, score)| serde_json::json!({"user": *u, "score": *score}))
                    .collect();
                Ok(serde_json::json!({"ok": true, "audience": audience}))
            }
            Request::Search { items, top } => {
                let (dataset, graph) = self.views();
                let searcher = GraphSearcher::new(dataset, graph, ProfileMetric::Cosine)?;
                let query = QueryProfile::new(items.iter().copied());
                let ef = (top * 4).max(40);
                let hits: Vec<Value> = searcher
                    .try_search(&query, *top, ef)?
                    .iter()
                    .map(|h| serde_json::json!({"user": h.user, "sim": h.sim}))
                    .collect();
                Ok(serde_json::json!({"ok": true, "hits": hits}))
            }
            Request::Update { updates } => {
                let seq = match &mut self.store {
                    Some(store) => {
                        let seq = store.append(updates)?;
                        Value::Number(seq as f64)
                    }
                    None => Value::Null,
                };
                let stats = self.engine.apply_batch(updates.clone());
                self.views = None;
                if let Some(store) = &mut self.store {
                    store.maybe_snapshot(self.engine.as_ref())?;
                }
                Ok(serde_json::json!({
                    "ok": true,
                    "applied": stats.updates,
                    "seq": seq,
                    "sim_evals": stats.sim_evals,
                    "repaired_users": stats.repaired_users
                }))
            }
            Request::Stats => {
                let stats = self.engine.stats();
                let seq = match &self.store {
                    Some(store) => Value::Number(store.seq() as f64),
                    None => Value::Null,
                };
                Ok(serde_json::json!({
                    "ok": true,
                    "users": self.engine.len(),
                    "k": self.engine.k(),
                    "seq": seq,
                    "updates": stats.updates,
                    "sim_evals": stats.sim_evals,
                    "repaired_users": stats.repaired_users,
                    "migrations": stats.migrations,
                    "cross_messages": stats.cross_messages
                }))
            }
            Request::Metrics => {
                let text = kiff_telemetry::export::to_json(&self.telemetry.snapshot());
                let metrics: Value = serde_json::from_str(&text)
                    .map_err(|e| KiffError::Protocol(format!("metrics render: {e}")))?;
                Ok(serde_json::json!({"ok": true, "metrics": metrics}))
            }
            Request::Snapshot => match &mut self.store {
                Some(store) => {
                    store.snapshot(self.engine.as_ref())?;
                    Ok(serde_json::json!({"ok": true, "seq": store.seq()}))
                }
                None => Err(KiffError::Protocol(
                    "daemon is running without a data dir; nothing to snapshot".into(),
                )),
            },
        }
    }

    /// Final snapshot on graceful shutdown, when the WAL advanced.
    fn final_snapshot(&mut self) -> Result<(), KiffError> {
        if let Some(store) = &mut self.store {
            if store.dirty() {
                store.snapshot(self.engine.as_ref())?;
            }
        }
        Ok(())
    }
}

struct Shared {
    host: Mutex<EngineHost>,
    shutdown: AtomicBool,
    telemetry: Registry,
    addr: SocketAddr,
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: &str, host: EngineHost) -> Result<Self, KiffError> {
        let telemetry = host.telemetry.clone();
        let listener = TcpListener::bind(addr).map_err(KiffError::Io)?;
        let addr = listener.local_addr().map_err(KiffError::Io)?;
        Ok(Self {
            listener,
            shared: Arc::new(Shared {
                host: Mutex::new(host),
                shutdown: AtomicBool::new(false),
                telemetry,
                addr,
            }),
        })
    }

    /// The actually bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Runs the accept loop until a client sends `shutdown`. Consumes
    /// the server; returns once every connection worker has drained.
    pub fn run(self) -> Result<(), KiffError> {
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    let shared = Arc::clone(&self.shared);
                    workers.push(std::thread::spawn(move || {
                        let _ = handle_connection(stream, &shared);
                    }));
                }
                Err(e) => {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    return Err(KiffError::Io(e));
                }
            }
            workers.retain(|w| !w.is_finished());
        }
        for worker in workers {
            let _ = worker.join();
        }
        self.shared
            .host
            .lock()
            .expect("engine host lock poisoned")
            .final_snapshot()
    }
}

enum Framed {
    Value(Value),
    Eof,
    ShuttingDown,
}

/// Fills `buf` from `stream`, polling the shutdown flag on every read
/// timeout. `allow_eof` treats EOF *before the first byte* as clean.
fn fill(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    allow_eof: bool,
) -> Result<Option<bool>, KiffError> {
    use std::io::Read as _;
    let mut filled = 0;
    while filled < buf.len() {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(Some(false));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && allow_eof {
                    return Ok(Some(true));
                }
                return Err(KiffError::Protocol("connection closed mid-frame".into()));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(KiffError::Io(e)),
        }
    }
    Ok(None)
}

/// Reads one frame, interruptible by the shutdown flag.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> Result<Framed, KiffError> {
    let mut header = [0u8; 4];
    match fill(stream, &mut header, shutdown, true)? {
        Some(true) => return Ok(Framed::Eof),
        Some(false) => return Ok(Framed::ShuttingDown),
        None => {}
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME {
        return Err(KiffError::Protocol(format!(
            "frame of {len} bytes exceeds {MAX_FRAME}"
        )));
    }
    let mut bytes = vec![0u8; len as usize];
    if fill(stream, &mut bytes, shutdown, false)?.is_some() {
        return Ok(Framed::ShuttingDown);
    }
    let text =
        String::from_utf8(bytes).map_err(|_| KiffError::Protocol("frame is not UTF-8".into()))?;
    serde_json::from_str(&text)
        .map(Framed::Value)
        .map_err(|e| KiffError::Protocol(e.to_string()))
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) -> Result<(), KiffError> {
    stream
        .set_read_timeout(Some(READ_POLL))
        .map_err(KiffError::Io)?;
    let queue_depth = shared.telemetry.gauge("serve.queue_depth");
    let requests = shared.telemetry.counter("serve.requests");
    let errors = shared.telemetry.counter("serve.errors");

    loop {
        let value = match read_frame_interruptible(&mut stream, &shared.shutdown)? {
            Framed::Value(v) => v,
            Framed::Eof | Framed::ShuttingDown => return Ok(()),
        };
        requests.incr();
        queue_depth.add(1);
        let started = Instant::now();
        let (response, op, shutdown) = match Request::from_value(&value) {
            Ok(request) => {
                let shutdown = matches!(request, Request::Shutdown);
                let response = {
                    let mut host = shared.host.lock().expect("engine host lock poisoned");
                    host.handle(&request)
                };
                let op = request.op();
                match response {
                    Ok(mut body) => {
                        if shutdown {
                            shared.shutdown.store(true, Ordering::SeqCst);
                            if let Value::Object(entries) = &mut body {
                                entries.push(("stopping".into(), Value::Bool(true)));
                            }
                        }
                        (body, op, shutdown)
                    }
                    Err(e) => {
                        errors.incr();
                        (wire::error_value(&e), op, false)
                    }
                }
            }
            Err(e) => {
                errors.incr();
                (wire::error_value(&e), "invalid", false)
            }
        };
        shared
            .telemetry
            .histogram(&format!("serve.request_ns.{op}"))
            .record(started.elapsed().as_nanos() as u64);
        queue_depth.add(-1);
        wire::write_frame(&mut stream, &response)?;
        if shutdown {
            // Poke the accept loop so it observes the flag.
            if let Ok(mut poke) = TcpStream::connect(shared.addr) {
                let _ = poke.write_all(&[]);
            }
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use kiff_dataset::dataset::figure2_toy;
    use kiff_online::{OnlineConfig, OnlineKnn, Update};

    fn spawn_toy_server() -> (std::thread::JoinHandle<Result<(), KiffError>>, SocketAddr) {
        let ds = figure2_toy();
        let reg = Registry::new();
        let config = OnlineConfig::new(2).with_telemetry(reg.clone());
        let engine = Box::new(OnlineKnn::new(&ds, config));
        let host = EngineHost::new(engine, None, reg);
        let server = Server::bind("127.0.0.1:0", host).unwrap();
        let addr = server.local_addr();
        (std::thread::spawn(move || server.run()), addr)
    }

    #[test]
    fn serves_queries_updates_and_shuts_down() {
        let (handle, addr) = spawn_toy_server();
        let mut client = Client::connect(&addr.to_string()).unwrap();
        client.ping().unwrap();

        // Alice's nearest neighbour is Bob, exactly as in-process.
        let nbrs = client.neighbors(0).unwrap();
        assert_eq!(nbrs[0].id, 1);

        let recs = client.recommend(0, 3).unwrap();
        assert!(!recs.is_empty(), "Alice gets recommendations");

        let err = client.neighbors(99).unwrap_err();
        match err {
            KiffError::Remote { kind, .. } => assert_eq!(kind, "unknown_user"),
            other => panic!("expected Remote, got {other}"),
        }

        // Update over the wire, then observe the graph move.
        let applied = client
            .update(&[Update::AddRating {
                user: 2,
                item: 1,
                rating: 2.0,
            }])
            .unwrap();
        assert_eq!(applied, 1);
        let stats = client.stats().unwrap();
        assert_eq!(stats.get("updates").and_then(Value::as_u64), Some(1));

        let metrics = client.metrics().unwrap();
        assert!(metrics.get("counters").is_some(), "telemetry surfaces");

        // A second concurrent client works while the first idles.
        let mut other = Client::connect(&addr.to_string()).unwrap();
        other.ping().unwrap();
        drop(other);

        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn snapshot_without_a_data_dir_is_a_protocol_error() {
        let (handle, addr) = spawn_toy_server();
        let mut client = Client::connect(&addr.to_string()).unwrap();
        let err = client.snapshot().unwrap_err();
        match err {
            KiffError::Remote { kind, .. } => assert_eq!(kind, "protocol"),
            other => panic!("expected Remote, got {other}"),
        }
        client.shutdown().unwrap();
        handle.join().unwrap().unwrap();
    }
}
